//! The §5 bandwidth-budget advisor: probe or duplicate?
//!
//! Applications spend capacity on either probing (reactive routing) or
//! duplicate packets (redundant routing). This example runs the paper's
//! Figure 6 model for a few application profiles and prints the verdicts.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use mpath::core::model::{DesignModel, Recommendation};

fn main() {
    let model = DesignModel::ron2003_defaults();
    println!(
        "overlay: N={}, probing {:.1} probes/s/peer, direct loss {:.2}%, CLP {:.0}%",
        model.n,
        model.probe_rate_hz,
        model.p_direct * 100.0,
        model.clp * 100.0
    );
    println!(
        "limits: reactive ≤ {:.0}% improvement (best expected path), 2-copy mesh ≤ {:.0}% (independence)\n",
        model.reactive_limit() * 100.0,
        model.redundant_limit(2) * 100.0
    );

    let profiles: &[(&str, f64, f64, f64)] = &[
        // (name, flow bits/s, link capacity bits/s, wanted improvement)
        ("VoIP call", 64_000.0, 10e6, 0.30),
        ("sensor feed", 4_000.0, 256_000.0, 0.30),
        ("video stream", 4e6, 20e6, 0.25),
        ("bulk replication", 200e6, 1e9, 0.30),
        ("saturating flow", 95e6, 100e6, 0.30),
        ("dreamer", 64_000.0, 10e6, 0.95),
    ];

    println!(
        "{:<18} {:>12} {:>12} {:>8}   verdict",
        "application", "flow", "capacity", "target"
    );
    for &(name, flow, cap, d) in profiles {
        let verdict = match model.recommend(flow, cap, d) {
            Recommendation::Reactive { overhead_bps } => {
                format!("REACTIVE  (probes: {:.1} kbit/s, flow-independent)", overhead_bps / 1e3)
            }
            Recommendation::Redundant { overhead_bps } => {
                format!("REDUNDANT (copies: {:.1} kbit/s, scales with flow)", overhead_bps / 1e3)
            }
            Recommendation::Infeasible => "INFEASIBLE (outside every limit)".to_string(),
        };
        println!(
            "{:<18} {:>9.0} kb {:>9.0} kb {:>7.0}%   {verdict}",
            name,
            flow / 1e3,
            cap / 1e3,
            d * 100.0
        );
    }

    println!("\nfigure 6 curves (fraction of capacity left for data):");
    println!("{:>12} {:>10} {:>10}", "improvement", "reactive", "redundant");
    for (d, re, rd) in model.figure6(64_000.0, 11) {
        let f = |x: f64| if x.is_nan() { "   -  ".to_string() } else { format!("{x:>8.3}") };
        println!("{:>12.1} {:>10} {:>10}", d, f(re), f(rd));
    }
    println!("\npaper §5.3: thin flows duplicate, thick flows probe; both die at the");
    println!("capacity wall, and only better path independence moves the mesh limit.");
}
