//! Quickstart: run a scaled-down version of the paper's RON2003
//! measurement campaign and print the headline comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mpath::core::ScenarioRegistry;
use mpath::netsim::SimDuration;

fn main() {
    // Two simulated hours of the 30-host 2003 testbed. Paper scale is 14
    // days; see the `repro` binary in mpath-bench for the full runs, and
    // `repro --list-scenarios` for the whole catalog.
    let registry = ScenarioRegistry::builtin();
    let scenario = registry.get("ron2003").expect("builtin scenario");
    let duration = SimDuration::from_hours(2);
    println!(
        "running scenario `{}` ({} hosts) for {duration} of simulated time...",
        scenario.name,
        scenario.topology(42).n()
    );
    let out = scenario.run(42, Some(duration));

    println!(
        "\n{:<16} {:>8} {:>8} {:>8} {:>10}",
        "method", "1lp%", "totlp%", "clp%", "lat(ms)"
    );
    for name in ["direct*", "loss", "direct rand", "lat loss", "direct direct"] {
        let s = out.summary(name).expect("method exists");
        println!(
            "{:<16} {:>8.2} {:>8.2} {:>8} {:>10.2}",
            name,
            s.lp1,
            s.totlp,
            s.clp.map(|c| format!("{c:.1}")).unwrap_or_else(|| "-".into()),
            s.lat_ms
        );
    }

    let direct = out.summary("direct*").unwrap();
    let mesh = out.summary("direct rand").unwrap();
    let reactive = out.summary("loss").unwrap();
    println!(
        "\nmesh routing removed {:.0}% of end-to-end losses; reactive routing {:.0}%",
        100.0 * (1.0 - mesh.totlp / direct.lp1),
        100.0 * (1.0 - reactive.totlp / direct.lp1),
    );
    println!(
        "overhead: {} overlay probes vs {} measurement legs ({} hosts, O(N²) probing)",
        out.overlay_probes, out.measure_legs, out.n
    );
    println!("\n(the paper's full numbers: ./target/release/repro all --days 14)");
}
