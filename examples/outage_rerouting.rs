//! Outage rerouting: watch the reactive overlay dodge a path failure.
//!
//! A four-node overlay runs on the simulator; two minutes in, the core
//! segment of the A→B path fails for three minutes (the paper's §1
//! "outages lasting several minutes"). The example prints a timeline of
//! A's routing decision toward B and the delivery rate of a steady
//! packet stream under direct vs. loss-optimised routing.
//!
//! ```sh
//! cargo run --release --example outage_rerouting
//! ```

use mpath::netsim::{
    Delivery, EventQueue, HostId, LoadProfile, Network, SimDuration, SimTime, Topology,
};
use mpath::overlay::{NodeConfig, OverlayNode, Packet, Policy, Route, Transmit};

enum Ev {
    NodeTimer(u16),
    Arrive { to: u16, packet: Packet },
    AppTick,
}

fn main() {
    let n = 4;
    let topo = Topology::synthetic(n, 0.001, 7);
    let (a, b) = (HostId(0), HostId(1));
    let broken_core = topo.seg_core(a, b);
    let mut net = Network::new(topo, 7);
    net.set_load(LoadProfile::flat());

    let mut nodes: Vec<OverlayNode> = (0..n as u16)
        .map(|i| OverlayNode::new(HostId(i), n, NodeConfig::default(), 100 + i as u64, SimTime::ZERO))
        .collect();

    let mut q = EventQueue::new();
    for i in 0..n as u16 {
        if let Some(t) = nodes[i as usize].poll_at() {
            q.push(t, Ev::NodeTimer(i));
        }
    }
    q.push(SimTime::from_secs(1), Ev::AppTick);

    let outage_start = SimTime::from_secs(120);
    let outage = SimDuration::from_secs(180);
    let end = SimTime::from_secs(480);
    let mut outage_armed = true;

    let (mut direct_sent, mut direct_ok) = (0u32, 0u32);
    let (mut smart_sent, mut smart_ok) = (0u32, 0u32);
    let mut last_route = Route::Direct;

    println!("time      A→B route       direct   loss-optimised");
    while let Some((now, ev)) = q.pop() {
        if now > end {
            break;
        }
        if outage_armed && now >= outage_start {
            outage_armed = false;
            net.segment_mut(broken_core).force_outage(now, outage);
            println!("{now}  *** core segment of A→B fails for {outage} ***");
        }
        match ev {
            Ev::NodeTimer(i) => {
                let due = nodes[i as usize].poll_at();
                if let Some(due) = due {
                    if due > now {
                        q.push(due, Ev::NodeTimer(i));
                        continue;
                    }
                }
                let mut out: Vec<Transmit> = Vec::new();
                nodes[i as usize].on_timer(now, now.as_micros() as i64, &mut out);
                for tx in out {
                    if let Delivery::Delivered { delay } = net.transmit(now, HostId(i), tx.to) {
                        q.push(now + delay, Ev::Arrive { to: tx.to.0, packet: tx.packet });
                    }
                }
                if let Some(t) = nodes[i as usize].poll_at() {
                    q.push(t.max(now + SimDuration::from_micros(1)), Ev::NodeTimer(i));
                }
            }
            Ev::Arrive { to, packet } => {
                let mut out = Vec::new();
                nodes[to as usize].on_packet(now, now.as_micros() as i64, packet, &mut out);
                for tx in out {
                    if let Delivery::Delivered { delay } = net.transmit(now, HostId(to), tx.to) {
                        q.push(now + delay, Ev::Arrive { to: tx.to.0, packet: tx.packet });
                    }
                }
            }
            Ev::AppTick => {
                // One application packet per second under each strategy,
                // counted end to end (including the forwarding hop).
                let route = nodes[0].route(b, Policy::MinLoss, now);
                if route != last_route {
                    println!("{now}  route changed: {last_route:?} → {route:?}");
                    last_route = route;
                }
                direct_sent += 1;
                if net.transmit(now, a, b).is_delivered() {
                    direct_ok += 1;
                }
                smart_sent += 1;
                match route {
                    Route::Direct => {
                        if net.transmit(now, a, b).is_delivered() {
                            smart_ok += 1;
                        }
                    }
                    Route::Via(k) => {
                        if net.transmit(now, a, k).is_delivered()
                            && net.transmit(now, k, b).is_delivered()
                        {
                            smart_ok += 1;
                        }
                    }
                }
                if now.as_secs() % 60 == 0 {
                    println!(
                        "{now}  {last_route:?}    {direct_ok}/{direct_sent}   {smart_ok}/{smart_sent}"
                    );
                }
                q.push(now + SimDuration::from_secs(1), Ev::AppTick);
            }
        }
    }

    println!("\nfinal delivery rates over {end}:");
    println!(
        "  direct Internet path : {direct_ok}/{direct_sent} ({:.1}%)",
        100.0 * direct_ok as f64 / direct_sent as f64
    );
    println!(
        "  reactive overlay     : {smart_ok}/{smart_sent} ({:.1}%)",
        100.0 * smart_ok as f64 / smart_sent as f64
    );
    println!("\nreactive routing rides out the outage via an intermediate (paper §5.1).");
}
