//! Live overlay on loopback: the same node code that runs in the
//! simulator, on real UDP sockets with an impaired wire.
//!
//! Spawns five overlay nodes on 127.0.0.1, waits for probing to
//! converge, then streams 200 packets from node 0 to node 1 twice —
//! once direct, once 2-redundant (direct + random intermediate) — and
//! prints the delivery comparison.
//!
//! ```sh
//! cargo run --release --example live_overlay
//! ```

use mpath::live::{run_mesh_demo, Cluster, Impairment};
use mpath::netsim::HostId;
use mpath::overlay::Policy;
use tokio::time::Duration;

#[tokio::main(flavor = "multi_thread", worker_threads = 2)]
async fn main() -> std::io::Result<()> {
    // A 12%-loss, ~8 ms wire: roughly a bad WAN path.
    let impair = Impairment::lossy(0.12, 8);
    println!("spawning 5 overlay nodes on loopback (12% loss, ~8 ms delay per hop)...");
    let cluster = Cluster::spawn(5, impair, 4242).await?;

    println!("letting the probers converge for 2 s...");
    tokio::time::sleep(Duration::from_secs(2)).await;

    if let Some(snap) = cluster.nodes()[0].snapshot().await {
        println!("\nnode 0's view of the mesh:");
        for (peer, loss, lat, dead) in snap {
            println!(
                "  peer {:>2}: probe loss {:>5.1}%, latency {:>7}, {}",
                peer.0,
                loss * 100.0,
                lat.map(|l| format!("{:.1} ms", l / 1000.0)).unwrap_or_else(|| "?".into()),
                if dead { "DEAD" } else { "alive" }
            );
        }
    }
    if let Some(route) = cluster.nodes()[0].route(HostId(1), Policy::MinLoss).await {
        println!("\nnode 0's loss-optimised route to node 1: {route:?}");
    }

    println!("\nstreaming 200 packets direct vs 2-redundant mesh...");
    let report = run_mesh_demo(&cluster, 200, Duration::from_millis(5)).await?;
    println!(
        "  direct: {:>3}/{} delivered ({:.1}%)",
        report.direct_delivered,
        report.sent,
        100.0 * report.direct_delivered as f64 / report.sent as f64
    );
    println!(
        "  mesh  : {:>3}/{} delivered ({:.1}%)",
        report.mesh_delivered,
        report.sent,
        100.0 * report.mesh_delivered as f64 / report.sent as f64
    );
    println!("\n2-redundant mesh routing masks most of the wire's loss (paper §3.2).");

    cluster.shutdown().await;
    Ok(())
}
