//! §5.2 live: protecting an interactive stream with FEC on a bursty path.
//!
//! A 50-packet/s voice-like stream crosses a path with 2% bursty loss
//! (the same Gilbert–Elliott process the testbed segments use). A (5,1)
//! Reed–Solomon code — the paper's "1 redundant packet for every 5 data
//! packets" — is swept across interleaving depths. The table shows the
//! §5.2 dilemma: the redundancy only works once a group's packets are
//! spread ~half a second apart, and that delay is exactly what an
//! interactive stream cannot spend.
//!
//! ```sh
//! cargo run --release --example voip_fec
//! ```

use mpath::fec::{BlockInterleaver, FecReceiver, FecSender};
use mpath::netsim::{GeParams, GilbertElliott, Rng, SimDuration, SimTime};

fn main() {
    let k = 5;
    let r = 1;
    let pkt_interval = SimDuration::from_millis(20); // 50 pps
    let loss = GeParams::from_stationary_loss(0.02);
    let packets = 150_000;

    println!("stream: 50 pkt/s, FEC({k},{r}), path loss 2% (bursty)");
    println!(
        "\n{:>6} {:>12} {:>10} {:>10} {:>12} {:>14}",
        "depth", "spread(ms)", "raw", "residual", "removed", "added delay"
    );

    for depth in [1usize, 2, 4, 8, 16, 25, 32] {
        let il = BlockInterleaver::new(k + r, depth);
        let block = il.len();
        let mut ge = GilbertElliott::new(loss);
        let mut rng = Rng::new(2003 ^ depth as u64);
        let mut tx = FecSender::new(k, r).unwrap();
        let mut rx = FecReceiver::new(k, r, depth as u32 + 4).unwrap();

        let mut logical: Vec<Option<mpath::fec::FecPacket>> = Vec::new();
        let mut slot = 0u64;
        let (mut sent, mut dropped) = (0u64, 0u64);
        for i in 0..packets {
            for pkt in tx.push(vec![(i % 256) as u8; 40]).unwrap() {
                logical.push(Some(pkt));
                if logical.len() == block {
                    let mut wire: Vec<Option<mpath::fec::FecPacket>> = vec![None; block];
                    for (idx, p) in logical.drain(..).enumerate() {
                        wire[il.permute(idx)] = p;
                    }
                    for p in wire {
                        let t = SimTime::from_micros(slot * pkt_interval.as_micros());
                        slot += 1;
                        sent += 1;
                        let (_, lost) = ge.observe(t, 1.0, &mut rng);
                        if lost {
                            dropped += 1;
                            rx.on_slot(None);
                        } else {
                            rx.on_slot(p);
                        }
                    }
                }
            }
        }
        let stats = rx.finish();
        let raw = dropped as f64 / sent as f64;
        println!(
            "{:>6} {:>12.0} {:>9.3}% {:>9.3}% {:>11.0}% {:>12.0}ms",
            depth,
            depth as f64 * pkt_interval.as_millis_f64(),
            raw * 100.0,
            stats.residual_loss() * 100.0,
            100.0 * (1.0 - stats.residual_loss() / raw),
            il.max_delay_slots() as f64 * pkt_interval.as_millis_f64(),
        );
    }

    println!("\npaper §5.2: \"the FEC information must be spread out by nearly half a");
    println!("second if sending packets down the same path\" — at 50 pps that is depth");
    println!("~25, which also buffers ~3 s of audio. Multi-path diversity (the mesh of");
    println!("the main experiments) decorrelates without the delay.");
}
