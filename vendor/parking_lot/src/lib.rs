//! Vendored `parking_lot` shim.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of the `parking_lot` API the workspace uses, implemented on
//! top of `std::sync`. The key behavioural difference `parking_lot` users
//! rely on — `lock()` returning a guard directly instead of a poisoning
//! `Result` — is preserved by swallowing poison errors (a poisoned lock
//! just hands back the inner guard, matching parking_lot's no-poisoning
//! semantics).

use std::sync::{PoisonError, TryLockError};

/// A mutual-exclusion primitive; `lock()` never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock; `read()`/`write()` never return errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
