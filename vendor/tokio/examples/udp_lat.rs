use std::time::{Duration, Instant};

fn main() {
    tokio::runtime::block_on(async {
        let a = tokio::net::UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let b = tokio::net::UdpSocket::bind("127.0.0.1:0").await.unwrap();
        let addr_b = b.local_addr().unwrap();
        let start = Instant::now();
        let recv_task = tokio::spawn(async move {
            let mut buf = [0u8; 64];
            // select-style wait like the node loop: long timer + recv
            loop {
                tokio::select! {
                    _ = tokio::time::sleep(Duration::from_millis(200)) => { println!("B timer at {:?}", start.elapsed()); }
                    r = b.recv_from(&mut buf) => {
                        let (n, _) = r.unwrap();
                        println!("B recv {n}B at {:?}", start.elapsed());
                        break;
                    }
                }
            }
        });
        // sender task: sleep 70ms then send (mimics probe timer)
        tokio::time::sleep(Duration::from_millis(70)).await;
        println!("A sending at {:?}", start.elapsed());
        a.send_to(b"hello", addr_b).await.unwrap();
        let _ = recv_task.await;
        println!("done at {:?}", start.elapsed());
    });
}
