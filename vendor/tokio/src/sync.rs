//! Synchronization: bounded mpsc channels, oneshot channels, and
//! [`Notify`].

use std::collections::VecDeque;
use std::fmt;
use std::future::{poll_fn, Future};
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// Bounded multi-producer single-consumer channels.
pub mod mpsc {
    use super::*;

    struct ChanState<T> {
        queue: VecDeque<T>,
        capacity: usize,
        senders: usize,
        receiver_alive: bool,
        recv_waker: Option<Waker>,
        send_wakers: Vec<Waker>,
    }

    struct Chan<T>(Mutex<ChanState<T>>);

    /// Creates a bounded channel with room for `capacity` messages.
    pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "mpsc capacity must be > 0");
        let chan = Arc::new(Chan(Mutex::new(ChanState {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receiver_alive: true,
            recv_waker: None,
            send_wakers: Vec::new(),
        })));
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("channel closed")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// The receiver was dropped.
        Closed(T),
    }

    /// The sending half; clonable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.0.lock().unwrap().senders += 1;
            Sender { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.chan.0.lock().unwrap();
            s.senders -= 1;
            if s.senders == 0 {
                if let Some(w) = s.recv_waker.take() {
                    w.wake();
                }
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, waiting for space if the channel is full.
        pub async fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut value = Some(value);
            poll_fn(move |cx| {
                let mut s = self.chan.0.lock().unwrap();
                if !s.receiver_alive {
                    return Poll::Ready(Err(SendError(value.take().expect("polled after ready"))));
                }
                if s.queue.len() < s.capacity {
                    s.queue.push_back(value.take().expect("polled after ready"));
                    if let Some(w) = s.recv_waker.take() {
                        w.wake();
                    }
                    Poll::Ready(Ok(()))
                } else {
                    s.send_wakers.push(cx.waker().clone());
                    Poll::Pending
                }
            })
            .await
        }

        /// Sends without waiting; fails if full or closed.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut s = self.chan.0.lock().unwrap();
            if !s.receiver_alive {
                return Err(TrySendError::Closed(value));
            }
            if s.queue.len() >= s.capacity {
                return Err(TrySendError::Full(value));
            }
            s.queue.push_back(value);
            if let Some(w) = s.recv_waker.take() {
                w.wake();
            }
            Ok(())
        }
    }

    /// The receiving half.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut s = self.chan.0.lock().unwrap();
            s.receiver_alive = false;
            for w in s.send_wakers.drain(..) {
                w.wake();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next message; `None` once all senders dropped and
        /// the queue drained. Cancel-safe.
        pub async fn recv(&mut self) -> Option<T> {
            poll_fn(|cx| {
                let mut s = self.chan.0.lock().unwrap();
                if let Some(value) = s.queue.pop_front() {
                    for w in s.send_wakers.drain(..) {
                        w.wake();
                    }
                    return Poll::Ready(Some(value));
                }
                if s.senders == 0 {
                    return Poll::Ready(None);
                }
                s.recv_waker = Some(cx.waker().clone());
                Poll::Pending
            })
            .await
        }

        /// Receives without waiting.
        pub fn try_recv(&mut self) -> Option<T> {
            let mut s = self.chan.0.lock().unwrap();
            let out = s.queue.pop_front();
            if out.is_some() {
                for w in s.send_wakers.drain(..) {
                    w.wake();
                }
            }
            out
        }
    }
}

/// One-shot value channels.
pub mod oneshot {
    use super::*;

    struct OnceState<T> {
        value: Option<T>,
        sender_alive: bool,
        waker: Option<Waker>,
    }

    /// Creates a channel carrying a single value.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let state = Arc::new(Mutex::new(OnceState {
            value: None,
            sender_alive: true,
            waker: None,
        }));
        (Sender { state: state.clone() }, Receiver { state })
    }

    /// Error returned when awaiting a dropped sender.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError(());

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("oneshot sender dropped")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half; consumed by [`Sender::send`].
    pub struct Sender<T> {
        state: Arc<Mutex<OnceState<T>>>,
    }

    impl<T> Sender<T> {
        /// Delivers `value`; fails (returning it) if the receiver is gone.
        pub fn send(self, value: T) -> Result<(), T> {
            let mut s = self.state.lock().unwrap();
            // Two handles exist (this sender and the receiver); if we hold
            // one of the last two, the receiver may still be alive only if
            // the refcount is 2.
            if Arc::strong_count(&self.state) < 2 {
                return Err(value);
            }
            s.value = Some(value);
            if let Some(w) = s.waker.take() {
                w.wake();
            }
            Ok(())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.state.lock().unwrap();
            s.sender_alive = false;
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        }
    }

    /// The receiving half; a future resolving to the sent value.
    pub struct Receiver<T> {
        state: Arc<Mutex<OnceState<T>>>,
    }

    impl<T> Future for Receiver<T> {
        type Output = Result<T, RecvError>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut s = self.state.lock().unwrap();
            if let Some(value) = s.value.take() {
                return Poll::Ready(Ok(value));
            }
            if !s.sender_alive {
                return Poll::Ready(Err(RecvError(())));
            }
            s.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Notifies waiting tasks (subset: `notified` + `notify_waiters`).
///
/// Matching tokio semantics, [`Notify::notify_waiters`] wakes only
/// [`Notified`] futures that have already been polled; it does not store
/// a permit for future waiters. On this single-threaded runtime that is
/// race-free for the select-loop shutdown pattern, because a waiter is
/// always parked at its `select!` (and therefore enlisted) whenever
/// another task runs.
#[derive(Debug, Default)]
pub struct Notify {
    state: Mutex<NotifyState>,
}

#[derive(Debug, Default)]
struct NotifyState {
    generation: u64,
    waiters: Vec<Waker>,
}

impl Notify {
    /// Creates a new `Notify`.
    pub fn new() -> Self {
        Notify::default()
    }

    /// Returns a future completing at the next `notify_waiters` call
    /// issued after this future's first poll.
    pub fn notified(&self) -> Notified<'_> {
        Notified { notify: self, enlisted_at: None }
    }

    /// Wakes every currently enlisted waiter.
    pub fn notify_waiters(&self) {
        let mut s = self.state.lock().unwrap();
        s.generation += 1;
        for w in s.waiters.drain(..) {
            w.wake();
        }
    }
}

/// Future returned by [`Notify::notified`].
#[derive(Debug)]
pub struct Notified<'a> {
    notify: &'a Notify,
    enlisted_at: Option<u64>,
}

impl Future for Notified<'_> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut s = self.notify.state.lock().unwrap();
        match self.enlisted_at {
            Some(gen) if s.generation > gen => Poll::Ready(()),
            // Already enlisted: the waker stays in `waiters` until the next
            // notify_waiters drains it, so don't push a duplicate per poll.
            Some(_) => Poll::Pending,
            None => {
                self.enlisted_at = Some(s.generation);
                s.waiters.push(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}
