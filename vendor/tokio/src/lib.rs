//! Vendored mini-tokio.
//!
//! A small, dependency-free async runtime exposing the subset of the
//! tokio API the workspace's live driver and distributed campaign
//! runner use: [`net::UdpSocket`], [`net::TcpListener`] /
//! [`net::TcpStream`], [`sync::mpsc`] / [`sync::oneshot`] /
//! [`sync::Notify`], [`time`] (sleep / sleep_until / timeout),
//! [`spawn`], [`task::JoinHandle`], the [`select!`] macro, and the
//! `#[tokio::main]` / `#[tokio::test]` attribute macros.
//!
//! ## Design
//!
//! The executor is a cooperative **single-threaded** scheduler (the
//! `worker_threads` attribute argument is accepted and ignored). Tasks
//! run on the thread that called [`runtime::block_on`]; wakers push
//! tasks onto a ready queue and unpark that thread. Timers live in a
//! binary heap keyed by deadline. UDP sockets are nonblocking
//! `std::net` sockets: a pending I/O future registers itself with the
//! reactor and is re-polled on a short tick (bounded by the next timer
//! deadline), which trades a sub-millisecond wakeup granularity for
//! having no OS-specific poller — ample for the overlay's
//! hundreds-of-milliseconds probe cadence.
//!
//! Single-threadedness is also what makes the workspace's
//! `Notify::notify_waiters`-based shutdown race-free here: a task can
//! only observe the notification while parked at its `select!`, and the
//! notifying task cannot run concurrently with it.

pub mod net;
pub mod runtime;
pub mod sync;
pub mod task;
pub mod time;

#[doc(hidden)]
pub mod select;

pub use task::spawn;
pub use tokio_macros::{main, test};
