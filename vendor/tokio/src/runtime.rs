//! The executor: ready queue, timer wheel, and I/O tick.

use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

/// Granularity of the I/O re-poll tick while sockets are pending.
///
/// The tick is *time-gated*: I/O-parked futures are re-woken at most once
/// per `IO_TICK`, however often the executor loop itself spins. Without
/// the gate, each io wake leaves an unpark token that makes the next
/// `park_timeout` return immediately, and the loop degenerates into a
/// busy spin (which additionally melts under cgroup CPU throttling).
const IO_TICK: Duration = Duration::from_micros(500);
/// Heartbeat when nothing at all is scheduled (guards against lost
/// unparks; purely a safety net).
const IDLE_HEARTBEAT: Duration = Duration::from_millis(50);

pub(crate) struct Shared {
    /// Tasks ready to be polled.
    ready: Mutex<VecDeque<Arc<Task>>>,
    /// Pending timers (min-heap by deadline).
    timers: Mutex<BinaryHeap<TimerEntry>>,
    /// Wakers parked on socket readiness, re-woken every I/O tick.
    io_wakers: Mutex<Vec<Waker>>,
    /// Set when the root future's waker fired.
    root_woken: AtomicBool,
    /// The executor thread, unparked by wakers.
    thread: std::thread::Thread,
}

struct TimerEntry {
    deadline: Instant,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline.
        other.deadline.cmp(&self.deadline)
    }
}

pub(crate) struct Task {
    future: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send>>>>,
    shared: Weak<Shared>,
    /// Dedup flag: true while the task sits in the ready queue, so N wakes
    /// before the next poll enqueue it once, not N times.
    queued: AtomicBool,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if let Some(shared) = self.shared.upgrade() {
            if !self.queued.swap(true, Ordering::SeqCst) {
                shared.ready.lock().unwrap().push_back(self.clone());
            }
            shared.thread.unpark();
        }
    }
}

struct RootWaker {
    shared: Weak<Shared>,
}

impl Wake for RootWaker {
    fn wake(self: Arc<Self>) {
        if let Some(shared) = self.shared.upgrade() {
            shared.root_woken.store(true, Ordering::SeqCst);
            shared.thread.unpark();
        }
    }
}

std::thread_local! {
    static CONTEXT: std::cell::RefCell<Option<Arc<Shared>>> =
        const { std::cell::RefCell::new(None) };
}

pub(crate) fn with_shared<R>(f: impl FnOnce(&Arc<Shared>) -> R) -> R {
    CONTEXT.with(|ctx| {
        let ctx = ctx.borrow();
        let shared = ctx
            .as_ref()
            .expect("no mini-tokio runtime running on this thread (use #[tokio::main]/#[tokio::test] or runtime::block_on)");
        f(shared)
    })
}

impl Shared {
    pub(crate) fn spawn_task(
        self: &Arc<Self>,
        future: Pin<Box<dyn Future<Output = ()> + Send>>,
    ) {
        let task = Arc::new(Task {
            future: Mutex::new(Some(future)),
            shared: Arc::downgrade(self),
            queued: AtomicBool::new(true),
        });
        self.ready.lock().unwrap().push_back(task);
        self.thread.unpark();
    }

    pub(crate) fn register_timer(&self, deadline: Instant, waker: Waker) {
        self.timers.lock().unwrap().push(TimerEntry { deadline, waker });
        // No unpark needed: only the executor thread registers timers, and
        // it re-computes its park timeout after every poll round.
    }

    pub(crate) fn register_io(&self, waker: Waker) {
        self.io_wakers.lock().unwrap().push(waker);
    }
}

/// Runs `root` to completion on the current thread, driving spawned
/// tasks, timers, and socket I/O.
pub fn block_on<F: Future>(root: F) -> F::Output {
    let shared = Arc::new(Shared {
        ready: Mutex::new(VecDeque::new()),
        timers: Mutex::new(BinaryHeap::new()),
        io_wakers: Mutex::new(Vec::new()),
        root_woken: AtomicBool::new(true),
        thread: std::thread::current(),
    });
    let previous = CONTEXT.with(|ctx| ctx.borrow_mut().replace(shared.clone()));

    struct ContextGuard(Option<Arc<Shared>>);
    impl Drop for ContextGuard {
        fn drop(&mut self) {
            let previous = self.0.take();
            CONTEXT.with(|ctx| *ctx.borrow_mut() = previous);
        }
    }
    let _guard = ContextGuard(previous);

    let root_waker = Waker::from(Arc::new(RootWaker { shared: Arc::downgrade(&shared) }));
    let mut root = std::pin::pin!(root);
    let mut next_io_tick = Instant::now();

    loop {
        // 1. Poll the root future when its waker fired.
        if shared.root_woken.swap(false, Ordering::SeqCst) {
            let mut cx = Context::from_waker(&root_waker);
            if let Poll::Ready(out) = root.as_mut().poll(&mut cx) {
                return out;
            }
        }

        // 2. Drain the ready queue.
        loop {
            let next = shared.ready.lock().unwrap().pop_front();
            let Some(task) = next else { break };
            task.queued.store(false, Ordering::SeqCst);
            // Take the future out so a reentrant wake can't deadlock.
            let fut = task.future.lock().unwrap().take();
            if let Some(mut fut) = fut {
                let waker = Waker::from(task.clone());
                let mut cx = Context::from_waker(&waker);
                if fut.as_mut().poll(&mut cx).is_pending() {
                    *task.future.lock().unwrap() = Some(fut);
                }
            }
        }

        // 3. Fire expired timers.
        let now = Instant::now();
        let mut next_deadline = None;
        {
            let mut timers = shared.timers.lock().unwrap();
            while let Some(entry) = timers.peek() {
                if entry.deadline <= now {
                    timers.pop().unwrap().waker.wake();
                } else {
                    next_deadline = Some(entry.deadline);
                    break;
                }
            }
        }

        // 4. Anything became ready? Go again without parking.
        if shared.root_woken.load(Ordering::SeqCst)
            || !shared.ready.lock().unwrap().is_empty()
        {
            continue;
        }

        // 5. Re-wake I/O-parked futures, at most once per IO_TICK.
        let io_pending = !shared.io_wakers.lock().unwrap().is_empty();
        if io_pending && now >= next_io_tick {
            next_io_tick = now + IO_TICK;
            let io = std::mem::take(&mut *shared.io_wakers.lock().unwrap());
            for waker in io {
                waker.wake();
            }
            continue;
        }

        // 6. Park until the next event source can make progress. A stale
        // unpark token makes this return early at most once; the io-tick
        // gate in step 5 keeps that from turning into a spin.
        let mut timeout = if io_pending {
            next_io_tick.saturating_duration_since(now).min(IO_TICK)
        } else {
            IDLE_HEARTBEAT
        };
        if let Some(deadline) = next_deadline {
            timeout = timeout.min(deadline.saturating_duration_since(now));
        }
        std::thread::park_timeout(timeout);
    }
}

/// Handle mirroring `tokio::runtime::Runtime` for explicit construction.
#[derive(Debug)]
pub struct Runtime {
    _private: (),
}

impl Runtime {
    /// Creates a runtime handle.
    pub fn new() -> std::io::Result<Runtime> {
        Ok(Runtime { _private: () })
    }

    /// Runs `future` to completion on the current thread.
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        block_on(future)
    }
}
