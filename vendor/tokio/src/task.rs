//! Task spawning and join handles.

use crate::runtime::with_shared;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

struct JoinState<T> {
    output: Option<T>,
    finished: bool,
    waker: Option<Waker>,
}

/// Owned handle awaiting a spawned task's completion.
pub struct JoinHandle<T> {
    state: Arc<Mutex<JoinState<T>>>,
}

/// Error returned when a task's output was already consumed. (Mini-tokio
/// tasks cannot be cancelled and panics propagate on the executor
/// thread, so in practice this is unobservable.)
#[derive(Debug)]
pub struct JoinError(());

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("task output already taken")
    }
}

impl std::error::Error for JoinError {}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = self.state.lock().unwrap();
        if state.finished {
            return Poll::Ready(state.output.take().ok_or(JoinError(())));
        }
        state.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Spawns `future` onto the current runtime, returning a handle to its
/// output.
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let state = Arc::new(Mutex::new(JoinState { output: None, finished: false, waker: None }));
    let state2 = state.clone();
    let wrapped: Pin<Box<dyn Future<Output = ()> + Send>> = Box::pin(async move {
        let output = future.await;
        let mut s = state2.lock().unwrap();
        s.output = Some(output);
        s.finished = true;
        if let Some(w) = s.waker.take() {
            w.wake();
        }
    });
    with_shared(|shared| shared.spawn_task(wrapped));
    JoinHandle { state }
}
