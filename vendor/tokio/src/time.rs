//! Timers: `sleep`, `sleep_until`, and `timeout`.

pub use std::time::{Duration, Instant};

use crate::runtime::with_shared;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Future returned by [`sleep`] / [`sleep_until`].
#[derive(Debug)]
pub struct Sleep {
    deadline: Instant,
    /// A timer-heap entry lives until it expires, so one registration per
    /// `Sleep` suffices; re-registering on every poll would grow the heap
    /// by one duplicate entry per I/O tick.
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            Poll::Ready(())
        } else {
            if !self.registered {
                self.registered = true;
                let waker = cx.waker().clone();
                with_shared(|shared| shared.register_timer(self.deadline, waker));
            }
            Poll::Pending
        }
    }
}

/// Completes after `duration` has elapsed.
pub fn sleep(duration: Duration) -> Sleep {
    sleep_until(Instant::now() + duration)
}

/// Completes at `deadline`.
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep { deadline, registered: false }
}

/// Error returned by [`timeout`] when the deadline passes first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed(());

impl fmt::Display for Elapsed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("deadline has elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Future returned by [`timeout`].
#[derive(Debug)]
pub struct Timeout<F> {
    future: Pin<Box<F>>,
    sleep: Sleep,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Poll::Ready(out) = self.future.as_mut().poll(cx) {
            return Poll::Ready(Ok(out));
        }
        match Pin::new(&mut self.sleep).poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(Elapsed(()))),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Limits `future` to complete within `duration`.
pub fn timeout<F: Future>(duration: Duration, future: F) -> Timeout<F> {
    Timeout { future: Box::pin(future), sleep: sleep(duration) }
}
