//! Async UDP sockets over nonblocking `std::net`.

use crate::runtime::with_shared;
use std::future::poll_fn;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::task::{Context, Poll};

/// An async UDP socket.
///
/// Backed by a nonblocking [`std::net::UdpSocket`]; pending operations
/// register with the runtime's I/O tick and are re-polled until the
/// socket is ready. `recv_from` and `send_to` are cancel-safe: dropping
/// the returned future (as `select!` does) never consumes a datagram.
#[derive(Debug)]
pub struct UdpSocket {
    inner: std::net::UdpSocket,
}

impl UdpSocket {
    /// Binds a socket to `addr`.
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<UdpSocket> {
        let inner = std::net::UdpSocket::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(UdpSocket { inner })
    }

    /// The socket's locally bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    fn pend_on_io<T>(&self, cx: &mut Context<'_>) -> Poll<T> {
        let waker = cx.waker().clone();
        with_shared(|shared| shared.register_io(waker));
        Poll::Pending
    }

    /// Sends `buf` to `target`.
    pub async fn send_to<A: ToSocketAddrs>(&self, buf: &[u8], target: A) -> io::Result<usize> {
        let target = target
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        poll_fn(|cx| match self.inner.send_to(buf, target) {
            Ok(n) => Poll::Ready(Ok(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => self.pend_on_io(cx),
            Err(e) => Poll::Ready(Err(e)),
        })
        .await
    }

    /// Receives one datagram into `buf`, returning its length and origin.
    pub async fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        poll_fn(|cx| match self.inner.recv_from(buf) {
            Ok(out) => Poll::Ready(Ok(out)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => self.pend_on_io(cx),
            // Linux surfaces ICMP errors from previous sends on unconnected
            // UDP sockets; treat them as transient like tokio users do.
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => self.pend_on_io(cx),
            Err(e) => Poll::Ready(Err(e)),
        })
        .await
    }
}
