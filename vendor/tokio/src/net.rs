//! Async UDP and TCP sockets over nonblocking `std::net`.

use crate::runtime::with_shared;
use std::future::poll_fn;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, ToSocketAddrs};
use std::task::{Context, Poll};

fn pend_on_io_tick<T>(cx: &mut Context<'_>) -> Poll<T> {
    let waker = cx.waker().clone();
    with_shared(|shared| shared.register_io(waker));
    Poll::Pending
}

/// An async UDP socket.
///
/// Backed by a nonblocking [`std::net::UdpSocket`]; pending operations
/// register with the runtime's I/O tick and are re-polled until the
/// socket is ready. `recv_from` and `send_to` are cancel-safe: dropping
/// the returned future (as `select!` does) never consumes a datagram.
#[derive(Debug)]
pub struct UdpSocket {
    inner: std::net::UdpSocket,
}

impl UdpSocket {
    /// Binds a socket to `addr`.
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<UdpSocket> {
        let inner = std::net::UdpSocket::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(UdpSocket { inner })
    }

    /// The socket's locally bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    fn pend_on_io<T>(&self, cx: &mut Context<'_>) -> Poll<T> {
        pend_on_io_tick(cx)
    }

    /// Sends `buf` to `target`.
    pub async fn send_to<A: ToSocketAddrs>(&self, buf: &[u8], target: A) -> io::Result<usize> {
        let target = target
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        poll_fn(|cx| match self.inner.send_to(buf, target) {
            Ok(n) => Poll::Ready(Ok(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => self.pend_on_io(cx),
            Err(e) => Poll::Ready(Err(e)),
        })
        .await
    }

    /// Receives one datagram into `buf`, returning its length and origin.
    pub async fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        poll_fn(|cx| match self.inner.recv_from(buf) {
            Ok(out) => Poll::Ready(Ok(out)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => self.pend_on_io(cx),
            // Linux surfaces ICMP errors from previous sends on unconnected
            // UDP sockets; treat them as transient like tokio users do.
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => self.pend_on_io(cx),
            Err(e) => Poll::Ready(Err(e)),
        })
        .await
    }
}

/// An async TCP listener.
///
/// Same reactor model as [`UdpSocket`]: a nonblocking
/// [`std::net::TcpListener`] whose pending `accept` registers with the
/// runtime's I/O tick. `accept` is cancel-safe — dropping the future (as
/// `select!` does) never consumes a connection.
#[derive(Debug)]
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Binds a listener to `addr`.
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        TcpListener::from_std(std::net::TcpListener::bind(addr)?)
    }

    /// Wraps an already-bound blocking listener (it is switched to
    /// nonblocking mode). Lets callers bind on port 0 *before* entering
    /// the runtime and hand the resolved address to peers.
    pub fn from_std(inner: std::net::TcpListener) -> io::Result<TcpListener> {
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    /// The listener's locally bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Accepts one inbound connection.
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        poll_fn(|cx| match self.inner.accept() {
            Ok((stream, addr)) => match TcpStream::from_std(stream) {
                Ok(s) => Poll::Ready(Ok((s, addr))),
                Err(e) => Poll::Ready(Err(e)),
            },
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => pend_on_io_tick(cx),
            // A peer that connected and reset before we accepted is not
            // the listener's failure; keep accepting.
            Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => pend_on_io_tick(cx),
            Err(e) => Poll::Ready(Err(e)),
        })
        .await
    }
}

/// An async TCP stream.
///
/// Exposes the byte-stream subset the workspace's length-prefixed
/// framing needs: `read`, `read_exact`, `write_all`. Partial progress in
/// `read_exact`/`write_all` is kept across polls, so the futures are
/// *not* cancel-safe mid-frame (matching tokio's documented contract) —
/// callers own a stream per task and never race two reads.
#[derive(Debug)]
pub struct TcpStream {
    inner: std::net::TcpStream,
}

impl TcpStream {
    /// Connects to `addr`.
    ///
    /// The TCP handshake itself runs in blocking mode (a bounded,
    /// kernel-level wait), then the stream switches to nonblocking for
    /// all subsequent I/O — sparing the reactor a poll-for-writability
    /// dance it has no epoll to back.
    pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
        let inner = std::net::TcpStream::connect(addr)?;
        TcpStream::from_std(inner)
    }

    /// Wraps an already-connected blocking stream (switched to
    /// nonblocking mode).
    pub fn from_std(inner: std::net::TcpStream) -> io::Result<TcpStream> {
        inner.set_nonblocking(true)?;
        Ok(TcpStream { inner })
    }

    /// The stream's local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// The remote peer's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// Reads some bytes into `buf`; `Ok(0)` means the peer closed.
    pub async fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        poll_fn(|cx| match (&self.inner).read(buf) {
            Ok(n) => Poll::Ready(Ok(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => pend_on_io_tick(cx),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => pend_on_io_tick(cx),
            Err(e) => Poll::Ready(Err(e)),
        })
        .await
    }

    /// Reads exactly `buf.len()` bytes; an early close yields
    /// [`io::ErrorKind::UnexpectedEof`].
    pub async fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        let mut filled = 0;
        while filled < buf.len() {
            let n = self.read(&mut buf[filled..]).await?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ));
            }
            filled += n;
        }
        Ok(())
    }

    /// Writes all of `buf`.
    pub async fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut written = 0;
        while written < buf.len() {
            let n = poll_fn(|cx| match (&self.inner).write(&buf[written..]) {
                Ok(n) => Poll::Ready(Ok(n)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => pend_on_io_tick(cx),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => pend_on_io_tick(cx),
                Err(e) => Poll::Ready(Err(e)),
            })
            .await?;
            if n == 0 {
                return Err(io::Error::new(io::ErrorKind::WriteZero, "wrote 0 bytes"));
            }
            written += n;
        }
        Ok(())
    }
}
