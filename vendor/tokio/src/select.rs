//! The `select!` macro: races futures, running the branch of whichever
//! completes first.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Result of racing two futures (nested per additional branch).
#[derive(Debug)]
pub enum Either<A, B> {
    /// The left future completed first.
    Left(A),
    /// The right future completed first.
    Right(B),
}

/// Future racing `a` against `b`, polled left-to-right (so earlier
/// `select!` branches take priority, like `tokio::select!` with
/// `biased`).
#[derive(Debug)]
pub struct Or<A, B> {
    /// Left (boxed leaf) future.
    pub a: A,
    /// Right future (an `Or` chain or boxed leaf).
    pub b: B,
}

impl<A, B> Future for Or<A, B>
where
    A: Future + Unpin,
    B: Future + Unpin,
{
    type Output = Either<A::Output, B::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if let Poll::Ready(out) = Pin::new(&mut this.a).poll(cx) {
            return Poll::Ready(Either::Left(out));
        }
        if let Poll::Ready(out) = Pin::new(&mut this.b).poll(cx) {
            return Poll::Ready(Either::Right(out));
        }
        Poll::Pending
    }
}

/// Races the given branches, evaluating the body of the first future to
/// complete. Branches are polled in order (biased). Bodies run in the
/// caller's scope, so `break`/`continue`/`return`/`?` work as expected.
///
/// Supported grammar (the tokio core form):
///
/// ```ignore
/// select! {
///     pat = future => body,
///     pat = future => { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! select {
    // --- normalize branches into [{pat} {future} {body}] triples ------
    (@norm [$($done:tt)*] , $($rest:tt)*) => {
        $crate::select!(@norm [$($done)*] $($rest)*)
    };
    (@norm [$($done:tt)*] $pat:pat = $fut:expr => $body:block $($rest:tt)*) => {
        $crate::select!(@norm [$($done)* {$pat} {$fut} {$body}] $($rest)*)
    };
    (@norm [$($done:tt)*] $pat:pat = $fut:expr => $body:expr, $($rest:tt)*) => {
        $crate::select!(@norm [$($done)* {$pat} {$fut} {$body}] $($rest)*)
    };
    (@norm [$($done:tt)*] $pat:pat = $fut:expr => $body:expr) => {
        $crate::select!(@norm [$($done)* {$pat} {$fut} {$body}])
    };
    (@norm [$($done:tt)*]) => {
        $crate::select!(@emit [$($done)*])
    };

    // --- emit: build the Or chain, await it, match the Either chain ---
    (@emit [$({$pat:pat} {$fut:expr} {$body:expr})+]) => {{
        let __result = $crate::select!(@chain $({$fut})+).await;
        $crate::select!(@arms __result; $({$pat} {$body})+)
    }};

    (@chain {$fut:expr}) => {
        ::std::boxed::Box::pin($fut)
    };
    (@chain {$fut:expr} $($rest:tt)+) => {
        $crate::select::Or {
            a: ::std::boxed::Box::pin($fut),
            b: $crate::select!(@chain $($rest)+),
        }
    };

    (@arms $result:ident; {$pat:pat} {$body:expr}) => {{
        let $pat = $result;
        $body
    }};
    (@arms $result:ident; {$pat:pat} {$body:expr} $($rest:tt)+) => {
        match $result {
            $crate::select::Either::Left(__value) => {
                let $pat = __value;
                $body
            }
            $crate::select::Either::Right(__rest) => {
                $crate::select!(@arms __rest; $($rest)+)
            }
        }
    };

    // --- entry point (must come after the internal @rules) ------------
    ($($tokens:tt)+) => {
        $crate::select!(@norm [] $($tokens)+)
    };
}
