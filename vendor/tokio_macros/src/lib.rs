//! Vendored `#[tokio::main]` and `#[tokio::test]`.
//!
//! Rewrites an `async fn` into a synchronous one whose body runs on the
//! mini-tokio executor via `tokio::runtime::block_on`. Attribute
//! arguments (`flavor`, `worker_threads`, ...) are accepted and ignored:
//! the vendored runtime is always single-threaded.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Turns `async fn main()` into a sync `main` that drives the runtime.
#[proc_macro_attribute]
pub fn main(_args: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, false)
}

/// Turns `async fn case()` into a `#[test]` driving the runtime.
#[proc_macro_attribute]
pub fn test(_args: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, true)
}

fn rewrite(item: TokenStream, is_test: bool) -> TokenStream {
    let toks: Vec<TokenTree> = item.into_iter().collect();

    // The function body is the final brace group; everything before it is
    // the signature (attributes, visibility, `async fn name(...) -> T`).
    let Some((TokenTree::Group(body), signature)) = toks.split_last() else {
        return error("expected a function item");
    };
    if body.delimiter() != Delimiter::Brace {
        return error("expected a function body");
    }
    let mut saw_async = false;
    let sig_tokens: TokenStream = signature
        .iter()
        .filter(|t| {
            if let TokenTree::Ident(id) = t {
                if id.to_string() == "async" {
                    saw_async = true;
                    return false;
                }
            }
            true
        })
        .cloned()
        .collect();
    // Stringify the whole stream (not token-by-token) so joint punctuation
    // like `->` survives.
    let sig = sig_tokens.to_string();
    if !saw_async {
        return error("the function must be `async`");
    }

    let test_attr = if is_test { "#[test]\n" } else { "" };
    let out = format!(
        "{test_attr}{sig} {{ ::tokio::runtime::block_on(async move {body}) }}",
        body = body
    );
    out.parse()
        .unwrap_or_else(|_| error("mini tokio_macros produced invalid Rust"))
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}
