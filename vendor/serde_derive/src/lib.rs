//! Vendored `#[derive(Serialize, Deserialize)]` for the mini-serde in
//! `vendor/serde`.
//!
//! Implemented directly on `proc_macro` tokens (the environment has no
//! syn/quote). Supports the type shapes the workspace uses: named-field
//! structs, tuple and unit structs, and enums whose variants are unit,
//! newtype, tuple, or struct-like — serialized with serde's
//! externally-tagged representation. Generic types are rejected with a
//! compile error.
//!
//! Deserialization of named structs and struct-like variants is
//! **strict**: a map key that matches no declared field is a readable
//! error (like real serde's `#[serde(deny_unknown_fields)]`), so a typo
//! in a hand-written scenario file fails loudly instead of silently
//! deserializing to defaults.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (mini-serde's `to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (mini-serde's `from_value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok((name, shape)) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&name, &shape),
                Mode::Deserialize => gen_deserialize(&name, &shape),
            };
            code.parse().expect("mini serde_derive produced invalid Rust")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let keyword = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("mini serde_derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("mini serde_derive: expected type name".into()),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("mini serde_derive: generic type `{name}` is not supported"));
    }
    match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(count_tuple_fields(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            _ => Err("mini serde_derive: malformed struct".into()),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            _ => Err("mini serde_derive: malformed enum".into()),
        },
        other => Err(format!("mini serde_derive: cannot derive for `{other}` items")),
    }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]` — attribute (including rendered doc comments).
                if matches!(toks.get(*i + 1), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 2;
                } else {
                    break;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` etc.
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Splits named fields `a: T, b: U<V, W>, ...` into their names,
/// tracking `<`/`>` depth so commas inside generic arguments don't split.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("mini serde_derive: expected field name, got `{other}`")),
        };
        names.push(name);
        i += 1;
        // Skip `: Type` through the next top-level comma.
        let mut angle = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(names)
}

/// Counts fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in &toks {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("mini serde_derive: expected variant name, got `{other}`")),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            // Explicit discriminant (`Variant = 3`): legal only on
            // fieldless variants, where it does not affect the serde
            // form (unit variants serialize by name). Skip the
            // expression through the next top-level comma.
            if !matches!(kind, VariantKind::Unit) {
                return Err(
                    "mini serde_derive: discriminants on non-unit variants are not supported"
                        .into(),
                );
            }
            i += 1;
            while i < toks.len() {
                if matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
        // Skip the trailing comma.
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(variants)
}

// --------------------------------------------------------------- codegen

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::Serialize::to_value(__f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Seq(::std::vec![{}]))])",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Map(::std::vec![{}]))])",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Generates the strict unknown-field guard for a named struct/variant:
/// any map key outside `fields` is a readable error, not a silent skip.
fn gen_unknown_field_guard(entries_var: &str, context: &str, fields: &[String]) -> String {
    let list: Vec<String> = fields.iter().map(|f| format!("{f:?}")).collect();
    let expected = fields.join("`, `");
    format!(
        "{{\n\
             const __FIELDS: &[&str] = &[{}];\n\
             if let ::std::option::Option::Some(__e) = {entries_var}\
                 .iter().find(|__e| !__FIELDS.contains(&__e.0.as_str())) {{\n\
                 return ::std::result::Result::Err(::serde::Error::new(::std::format!(\n\
                     \"unknown field `{{}}` in {context} (expected `{expected}`)\", __e.0)));\n\
             }}\n\
         }}",
        list.join(", ")
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::Value::field(__v, {f:?})?)?"
                    )
                })
                .collect();
            let guard = gen_unknown_field_guard("__entries", name, fields);
            format!(
                "match __v {{\n\
                     ::serde::Value::Map(__entries) => {{\n\
                         {guard}\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::Error::new(\
                         ::std::format!(\"expected map for {name}, found {{}}\", \
                         __other.kind()))),\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(__items.get({i}).ok_or_else(|| \
                         ::serde::Error::new(\"tuple struct too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Seq(__items) => \
                         ::std::result::Result::Ok({name}({})),\n\
                     __other => ::std::result::Result::Err(::serde::Error::new(\
                         ::std::format!(\"expected sequence, found {{}}\", __other.kind()))),\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => ::std::result::Result::Ok({name}::{}),", v.name, v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(__items.get({i})\
                                         .ok_or_else(|| ::serde::Error::new(\
                                         \"tuple variant too short\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => match __inner {{\n\
                                     ::serde::Value::Seq(__items) => \
                                         ::std::result::Result::Ok({name}::{vn}({})),\n\
                                     _ => ::std::result::Result::Err(::serde::Error::new(\
                                         \"expected sequence for tuple variant\")),\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::Value::field(__inner, {f:?})?)?"
                                    )
                                })
                                .collect();
                            let guard = gen_unknown_field_guard(
                                "__ventries",
                                &format!("{name}::{vn}"),
                                fields,
                            );
                            Some(format!(
                                "{vn:?} => match __inner {{\n\
                                     ::serde::Value::Map(__ventries) => {{\n\
                                         {guard}\n\
                                         ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                     }}\n\
                                     __other => ::std::result::Result::Err(::serde::Error::new(\
                                         ::std::format!(\"expected map for {name}::{vn}, \
                                         found {{}}\", __other.kind()))),\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => ::std::result::Result::Err(::serde::Error::new(\
                             ::std::format!(\"unknown variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             __other => ::std::result::Result::Err(::serde::Error::new(\
                                 ::std::format!(\"unknown variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::Error::new(\
                         ::std::format!(\"expected enum, found {{}}\", __other.kind()))),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
