//! Vendored mini-criterion.
//!
//! A drop-in subset of the criterion API (`Criterion`,
//! `benchmark_group`, `Bencher::iter`, `Throughput`, the
//! `criterion_group!`/`criterion_main!` macros) with a simple but honest
//! measurement loop: per benchmark it auto-calibrates an iteration batch
//! to a ~25 ms target, collects `sample_size` batch samples, and
//! reports min/mean/max per-iteration time plus derived throughput.
//!
//! Statistical niceties of real criterion (outlier classification,
//! regression against saved baselines, HTML reports) are out of scope —
//! wall-clock numbers printed here are still directly comparable across
//! runs on the same machine, which is what the bench suite needs.
//!
//! Two environment knobs support the repo's baseline tracking
//! (`BENCH_BASELINE.json`, compared by the `bench_delta` binary):
//!
//! * `CRITERION_JSON=<path>` — append one JSON line per benchmark:
//!   `{"id":"group/name","mean_ns":…,"min_ns":…,"max_ns":…}`.
//! * `CRITERION_QUICK=1` — shrink the batch target to 5 ms and cap
//!   samples at 5, for CI runs where trend beats precision.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measured batch.
const BATCH_TARGET: Duration = Duration::from_millis(25);

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false)
}

fn batch_target() -> Duration {
    if quick_mode() {
        Duration::from_millis(5)
    } else {
        BATCH_TARGET
    }
}

/// Appends this benchmark's stats as a JSON line to `$CRITERION_JSON`,
/// if set. Failures are reported to stderr but never fail the bench.
fn emit_json(id: &str, mean: f64, min: f64, max: f64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else { return };
    if path.is_empty() {
        return;
    }
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"id\":\"{escaped}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1}}}\n",
        mean * 1e9,
        min * 1e9,
        max * 1e9
    );
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = res {
        eprintln!("criterion: cannot append to {path}: {e}");
    }
}

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Number of measured samples per benchmark (default 20).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        let sample_size = if self.sample_size == 0 { 20 } else { self.sample_size };
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id.as_ref(), 20, None, f);
        self
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the units-per-iteration used for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of measured samples for following benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Ignored (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Measures one benchmark function.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.as_ref());
        run_benchmark_with_id(id.as_ref(), &full_id, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the calibrated number of iterations, timing the whole
    /// batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, throughput: Option<Throughput>, f: F)
where
    F: FnMut(&mut Bencher),
{
    run_benchmark_with_id(id, id, sample_size, throughput, f)
}

fn run_benchmark_with_id<F>(
    id: &str,
    full_id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let target = batch_target();
    let sample_size = if quick_mode() { sample_size.min(5) } else { sample_size };
    // Calibrate: start at 1 iteration/batch and grow until a batch takes
    // at least the batch target (or the per-iteration cost alone exceeds
    // it).
    let mut iters = 1u64;
    let mut calibration;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        calibration = b.elapsed;
        if calibration >= target || iters >= 1 << 20 {
            break;
        }
        let grow = if calibration.is_zero() {
            16
        } else {
            (target.as_nanos() / calibration.as_nanos().max(1)).clamp(2, 16) as u64
        };
        iters = iters.saturating_mul(grow);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

    let rate = match throughput {
        Some(Throughput::Bytes(n)) => format!("  {}/s", human_bytes(n as f64 / mean)),
        Some(Throughput::Elements(n)) => format!("  {} elem/s", human_count(n as f64 / mean)),
        None => String::new(),
    };
    println!(
        "  {id:<40} [{} {} {}]{rate}",
        human_time(min),
        human_time(mean),
        human_time(max)
    );
    emit_json(full_id, mean, min, max);
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn human_bytes(per_sec: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = per_sec;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.2} {}", UNITS[unit])
}

fn human_count(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2}G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2}K", per_sec / 1e3)
    } else {
        format!("{per_sec:.0}")
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_and_reporting_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("self-test");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum_100", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }
}
