//! Vendored `serde_json` subset: `to_string` and `from_str` over the
//! mini-serde [`serde::Value`] tree.
//!
//! The emitted JSON is standard (RFC 8259): strings are escaped, map
//! field order is preserved, and non-finite floats serialize as `null`
//! exactly like upstream serde_json. The parser is a recursive-descent
//! reader that accepts arbitrary whitespace and rejects trailing input.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON encode/decode failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Ensure round-trippable float syntax (always keep a
                // fractional part or exponent so it re-parses as float).
                let s = format!("{x:?}");
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::UInt(u64::MAX),
            Value::Float(1.5),
            Value::Str("he\"llo\n\u{1F600}".into()),
        ] {
            let mut s = String::new();
            write_value(&v, &mut s);
            assert_eq!(parse(&s).unwrap(), v, "failed for {s}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let v = Value::Map(vec![
            ("xs".into(), Value::Seq(vec![Value::Int(1), Value::Null])),
            ("nested".into(), Value::Map(vec![("k".into(), Value::Float(0.25))])),
        ]);
        let mut s = String::new();
        write_value(&v, &mut s);
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn whole_float_reparses_as_float() {
        let mut s = String::new();
        write_value(&Value::Float(3.0), &mut s);
        assert_eq!(s, "3.0");
        assert_eq!(parse(&s).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{broken").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
    }
}
