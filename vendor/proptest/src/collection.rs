//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Strategy generating `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
