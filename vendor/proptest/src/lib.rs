//! Vendored mini-proptest.
//!
//! Implements the property-testing surface the workspace's test suites
//! use: the [`Strategy`] trait with `prop_map`/`boxed`, [`any`] for
//! primitive types, integer/float range strategies, tuple strategies,
//! `collection::vec`, [`prop_oneof!`], and the [`proptest!`] macro with
//! `#![proptest_config(...)]` support.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with its sampled inputs via
//!   the normal assertion message; cases are deterministic per test name,
//!   so failures reproduce exactly.
//! * **Deterministic seeding.** The RNG seed is derived from the test
//!   function's name (override with `PROPTEST_SEED`), so CI runs are
//!   stable.
//! * `prop_assert*` map to the std `assert*` macros.

use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Items typically imported by property tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

// ------------------------------------------------------------------- rng

/// Deterministic split-mix RNG used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG seeded from `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Seeds deterministically from a test name. When `PROPTEST_SEED` is
    /// set (CI sets it to the run id so each run explores fresh cases),
    /// it is mixed with the name hash — still distinct per test — and
    /// announced on stderr so a failure log names the seed to replay.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = seed.parse::<u64>() {
                eprintln!("proptest: {name} using PROPTEST_SEED={n}");
                return TestRng::new(n ^ h);
            }
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // 128-bit multiply method (Lemire); bias is negligible for tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// -------------------------------------------------------------- strategy

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Strategy always yielding a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed alternatives (backs [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

// ------------------------------------------------------------- arbitrary

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = (rng.unit_f64() * 600.0) - 300.0;
        let v = 10f64.powf(mag / 10.0);
        if rng.next_u64() & 1 == 1 {
            -v
        } else {
            v
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}')
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.next_u64() & 1 == 1 {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------- ranges

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
}

// ---------------------------------------------------------------- config

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------------- macros

/// Chooses uniformly among the listed strategies (all must generate the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property assertion (maps to `assert!`; no shrinking in mini-proptest).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(128))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..100, b: u32) {
///         prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Entry with inner config attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };

    // One test function, then recurse on the remainder.
    (@funcs ($config:expr) $(#[$attr:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        #[test]
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $crate::proptest!(@bind __rng ($($args)*) $body);
            }
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr)) => {};

    // Bind one `pat in strategy` argument, then the rest.
    (@bind $rng:ident ($pat:pat in $strategy:expr $(, $($rest:tt)*)?) $body:block) => {{
        let $pat = $crate::Strategy::sample(&($strategy), &mut $rng);
        $crate::proptest!(@bind $rng ($($($rest)*)?) $body);
    }};
    // Bind one `name: Type` argument (implicit `any::<Type>()`).
    (@bind $rng:ident ($name:ident : $ty:ty $(, $($rest:tt)*)?) $body:block) => {{
        let $name: $ty = $crate::Strategy::sample(&$crate::any::<$ty>(), &mut $rng);
        $crate::proptest!(@bind $rng ($($($rest)*)?) $body);
    }};
    // All arguments bound: run the property body.
    (@bind $rng:ident () $body:block) => { $body };

    // Entry without a config attribute.
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..2000 {
            let v = Strategy::sample(&(3u16..7), &mut rng);
            assert!((3..7).contains(&v));
            let w = Strategy::sample(&(1u8..=255), &mut rng);
            assert!(w >= 1);
            let x = Strategy::sample(&(-1e6f64..1e6), &mut rng);
            assert!((-1e6..1e6).contains(&x));
            let s = Strategy::sample(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn union_and_map_compose() {
        let strat = prop_oneof![Just(1u32), (10u32..20).prop_map(|x| x * 2)];
        let mut rng = TestRng::new(42);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!(v == 1 || (20..40).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_full_surface(
            xs in crate::collection::vec(any::<u8>(), 0..10),
            n in 1usize..4,
            flag: bool,
        ) {
            prop_assert!(xs.len() < 10);
            prop_assert_ne!(n, 0);
            let _ = flag;
        }
    }
}
