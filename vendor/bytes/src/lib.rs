//! Vendored `bytes` subset.
//!
//! Implements the parts of the `bytes` crate the workspace's wire codec
//! and live driver use: [`Bytes`] (cheaply cloneable immutable buffer),
//! [`BytesMut`] (growable write buffer), and the big-endian cursor
//! methods of [`Buf`] / [`BufMut`]. Semantics match upstream where the
//! workspace depends on them — notably, `get_*` past the end panics, and
//! `copy_to_bytes` / `clone` share the underlying allocation.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, sliceable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer holding a static slice (copied; this shim does not keep
    /// the `'static` reference, which is observationally equivalent).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }

    /// Copies `s` into a fresh buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes { data: Arc::from(s), start: 0, end: s.len() }
    }

    /// Bytes remaining in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes { data: Arc::from(&[][..]), start: 0, end: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", self.as_slice())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::from(v), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

/// Read cursor over a byte buffer. All multi-byte reads are big-endian,
/// matching the upstream `bytes` defaults. Reads past the remaining
/// length panic, as upstream does.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        i64::from_be_bytes(raw)
    }

    /// Copies `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Takes the next `len` bytes as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "buffer underflow");
        let out = Bytes { data: self.data.clone(), start: self.start, end: self.start + len };
        self.start += len;
        out
    }
}

/// A growable byte buffer for building messages.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", &self.buf)
    }
}

/// Write cursor appending to a byte buffer; multi-byte writes are
/// big-endian.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_i64(-42);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_i64(), -42);
        assert_eq!(r.copy_to_bytes(3), b"xyz"[..]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn copy_to_bytes_shares_allocation() {
        let mut b = Bytes::copy_from_slice(b"hello world");
        b.advance(6);
        let w = b.copy_to_bytes(5);
        assert_eq!(&w[..], b"world");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut b = Bytes::copy_from_slice(&[1]);
        b.get_u16();
    }
}
