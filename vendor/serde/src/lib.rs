//! Vendored mini-serde.
//!
//! The build environment cannot reach crates.io, so this crate supplies
//! the small serialization surface the workspace needs: `#[derive(
//! Serialize, Deserialize)]` plus a JSON backend (the sibling vendored
//! `serde_json`). Unlike real serde's visitor architecture, everything
//! routes through an intermediate [`Value`] tree — simpler, and fully
//! sufficient for the workspace's JSONL log round-trips.
//!
//! The derive macro (re-exported from `serde_derive`) understands the
//! type shapes used in this repository: named-field structs, tuple/unit
//! structs, and enums with unit / newtype / tuple / struct variants,
//! using serde's externally-tagged enum representation.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field in a [`Value::Map`].
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!("expected map, found {}", other.kind()))),
        }
    }

    /// Short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error carrying `msg`.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from `v`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn int_from(v: &Value) -> Result<i128, Error> {
    match v {
        Value::Int(n) => Ok(*n as i128),
        Value::UInt(n) => Ok(*n as i128),
        other => Err(Error::new(format!("expected integer, found {}", other.kind()))),
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if (*self as i128) >= 0 && (*self as i128) > i64::MAX as i128 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = int_from(v)?;
                <$t>::try_from(n).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            // serde_json renders non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::new(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected sequence, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::new(format!("expected {N} elements, found {}", items.len())))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($({
                            let _ = $idx;
                            $name::from_value(
                                it.next().ok_or_else(|| Error::new("tuple too short"))?,
                            )?
                        },)+))
                    }
                    other => Err(Error::new(format!("expected sequence, found {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}
