//! The calendar queue's executable contract: for **any** interleaved
//! schedule of pushes and pops — including dense same-instant bursts,
//! events beyond the ring horizon, and events scheduled into the past —
//! [`EventQueue`] pops the exact `(time, event)` sequence of
//! [`ReferenceEventQueue`], the original ordered binary heap.

use netsim::{EventQueue, ReferenceEventQueue, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Schedule one event at the given instant (µs).
    Push(u64),
    /// Schedule a dense burst: `count` events at the same instant.
    Burst(u64, u8),
    /// Pop once and compare both queues' results.
    Pop,
}

/// Instants spanning every regime of the wheel: inside one window,
/// across ring windows, beyond the ~18 min horizon, and colliding
/// exactly.
fn arb_time() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(5_000_000u64), // popular instant: forced same-time collisions
        0u64..10_000,                   // sub-window
        0u64..1_000_000,                // a few windows
        0u64..600_000_000,              // across the ring
        0u64..10_000_000_000,           // far beyond the horizon
        0u64..1_000_000_000_000,        // days out: overflow + cursor jumps
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_time().prop_map(Op::Push),
        (arb_time(), 1u8..20).prop_map(|(t, n)| Op::Burst(t, n)),
        Just(Op::Pop),
        Just(Op::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn calendar_queue_matches_reference_heap(ops in proptest::collection::vec(arb_op(), 1..300)) {
        let mut cal = EventQueue::new();
        let mut heap = ReferenceEventQueue::new();
        let mut payload = 0u64;
        for op in &ops {
            match *op {
                Op::Push(t) => {
                    cal.push(SimTime::from_micros(t), payload);
                    heap.push(SimTime::from_micros(t), payload);
                    payload += 1;
                }
                Op::Burst(t, n) => {
                    for _ in 0..n {
                        cal.push(SimTime::from_micros(t), payload);
                        heap.push(SimTime::from_micros(t), payload);
                        payload += 1;
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(cal.peek_time(), heap.peek_time());
                    prop_assert_eq!(cal.pop(), heap.pop());
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
        }
        // Drain both to the end: the full residual sequences must match.
        loop {
            prop_assert_eq!(cal.peek_time(), heap.peek_time());
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if b.is_none() {
                break;
            }
        }
        prop_assert_eq!(cal.scheduled(), heap.scheduled());
        prop_assert_eq!(cal.dispatched(), heap.dispatched());
        prop_assert!(cal.is_empty());
    }

    /// A cascade workload shaped like the simulator's: every pop schedules
    /// follow-up events a short delay after the popped instant (packet
    /// arrivals), occasionally at the *same* instant (forwarding chains),
    /// so time only moves forward and same-instant FIFO order is load-bearing.
    #[test]
    fn cascade_workload_matches_reference_heap(
        seeds in proptest::collection::vec((0u64..100_000_000, 0u64..5_000), 1..40),
        budget in 50usize..400,
    ) {
        let mut cal = EventQueue::new();
        let mut heap = ReferenceEventQueue::new();
        let mut payload = 0u64;
        for &(t, _) in &seeds {
            cal.push(SimTime::from_micros(t), payload);
            heap.push(SimTime::from_micros(t), payload);
            payload += 1;
        }
        let mut spawned = 0usize;
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            let Some((now, ev)) = b else { break };
            if spawned < budget {
                // Deterministic pseudo-random fan-out derived from the
                // event itself: 0, 1 or 2 children, delays 0..5000 µs
                // (delay 0 = a same-instant forwarding hop).
                let h = ev.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ now.as_micros();
                for child in 0..(h % 3) {
                    let delay = (h >> (8 * (child + 1))) % 5_000;
                    let at = now + netsim::SimDuration::from_micros(delay);
                    cal.push(at, payload);
                    heap.push(at, payload);
                    payload += 1;
                    spawned += 1;
                }
            }
        }
        prop_assert!(cal.is_empty());
        prop_assert_eq!(cal.dispatched(), heap.dispatched());
    }
}
