//! Per-segment latency: propagation, jitter, queueing and pathologies.
//!
//! One-way delay on a segment is modelled as
//!
//! ```text
//! delay = propagation + lognormal jitter
//!       + exponential queueing extra (only while the segment is congested)
//!       + scripted episode extra (e.g. the paper's Cornell ~1 s period)
//! ```
//!
//! Propagation is derived from host geography by the topology builder;
//! jitter is small (sub-millisecond to a few milliseconds); congestion
//! coupling makes loss-heavy periods also latency-heavy, which the
//! latency-optimising router exploits.

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A scripted latency pathology: between `start` and `end` the segment's
/// delay is inflated by roughly `extra` (the paper's §4.5 Cornell episode
/// is the canonical example).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Episode {
    /// Episode start (inclusive).
    pub start: SimTime,
    /// Episode end (exclusive).
    pub end: SimTime,
    /// Mean extra one-way delay during the episode.
    pub extra: SimDuration,
}

/// The latency model of one segment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed propagation + transmission delay.
    pub prop: SimDuration,
    /// Median of the lognormal jitter component.
    pub jitter_median: SimDuration,
    /// Log-space standard deviation of the jitter.
    pub jitter_sigma: f64,
    /// Mean extra queueing delay while the segment is congested.
    pub queue_bad: SimDuration,
    /// Scripted pathologies.
    pub episodes: Vec<Episode>,
}

impl LatencyModel {
    /// A constant-delay model (useful in tests).
    pub fn fixed(prop: SimDuration) -> Self {
        LatencyModel {
            prop,
            jitter_median: SimDuration::ZERO,
            jitter_sigma: 0.0,
            queue_bad: SimDuration::ZERO,
            episodes: Vec::new(),
        }
    }

    /// A typical segment: `prop` propagation with mild jitter and
    /// congestion-coupled queueing.
    pub fn typical(prop: SimDuration) -> Self {
        LatencyModel {
            prop,
            jitter_median: SimDuration::from_micros(300),
            jitter_sigma: 0.8,
            queue_bad: SimDuration::from_millis(12),
            episodes: Vec::new(),
        }
    }

    /// Samples a one-way delay for a packet crossing at `now`.
    pub fn sample(&self, now: SimTime, congested: bool, rng: &mut Rng) -> SimDuration {
        let mut d = self.prop;
        if self.jitter_median > SimDuration::ZERO {
            let j = rng.lognormal(self.jitter_median.as_micros() as f64, self.jitter_sigma);
            d += SimDuration::from_micros(j.min(5e7) as u64); // cap pathological draws at 50 s
        }
        if congested && self.queue_bad > SimDuration::ZERO {
            d += SimDuration::from_micros(rng.exp(self.queue_bad.as_micros() as f64) as u64);
        }
        for e in &self.episodes {
            if now >= e.start && now < e.end {
                // Episodes vary packet-to-packet around their mean.
                d += e.extra.mul_f64(rng.uniform(0.7, 1.3));
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_model_is_exact() {
        let m = LatencyModel::fixed(SimDuration::from_millis(20));
        let mut rng = Rng::new(1);
        for i in 0..100 {
            assert_eq!(
                m.sample(SimTime::from_secs(i), false, &mut rng),
                SimDuration::from_millis(20)
            );
        }
    }

    #[test]
    fn jitter_adds_positive_delay() {
        let m = LatencyModel::typical(SimDuration::from_millis(10));
        let mut rng = Rng::new(2);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| m.sample(SimTime::ZERO, false, &mut rng).as_millis_f64())
            .sum::<f64>()
            / n as f64;
        assert!(mean > 10.0 && mean < 13.0, "mean={mean}ms");
    }

    #[test]
    fn congestion_inflates_delay() {
        let m = LatencyModel::typical(SimDuration::from_millis(10));
        let mut rng = Rng::new(3);
        let n = 20_000;
        let quiet: f64 = (0..n)
            .map(|_| m.sample(SimTime::ZERO, false, &mut rng).as_millis_f64())
            .sum::<f64>()
            / n as f64;
        let busy: f64 = (0..n)
            .map(|_| m.sample(SimTime::ZERO, true, &mut rng).as_millis_f64())
            .sum::<f64>()
            / n as f64;
        assert!(busy > quiet + 8.0, "busy={busy} quiet={quiet}");
    }

    #[test]
    fn episode_applies_only_inside_window() {
        let mut m = LatencyModel::fixed(SimDuration::from_millis(5));
        m.episodes.push(Episode {
            start: SimTime::from_secs(100),
            end: SimTime::from_secs(200),
            extra: SimDuration::from_millis(800),
        });
        let mut rng = Rng::new(4);
        let before = m.sample(SimTime::from_secs(99), false, &mut rng);
        let during = m.sample(SimTime::from_secs(150), false, &mut rng);
        let after = m.sample(SimTime::from_secs(200), false, &mut rng);
        assert_eq!(before, SimDuration::from_millis(5));
        assert_eq!(after, SimDuration::from_millis(5));
        assert!(during > SimDuration::from_millis(500), "during={during}");
    }
}
