//! # netsim — deterministic discrete-event Internet path simulator
//!
//! This crate is the testbed substitute for the RON measurement study in
//! *Best-Path vs. Multi-Path Overlay Routing* (Andersen, Snoeren,
//! Balakrishnan; IMC 2003). It models a set of Internet hosts joined by
//! one-way paths, where each path is a chain of *segments* (source access
//! link, a core segment, destination access link). Segments carry:
//!
//! * a **congestion process** — a lazily-advanced Gilbert–Elliott chain
//!   with hyper-exponential burst durations, producing the bursty,
//!   short-timescale loss correlation that drives the paper's
//!   conditional-loss-probability results;
//! * an **outage process** — an on/off renewal process with heavy-tailed
//!   minute-scale downtimes, producing path failures;
//! * a **latency model** — geographic propagation plus lognormal jitter,
//!   congestion-coupled queueing delay and scripted pathological episodes
//!   (e.g. the paper's Cornell incident).
//!
//! Two overlay paths between the same pair of hosts *share* the edge
//! segments, which is what makes losses on "independent" paths correlated,
//! the paper's central observation.
//!
//! Everything is deterministic given a seed: the same run configuration
//! always produces the same packet-by-packet trace.
//!
//! The simulator knows nothing about overlays or probes; it only answers
//! "a packet enters the network at host A headed for host B at time T —
//! when does it arrive, if at all?". Higher layers (the `overlay` and
//! `mpath-core` crates) build the routing machinery on top.

#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod latency;
pub mod load;
pub mod loss;
pub mod net;
pub mod outage;
pub mod rng;
pub mod segment;
pub mod stress;
pub mod time;
pub mod topology;

pub use clock::ClockModel;
pub use event::{EventQueue, ReferenceEventQueue};
pub use latency::{Episode, LatencyModel};
pub use load::LoadProfile;
pub use loss::{GeParams, GilbertElliott};
pub use net::{Delivery, NetCounters, Network};
pub use outage::{OutageParams, OutageProcess};
pub use rng::Rng;
pub use segment::{DropCause, Segment, SegmentId, SegmentSpec, Transit};
pub use stress::{
    apply_flash_crowds, apply_load_wave, apply_shared_risk, AsymmetrySpec, FlashCrowdSpec,
    LoadWaveSpec, SharedRiskSpec,
};
pub use time::{SimDuration, SimTime};
pub use topology::{sparse_mesh, HostClass, HostId, HostInfo, Topology, TopologyParams};
