//! A deterministic discrete-event queue.
//!
//! A thin wrapper over a binary heap keyed by [`SimTime`] with a sequence
//! number as tie-breaker, so events scheduled for the same instant pop in
//! insertion order. That FIFO guarantee is what makes whole-run
//! determinism possible: `BinaryHeap` alone leaves equal-key order
//! unspecified.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with FIFO semantics for simultaneous events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, popped: 0 }
    }

    /// Schedules `event` at instant `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.popped += 1;
            (e.at, e.event)
        })
    }

    /// The instant of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for run statistics).
    pub fn scheduled(&self) -> u64 {
        self.seq
    }

    /// Total number of events ever dispatched.
    pub fn dispatched(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(10)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn counters_track_flow() {
        let mut q = EventQueue::new();
        let t0 = SimTime::ZERO;
        q.push(t0, 1);
        q.push(t0 + SimDuration::from_secs(1), 2);
        q.pop();
        assert_eq!(q.scheduled(), 2);
        assert_eq!(q.dispatched(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "late");
        q.push(SimTime::from_secs(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime::from_secs(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}
