//! A deterministic discrete-event queue.
//!
//! [`EventQueue`] is a **calendar queue** (a bucketed timing wheel) keyed
//! by [`SimTime`] with a sequence number as tie-breaker, so events
//! scheduled for the same instant pop in insertion order. That FIFO
//! guarantee is what makes whole-run determinism possible: a plain
//! priority heap leaves equal-key order unspecified.
//!
//! ## Design
//!
//! Simulation events cluster tightly around "now": packet delays are
//! milliseconds, probe pacing is ~1 s, sweeps are ~10 s. A binary heap
//! pays `O(log n)` per operation and scatters entries across the
//! allocation; the wheel exploits the short scheduling horizon instead:
//!
//! * the timeline is cut into `SLOT_WIDTH_US`-microsecond (131 ms)
//!   windows; `N_SLOTS` (8192) consecutive windows form a ring covering
//!   a `HORIZON_US` (~18 min) horizon ahead of the cursor;
//! * the **open** window (the one containing "now") is a tiny binary
//!   heap ordered by `(time, seq)` — tens of entries, L1-resident, so
//!   the short packet delays that dominate traffic cost a few hot
//!   compares instead of sifting through one big cold heap;
//! * `push` into a future window appends to its ring bucket in `O(1)`;
//!   a bucket is heapified only once, when the cursor reaches it;
//! * the handful of events scheduled beyond the horizon go to a small
//!   overflow heap and migrate into the ring as the cursor advances.
//!
//! Keys `(time, seq)` are unique and totally ordered, so heap pops are
//! deterministic and the pop sequence is **identical** to an ordered
//! heap's, which [`ReferenceEventQueue`] (the pre-calendar
//! implementation) exists to prove — `netsim`'s equivalence property
//! test drives both through random interleaved push/pop schedules,
//! including dense same-instant bursts, and asserts equal pop sequences.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Width of one calendar window, in microseconds (~131 ms). Wide enough
/// that typical packet delays land in the *open* window (a hot little
/// heap) rather than scattering cold cache lines across the ring.
const SLOT_WIDTH_US: u64 = 1 << SLOT_BITS;
/// log2 of [`SLOT_WIDTH_US`]; windows are found by shifting, not dividing.
const SLOT_BITS: u32 = 17;
/// Number of windows on the ring (a power of two, so the slot for an
/// instant is a shift and a mask). 8192 bucket headers are ~200 KB per
/// queue — one queue lives per workload slice, noise next to the
/// pending-event payloads themselves.
const N_SLOTS: usize = 1 << 13;
/// The scheduling horizon the ring covers ahead of the cursor, in
/// microseconds (2^30 µs ≈ 17.9 simulated minutes). Everything the
/// experiment schedules — packet delays, probe pacing, sweeps, timer
/// re-arms — lands far inside it; events beyond it wait in the overflow
/// heap and migrate as the cursor advances.
const HORIZON_US: u64 = (N_SLOTS as u64) << SLOT_BITS;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// The total ordering key: earliest instant first, then FIFO.
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other.key().cmp(&self.key())
    }
}

/// A time-ordered event queue with FIFO semantics for simultaneous
/// events, implemented as a calendar queue (see the module docs).
pub struct EventQueue<E> {
    /// The open window: entries due before `wheel_start + SLOT_WIDTH_US`,
    /// as a min-first heap over the unique `(at, seq)` keys. The global
    /// minimum is always at its top while this is non-empty.
    current: BinaryHeap<Entry<E>>,
    /// The ring of future windows; bucket `i` holds the (unsorted)
    /// entries of exactly one window.
    slots: Vec<Vec<Entry<E>>>,
    /// Ring index of the open window.
    cursor: usize,
    /// Start instant (µs, window-aligned) of the open window. Monotone.
    wheel_start: u64,
    /// Events scheduled at or beyond the horizon when pushed.
    overflow: BinaryHeap<Entry<E>>,
    len: usize,
    seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            current: BinaryHeap::new(),
            slots: (0..N_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            wheel_start: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` at instant `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        self.place(Entry { at, seq, event });
    }

    /// Files an entry into the open window, a ring bucket, or overflow.
    fn place(&mut self, entry: Entry<E>) {
        // `saturating_sub` folds instants before the open window (events
        // scheduled "in the past", which an ordered heap would simply pop
        // next) into the open window as well.
        let offset = entry.at.as_micros().saturating_sub(self.wheel_start);
        if offset < SLOT_WIDTH_US {
            // Open window: a push onto a heap of a few dozen hot entries.
            self.current.push(entry);
        } else if offset < HORIZON_US {
            let slot = ((entry.at.as_micros() >> SLOT_BITS) as usize) & (N_SLOTS - 1);
            debug_assert_ne!(slot, self.cursor, "ring bucket would alias the open window");
            self.slots[slot].push(entry);
        } else {
            self.overflow.push(entry);
        }
    }

    /// Refills the open window with the earliest pending window. Called
    /// only when `current` is empty; afterwards `current` is non-empty
    /// iff the queue is.
    fn refill(&mut self) {
        while self.len > 0 {
            // Far-future events whose window has rotated into the ring's
            // horizon migrate out of the overflow heap first, so the ring
            // scan below sees every candidate.
            while let Some(e) = self.overflow.peek() {
                if e.at.as_micros().saturating_sub(self.wheel_start) >= HORIZON_US {
                    break;
                }
                let e = self.overflow.pop().expect("peeked entry");
                self.place(e);
            }
            if !self.current.is_empty() {
                // Migration opened the window at the cursor.
                return;
            }
            // The earliest non-empty ring bucket becomes the open window.
            if let Some(d) = (0..N_SLOTS).find(|d| !self.slots[(self.cursor + d) & (N_SLOTS - 1)].is_empty()) {
                let slot = (self.cursor + d) & (N_SLOTS - 1);
                let mut bucket = std::mem::take(&mut self.slots[slot]);
                // Every entry in a bucket belongs to one window, so the
                // bucket's own entries define the new window start.
                self.wheel_start = (bucket[0].at.as_micros() >> SLOT_BITS) << SLOT_BITS;
                self.cursor = slot;
                self.current.extend(bucket.drain(..));
                self.slots[slot] = bucket; // hand the buffer back for reuse
                return;
            }
            // Ring empty: jump the cursor straight to the earliest
            // far-future event's window and let migration land it.
            let t = self.overflow.peek().expect("len > 0 with empty ring and current").at;
            self.wheel_start = (t.as_micros() >> SLOT_BITS) << SLOT_BITS;
            self.cursor = ((t.as_micros() >> SLOT_BITS) as usize) & (N_SLOTS - 1);
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.current.is_empty() {
            self.refill();
        }
        self.current.pop().map(|e| {
            self.len -= 1;
            self.popped += 1;
            (e.at, e.event)
        })
    }

    /// The instant of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.current.peek() {
            return Some(e.at);
        }
        // Ring buckets each cover one window and windows grow with the
        // scan distance, so the first non-empty bucket holds the ring's
        // minimum. But an overflow entry may undercut it: `refill` only
        // migrates at its top, so once its ring-scan branch advances
        // `wheel_start`, an old overflow entry can sit inside the new
        // horizon while later pushes land in the ring — compare both.
        let ring_min = (0..N_SLOTS)
            .map(|d| &self.slots[(self.cursor + d) & (N_SLOTS - 1)])
            .find(|bucket| !bucket.is_empty())
            .and_then(|bucket| bucket.iter().map(|e| e.at).min());
        let overflow_min = self.overflow.peek().map(|e| e.at);
        match (ring_min, overflow_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled (for run statistics).
    pub fn scheduled(&self) -> u64 {
        self.seq
    }

    /// Total number of events ever dispatched.
    pub fn dispatched(&self) -> u64 {
        self.popped
    }
}

/// The original binary-heap event queue, kept as the executable
/// specification of the ordering contract: pop order is ascending
/// `(time, seq)`, i.e. time-ordered with FIFO ties.
///
/// [`EventQueue`] must stay pop-for-pop identical to this; the
/// `event_queue_equivalence` property test in `crates/netsim/tests`
/// drives both through random schedules and asserts exactly that. Keep
/// this implementation boring.
pub struct ReferenceEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    popped: u64,
}

impl<E> Default for ReferenceEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ReferenceEventQueue { heap: BinaryHeap::new(), seq: 0, popped: 0 }
    }

    /// Schedules `event` at instant `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.popped += 1;
            (e.at, e.event)
        })
    }

    /// The instant of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn scheduled(&self) -> u64 {
        self.seq
    }

    /// Total number of events ever dispatched.
    pub fn dispatched(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(10)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn counters_track_flow() {
        let mut q = EventQueue::new();
        let t0 = SimTime::ZERO;
        q.push(t0, 1);
        q.push(t0 + SimDuration::from_secs(1), 2);
        q.pop();
        assert_eq!(q.scheduled(), 2);
        assert_eq!(q.dispatched(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "late");
        q.push(SimTime::from_secs(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime::from_secs(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    /// Far-future events sit in overflow, then migrate as the cursor
    /// advances past a full ring revolution.
    #[test]
    fn far_future_events_survive_the_horizon() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3_600), "far"); // >> the ~18 min horizon
        q.push(SimTime::from_millis(1), "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3_600)));
        // After the jump, events pushed near the far instant still order
        // correctly around it.
        q.push(SimTime::from_secs(3_599), "before-far");
        assert_eq!(q.pop().unwrap().1, "before-far");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop(), None);
    }

    /// Once the cursor has advanced, an old overflow entry can sit
    /// *inside* the horizon while a later-timed push lands in the ring;
    /// `peek_time` must still report the true minimum.
    #[test]
    fn peek_sees_overflow_entries_inside_the_advanced_horizon() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(400_000), "b");
        // Just beyond the initial 2^30 µs horizon: goes to overflow.
        q.push(SimTime::from_micros(1_073_741_874), "o");
        assert_eq!(q.pop().unwrap().1, "b"); // advances wheel_start
        // Now inside the horizon as seen from the advanced cursor: ring.
        q.push(SimTime::from_micros(1_074_000_000), "r");
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(1_073_741_874)));
        assert_eq!(q.pop().unwrap().1, "o");
        assert_eq!(q.pop().unwrap().1, "r");
        assert_eq!(q.pop(), None);
    }

    /// An event scheduled before the open window (the heap would pop it
    /// next) pops next here too.
    #[test]
    fn pushing_into_the_past_pops_immediately() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(100), "now");
        assert_eq!(q.pop().unwrap().1, "now");
        q.push(SimTime::from_secs(100), "same-window");
        q.push(SimTime::from_secs(1), "past");
        assert_eq!(q.pop().unwrap().1, "past");
        assert_eq!(q.pop().unwrap().1, "same-window");
    }

    /// Dense same-instant bursts spread across several windows keep
    /// global (time, FIFO) order.
    #[test]
    fn bursts_across_windows_stay_ordered() {
        let mut q = EventQueue::new();
        let instants: Vec<SimTime> = (0..8)
            .map(|k| SimTime::from_micros(k * 40_000)) // distinct windows
            .collect();
        let mut label = 0u32;
        let mut expect: Vec<(SimTime, u32)> = Vec::new();
        for round in 0..3 {
            for &t in &instants {
                for _ in 0..5 {
                    q.push(t, label);
                    expect.push((t, label));
                    label += 1;
                }
            }
            // Interleave pops mid-stream on later rounds.
            if round > 0 {
                expect.sort_by_key(|&(t, l)| (t, l));
                let (t, l) = expect.remove(0);
                assert_eq!(q.pop(), Some((t, l)));
            }
        }
        expect.sort_by_key(|&(t, l)| (t, l));
        for (t, l) in expect {
            assert_eq!(q.pop(), Some((t, l)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn reference_queue_matches_on_a_fixed_schedule() {
        let mut a = EventQueue::new();
        let mut b = ReferenceEventQueue::new();
        let times = [5u64, 5, 3, 70_000_000, 3, 0, 5, 120_000_000, 70_000_000, 1];
        for (i, &t) in times.iter().enumerate() {
            a.push(SimTime::from_micros(t), i);
            b.push(SimTime::from_micros(t), i);
        }
        while let Some(x) = b.pop() {
            assert_eq!(a.pop(), Some(x));
        }
        assert_eq!(a.pop(), None);
        assert_eq!(a.scheduled(), b.scheduled());
        assert_eq!(a.dispatched(), b.dispatched());
    }
}
