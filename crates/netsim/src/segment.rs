//! A network segment: the unit of shared fate.
//!
//! Every one-way overlay hop crosses three segments — the sender's access
//! link, one core segment, the receiver's access link. Two different
//! overlay paths between the same hosts *share* the access segments, so a
//! burst or outage there takes out both copies of a mesh-routed packet.
//! This is the mechanism behind the paper's correlated-loss findings.

use crate::latency::LatencyModel;
use crate::loss::{GeParams, GilbertElliott};
use crate::outage::{OutageParams, OutageProcess};
use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifies one segment within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SegmentId(pub u32);

/// Why a packet died on a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropCause {
    /// The segment was inside a failure window.
    Outage,
    /// The packet was unlucky inside (or occasionally outside) a
    /// congestion burst.
    Congestion,
    /// The destination host process was down (assigned by the runner, not
    /// by segments).
    HostDown,
}

/// The outcome of one packet crossing one segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transit {
    /// The packet survived and took this long.
    Pass(SimDuration),
    /// The packet was dropped.
    Dropped(DropCause),
}

/// Static description of a segment; the topology builder produces these
/// and [`Segment::new`] animates them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentSpec {
    /// Congestion-loss parameters.
    pub loss: GeParams,
    /// Failure parameters.
    pub outage: OutageParams,
    /// Delay parameters.
    pub latency: LatencyModel,
    /// Hot periods: windows where loss intensity is multiplied (scripted
    /// "bad hours" from §4.2).
    pub hot: Vec<(SimTime, SimTime, f64)>,
    /// Scripted outage windows: the segment is hard-down inside each
    /// `[start, end)` interval, independent of the stochastic outage
    /// process. Shared-risk scenarios push the *same* window onto every
    /// member of a risk group, which is what makes "independent" overlay
    /// paths fail together.
    pub down: Vec<(SimTime, SimTime)>,
}

impl SegmentSpec {
    /// An ideal segment: no loss, no failures, fixed delay.
    pub fn ideal(prop: SimDuration) -> Self {
        SegmentSpec {
            loss: GeParams::lossless(),
            outage: OutageParams::never(),
            latency: LatencyModel::fixed(prop),
            hot: Vec::new(),
            down: Vec::new(),
        }
    }
}

/// Live state of one segment.
#[derive(Debug, Clone)]
pub struct Segment {
    id: SegmentId,
    loss: GilbertElliott,
    outage: OutageProcess,
    latency: LatencyModel,
    hot: Vec<(SimTime, SimTime, f64)>,
    down: Vec<(SimTime, SimTime)>,
    rng: Rng,
    crossings: u64,
    drops_outage: u64,
    drops_congestion: u64,
}

impl Segment {
    /// Animates a spec; `rng` must be a stream private to this segment.
    pub fn new(id: SegmentId, spec: SegmentSpec, rng: Rng) -> Self {
        Segment {
            id,
            loss: GilbertElliott::new(spec.loss),
            outage: OutageProcess::new(spec.outage),
            latency: spec.latency,
            hot: spec.hot,
            down: spec.down,
            rng,
            crossings: 0,
            drops_outage: 0,
            drops_congestion: 0,
        }
    }

    /// This segment's id.
    pub fn id(&self) -> SegmentId {
        self.id
    }

    fn hot_factor(&self, now: SimTime) -> f64 {
        let mut f = 1.0;
        for &(start, end, factor) in &self.hot {
            if now >= start && now < end {
                f *= factor;
            }
        }
        f
    }

    /// Passes one packet across the segment at `now` under the global load
    /// `base_intensity`.
    pub fn transit(&mut self, now: SimTime, base_intensity: f64) -> Transit {
        self.crossings += 1;
        if self.down.iter().any(|&(start, end)| now >= start && now < end) {
            self.drops_outage += 1;
            return Transit::Dropped(DropCause::Outage);
        }
        if self.outage.is_down(now, &mut self.rng) {
            self.drops_outage += 1;
            return Transit::Dropped(DropCause::Outage);
        }
        let intensity = base_intensity * self.hot_factor(now);
        let (congested, lost) = self.loss.observe(now, intensity, &mut self.rng);
        if lost {
            self.drops_congestion += 1;
            return Transit::Dropped(DropCause::Congestion);
        }
        Transit::Pass(self.latency.sample(now, congested, &mut self.rng))
    }

    /// Injects a forced outage (fault injection for tests/examples).
    pub fn force_outage(&mut self, now: SimTime, dur: SimDuration) {
        self.outage.force_down(now, dur);
    }

    /// (crossings, outage drops, congestion drops) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.crossings, self.drops_outage, self.drops_congestion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_spec() -> SegmentSpec {
        SegmentSpec::ideal(SimDuration::from_millis(10))
    }

    #[test]
    fn ideal_segment_always_passes_with_fixed_delay() {
        let mut s = Segment::new(SegmentId(0), quiet_spec(), Rng::new(1));
        for i in 0..1000 {
            match s.transit(SimTime::from_secs(i), 1.0) {
                Transit::Pass(d) => assert_eq!(d, SimDuration::from_millis(10)),
                Transit::Dropped(_) => panic!("ideal segment dropped a packet"),
            }
        }
        let (crossings, o, c) = s.counters();
        assert_eq!((crossings, o, c), (1000, 0, 0));
    }

    #[test]
    fn forced_outage_drops_everything_inside_window() {
        let mut s = Segment::new(SegmentId(1), quiet_spec(), Rng::new(2));
        s.force_outage(SimTime::from_secs(10), SimDuration::from_secs(5));
        assert!(matches!(
            s.transit(SimTime::from_secs(12), 1.0),
            Transit::Dropped(DropCause::Outage)
        ));
        assert!(matches!(s.transit(SimTime::from_secs(16), 1.0), Transit::Pass(_)));
    }

    #[test]
    fn hot_window_raises_loss() {
        let mut spec = quiet_spec();
        spec.loss = GeParams::from_stationary_loss(0.002);
        spec.hot.push((SimTime::from_secs(0), SimTime::from_secs(3600), 40.0));
        let lossy = |spec: SegmentSpec, seed| {
            let mut s = Segment::new(SegmentId(2), spec, Rng::new(seed));
            let mut lost = 0u64;
            let n = 200_000u64;
            for i in 0..n {
                // Every 100 ms, all inside the first hour.
                if matches!(s.transit(SimTime::from_millis(i * 18), 1.0), Transit::Dropped(_)) {
                    lost += 1;
                }
            }
            lost as f64 / n as f64
        };
        let mut cold = quiet_spec();
        cold.loss = GeParams::from_stationary_loss(0.002);
        let hot_rate = lossy(spec, 3);
        let cold_rate = lossy(cold, 3);
        assert!(hot_rate > 5.0 * cold_rate, "hot={hot_rate} cold={cold_rate}");
    }

    #[test]
    fn scripted_down_window_drops_everything_inside() {
        let mut spec = quiet_spec();
        spec.down.push((SimTime::from_secs(100), SimTime::from_secs(160)));
        let mut s = Segment::new(SegmentId(9), spec, Rng::new(7));
        assert!(matches!(s.transit(SimTime::from_secs(99), 1.0), Transit::Pass(_)));
        assert!(matches!(
            s.transit(SimTime::from_secs(100), 1.0),
            Transit::Dropped(DropCause::Outage)
        ));
        assert!(matches!(
            s.transit(SimTime::from_secs(159), 1.0),
            Transit::Dropped(DropCause::Outage)
        ));
        assert!(matches!(s.transit(SimTime::from_secs(160), 1.0), Transit::Pass(_)));
        let (_, outage_drops, _) = s.counters();
        assert_eq!(outage_drops, 2);
    }

    #[test]
    fn congestion_drop_cause_is_reported() {
        let mut spec = quiet_spec();
        spec.loss = GeParams::from_stationary_loss(0.5);
        let mut s = Segment::new(SegmentId(3), spec, Rng::new(4));
        let mut saw_congestion = false;
        for i in 0..10_000 {
            if let Transit::Dropped(c) = s.transit(SimTime::from_millis(i), 1.0) {
                assert_eq!(c, DropCause::Congestion);
                saw_congestion = true;
            }
        }
        assert!(saw_congestion);
    }
}
