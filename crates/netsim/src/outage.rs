//! Path failures: an on/off renewal process with heavy-tailed downtime.
//!
//! The paper observes that Internet paths suffer outages "lasting several
//! minutes" (§1) caused by link failures, routing convergence and edge
//! infrastructure problems, and that these dominate the high-loss tail of
//! the hour-window distribution (Table 6). We model each segment's
//! failures as alternating UP (exponential, days) and DOWN (bounded
//! Pareto, tens of seconds to tens of minutes) periods, advanced lazily
//! exactly like the congestion chain.

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Parameters of the outage process.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OutageParams {
    /// Mean time between failures (exponential).
    pub mean_up: SimDuration,
    /// Minimum downtime (Pareto location).
    pub min_down: SimDuration,
    /// Pareto shape; smaller means heavier tail. Must be > 0.
    pub alpha: f64,
    /// Hard cap on a single downtime.
    pub max_down: SimDuration,
}

impl OutageParams {
    /// A segment that never fails.
    pub fn never() -> Self {
        OutageParams {
            mean_up: SimDuration::MAX / 4,
            min_down: SimDuration::from_secs(1),
            alpha: 1.5,
            max_down: SimDuration::from_secs(1),
        }
    }

    /// Typical edge-link failure profile scaled by `rate_scale` (1.0 =
    /// roughly one failure per `mean_up_days` days, minutes-long).
    pub fn edge(mean_up_days: f64) -> Self {
        OutageParams {
            mean_up: SimDuration::from_secs_f64(mean_up_days * 86_400.0),
            min_down: SimDuration::from_secs(45),
            alpha: 1.2,
            // The heavy tail reaches hours: these are the (path, hour)
            // windows with >80-90% loss in Table 6.
            max_down: SimDuration::from_mins(150),
        }
    }

    /// Core/backbone failure profile: rarer, shorter (routing
    /// re-convergence scale).
    pub fn core(mean_up_days: f64) -> Self {
        OutageParams {
            mean_up: SimDuration::from_secs_f64(mean_up_days * 86_400.0),
            min_down: SimDuration::from_secs(30),
            alpha: 1.5,
            max_down: SimDuration::from_mins(45),
        }
    }

    /// Mean downtime in microseconds (bounded-Pareto mean).
    pub fn mean_down_micros(&self) -> f64 {
        let l = self.min_down.as_micros() as f64;
        let h = self.max_down.as_micros() as f64;
        let a = self.alpha;
        if (a - 1.0).abs() < 1e-9 {
            // alpha == 1: mean = ln(h/l) * l*h/(h-l)
            (h / l).ln() * l * h / (h - l)
        } else {
            (l.powf(a) / (1.0 - (l / h).powf(a)))
                * (a / (a - 1.0))
                * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
        }
    }

    /// Long-run fraction of time the segment is down.
    pub fn duty_down(&self) -> f64 {
        let down = self.mean_down_micros();
        let up = self.mean_up.as_micros() as f64;
        down / (up + down)
    }
}

/// The evolving up/down state of a segment.
#[derive(Debug, Clone)]
pub struct OutageProcess {
    params: OutageParams,
    down: bool,
    until: SimTime,
    init: bool,
}

impl OutageProcess {
    /// Creates a process that starts UP at time zero.
    pub fn new(params: OutageParams) -> Self {
        OutageProcess { params, down: false, until: SimTime::ZERO, init: false }
    }

    /// The configured parameters.
    pub fn params(&self) -> &OutageParams {
        &self.params
    }

    fn draw_sojourn(&self, down: bool, rng: &mut Rng) -> SimDuration {
        if down {
            let us = rng.pareto(
                self.params.min_down.as_micros() as f64,
                self.params.alpha,
                self.params.max_down.as_micros() as f64,
            );
            SimDuration::from_micros(us as u64)
        } else {
            let mean = self.params.mean_up.as_micros() as f64;
            SimDuration::from_micros(rng.exp(mean).clamp(1.0, 1.0e18) as u64)
        }
    }

    /// Advances to `now` and reports whether the segment is down.
    pub fn is_down(&mut self, now: SimTime, rng: &mut Rng) -> bool {
        if !self.init {
            self.init = true;
            self.down = rng.chance(self.params.duty_down());
            self.until = now + self.draw_sojourn(self.down, rng);
            return self.down;
        }
        if now < self.until {
            return self.down;
        }
        let cycle = self.params.mean_up.as_micros() as f64 + self.params.mean_down_micros();
        let gap = now.since(self.until).as_micros() as f64;
        if gap > 64.0 * cycle {
            self.down = rng.chance(self.params.duty_down());
            self.until = now + self.draw_sojourn(self.down, rng);
            return self.down;
        }
        while self.until <= now {
            self.down = !self.down;
            self.until += self.draw_sojourn(self.down, rng);
        }
        self.down
    }

    /// Forces the process DOWN from `now` for `dur` (fault injection for
    /// tests and examples).
    pub fn force_down(&mut self, now: SimTime, dur: SimDuration) {
        self.init = true;
        self.down = true;
        self.until = now + dur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_fails() {
        let mut o = OutageProcess::new(OutageParams::never());
        let mut rng = Rng::new(1);
        for h in 0..1000 {
            assert!(!o.is_down(SimTime::from_secs(h * 3600), &mut rng));
        }
    }

    #[test]
    fn duty_cycle_close_to_prediction() {
        let params = OutageParams::edge(3.0);
        let predicted = params.duty_down();
        let mut o = OutageProcess::new(params);
        let mut rng = Rng::new(2);
        let step = SimDuration::from_secs(20);
        let mut t = SimTime::ZERO;
        let n = 3_000_000u64; // ~1.9 simulated years
        let mut down = 0u64;
        for _ in 0..n {
            if o.is_down(t, &mut rng) {
                down += 1;
            }
            t += step;
        }
        let measured = down as f64 / n as f64;
        assert!(
            (measured - predicted).abs() / predicted < 0.25,
            "measured {measured}, predicted {predicted}"
        );
    }

    #[test]
    fn downtimes_are_minutes_scale() {
        let params = OutageParams::edge(3.0);
        let mean_down_s = params.mean_down_micros() / 1e6;
        assert!(
            (45.0..1500.0).contains(&mean_down_s),
            "mean downtime {mean_down_s}s"
        );
    }

    #[test]
    fn outage_persists_for_its_duration() {
        let mut o = OutageProcess::new(OutageParams::edge(3.0));
        let mut rng = Rng::new(3);
        o.force_down(SimTime::from_secs(100), SimDuration::from_secs(60));
        assert!(o.is_down(SimTime::from_secs(100), &mut rng));
        assert!(o.is_down(SimTime::from_secs(159), &mut rng));
        assert!(!o.is_down(SimTime::from_secs(161), &mut rng));
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed| {
            let mut o = OutageProcess::new(OutageParams::edge(1.0));
            let mut rng = Rng::new(seed);
            (0..200_000u64)
                .filter(|i| o.is_down(SimTime::from_secs(i * 60), &mut rng))
                .count()
        };
        assert_eq!(run(9), run(9));
    }
}
