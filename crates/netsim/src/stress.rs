//! Scripted stress impairments: the spec-driven scenario models.
//!
//! The paper's three campaigns exercise the baseline Internet weather
//! (diurnal load, random storms, per-pair trouble). The specs in this
//! module script the *pathologies the related work says decide the
//! best-path vs. multi-path question*:
//!
//! * [`SharedRiskSpec`] — shared-risk link groups. Hosts whose access
//!   links ride a common provider fail **together**, so two overlay
//!   paths that look disjoint at the overlay layer (different
//!   intermediates) still share fate. This is where multipath's
//!   independence assumption breaks.
//! * [`LoadWaveSpec`] — a moving congestion hot spot that dwells on one
//!   host after another, sweeping the whole testbed once per period
//!   (think: the business day moving across time zones). Reactive
//!   routing must keep re-converging; the win depends on how fast the
//!   wave moves relative to the probe interval.
//! * [`FlashCrowdSpec`] — sudden demand spikes converging on a single
//!   destination: its access link saturates and the core routes toward
//!   it heat up. Detours help with the core congestion but share the
//!   destination edge — the paper's correlated-loss mechanism at its
//!   sharpest.
//! * [`AsymmetrySpec`] — direction-skewed paths: the forward direction
//!   of every pair is systematically dirtier/slower than the reverse
//!   (saturated peering, asymmetric routing). One-way methods see very
//!   different worlds in the two directions.
//!
//! All planners are **pure functions of (spec, seed, topology shape)**:
//! they compile the spec into scripted windows on the topology's
//! [`SegmentSpec`](crate::segment::SegmentSpec)s before the network is
//! animated. A sharded run rebuilds the topology per slice from the same
//! seed, so every slice sees the identical schedule and the sharding
//! byte-identity invariant holds with no extra machinery.

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};
use crate::topology::{HostId, Topology, TopologyParams};
use serde::{Deserialize, Serialize};

/// Shared-risk link groups: sets of hosts whose access links fail
/// together (a common upstream provider, a shared metro conduit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedRiskSpec {
    /// Number of independent risk groups to form.
    pub groups: usize,
    /// Hosts sampled (without replacement, per group) into each group.
    pub hosts_per_group: usize,
    /// Correlated failure events per group per simulated day.
    pub outages_per_day: f64,
    /// Duration range of one correlated outage, minutes.
    pub down_mins: (f64, f64),
}

/// Applies `spec` to `topo`: samples group membership and a failure
/// schedule from `seed`, then scripts the same down-window onto **both
/// access segments of every member** of the failing group, so all paths
/// touching any member die together.
pub fn apply_shared_risk(topo: &mut Topology, spec: &SharedRiskSpec, seed: u64) {
    let n = topo.n();
    let horizon = topo.params().horizon;
    let days = horizon.as_secs_f64() / 86_400.0;
    let mut rng = Rng::new(seed).derive(0x5A_0151);
    for _ in 0..spec.groups {
        // Sample distinct members via a partial shuffle.
        let mut pool: Vec<u16> = (0..n as u16).collect();
        rng.shuffle(&mut pool);
        let members: Vec<HostId> =
            pool.into_iter().take(spec.hosts_per_group.min(n)).map(HostId).collect();
        let events = (spec.outages_per_day * days).round() as usize;
        for _ in 0..events {
            let start =
                SimTime::ZERO + SimDuration::from_secs_f64(rng.uniform(0.0, horizon.as_secs_f64()));
            let dur = SimDuration::from_secs_f64(
                rng.uniform(spec.down_mins.0, spec.down_mins.1) * 60.0,
            );
            let window = (start, start + dur);
            for &h in &members {
                let (out, inn) = (topo.seg_out(h), topo.seg_in(h));
                topo.specs_mut()[out.0 as usize].down.push(window);
                topo.specs_mut()[inn.0 as usize].down.push(window);
            }
        }
    }
}

/// A moving congestion hot spot: dwells on one host's access links after
/// another, sweeping all hosts once per period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadWaveSpec {
    /// Time for the wave to visit every host once, hours.
    pub period_hours: f64,
    /// How long the hot spot sits on each host, minutes. Longer than the
    /// per-host slot (`period / n`) means neighbouring hosts overlap.
    pub dwell_mins: f64,
    /// Loss-intensity multiplier while a host is hot.
    pub hot_factor: f64,
}

/// Applies `spec` to `topo`: a deterministic schedule (no randomness —
/// the wave is a clock, not weather) of hot windows on each host's
/// access segments, host `h` hot at phase `h/n` of every cycle.
pub fn apply_load_wave(topo: &mut Topology, spec: &LoadWaveSpec) {
    let n = topo.n();
    let horizon = topo.params().horizon;
    let period = SimDuration::from_secs_f64(spec.period_hours * 3600.0);
    let dwell = SimDuration::from_secs_f64(spec.dwell_mins * 60.0);
    if period == SimDuration::ZERO {
        return;
    }
    let cycles = (horizon.as_micros() / period.as_micros()) + 1;
    for c in 0..cycles {
        let cycle_start = SimTime::ZERO + period.mul_f64(c as f64);
        for h in 0..n {
            let start = cycle_start + period.mul_f64(h as f64 / n as f64);
            let window = (start, start + dwell, spec.hot_factor);
            let (out, inn) = (topo.seg_out(HostId(h as u16)), topo.seg_in(HostId(h as u16)));
            topo.specs_mut()[out.0 as usize].hot.push(window);
            topo.specs_mut()[inn.0 as usize].hot.push(window);
        }
    }
}

/// Flash crowds: sudden demand spikes converging on one destination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowdSpec {
    /// Events per simulated day.
    pub events_per_day: f64,
    /// Duration range of one event, minutes.
    pub duration_mins: (f64, f64),
    /// Intensity multiplier range on the victim's inbound access link;
    /// the core segments toward the victim get a quarter of the drawn
    /// factor (the crowd converges, the edge melts first).
    pub factor: (f64, f64),
}

/// Applies `spec` to `topo`: each event picks a victim host and scripts
/// a hot window on its inbound access segment (full factor) and on every
/// core segment leading to it (quarter factor).
pub fn apply_flash_crowds(topo: &mut Topology, spec: &FlashCrowdSpec, seed: u64) {
    let n = topo.n();
    let horizon = topo.params().horizon;
    let days = horizon.as_secs_f64() / 86_400.0;
    let mut rng = Rng::new(seed).derive(0xF1A5);
    let events = (spec.events_per_day * days).round() as usize;
    for _ in 0..events {
        let victim = HostId(rng.below(n as u64) as u16);
        let start =
            SimTime::ZERO + SimDuration::from_secs_f64(rng.uniform(0.0, horizon.as_secs_f64()));
        let dur = SimDuration::from_secs_f64(
            rng.uniform(spec.duration_mins.0, spec.duration_mins.1) * 60.0,
        );
        let factor = rng.uniform(spec.factor.0, spec.factor.1);
        let inn = topo.seg_in(victim);
        topo.specs_mut()[inn.0 as usize].hot.push((start, start + dur, factor));
        for src in 0..n as u16 {
            if src == victim.0 {
                continue;
            }
            let core = topo.seg_core(HostId(src), victim);
            topo.specs_mut()[core.0 as usize].hot.push((start, start + dur, factor * 0.25));
        }
    }
}

/// Direction-skewed paths: forward loss/delay systematically worse than
/// reverse. Applied to [`TopologyParams`] *before* the build (the skew
/// shapes the stationary loss draw, not a scripted window).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsymmetrySpec {
    /// Multiplier on forward-direction core loss (reverse gets its
    /// inverse). Must be positive.
    pub loss_skew: f64,
    /// Extra one-way propagation on the forward direction, milliseconds.
    pub delay_skew_ms: f64,
}

impl AsymmetrySpec {
    /// Writes the skew into `params` (see
    /// [`TopologyParams::dir_loss_skew`]).
    pub fn apply(&self, params: &mut TopologyParams) {
        assert!(self.loss_skew > 0.0, "loss_skew must be positive");
        params.dir_loss_skew = self.loss_skew;
        params.dir_delay_skew = SimDuration::from_secs_f64(self.delay_skew_ms / 1000.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_risk_scripts_identical_windows_on_all_members() {
        let mut topo = Topology::synthetic(6, 0.0, 1);
        apply_shared_risk(
            &mut topo,
            &SharedRiskSpec {
                groups: 1,
                hosts_per_group: 3,
                outages_per_day: 12.0,
                down_mins: (5.0, 15.0),
            },
            1,
        );
        let touched: Vec<&Vec<(SimTime, SimTime)>> = topo
            .specs()
            .iter()
            .map(|s| &s.down)
            .filter(|d| !d.is_empty())
            .collect();
        // 3 members × 2 directions.
        assert_eq!(touched.len(), 6);
        // Every member carries the same schedule (that's the shared risk).
        assert!(touched.windows(2).all(|w| w[0] == w[1]));
        assert!(!touched[0].is_empty());
    }

    #[test]
    fn shared_risk_is_deterministic_in_seed() {
        let build = |seed| {
            let mut t = Topology::synthetic(8, 0.0, 3);
            let spec = SharedRiskSpec {
                groups: 2,
                hosts_per_group: 3,
                outages_per_day: 6.0,
                down_mins: (5.0, 20.0),
            };
            apply_shared_risk(&mut t, &spec, seed);
            t.specs().iter().map(|s| s.down.clone()).collect::<Vec<_>>()
        };
        assert_eq!(build(7), build(7));
        assert_ne!(build(7), build(8));
    }

    #[test]
    fn load_wave_covers_every_host_each_cycle() {
        let mut topo = Topology::synthetic(4, 0.0, 2);
        apply_load_wave(
            &mut topo,
            &LoadWaveSpec { period_hours: 8.0, dwell_mins: 60.0, hot_factor: 30.0 },
        );
        let horizon = topo.params().horizon;
        for h in 0..4u16 {
            let out = &topo.specs()[topo.seg_out(HostId(h)).0 as usize];
            assert!(!out.hot.is_empty(), "host {h} never gets hot");
            // Windows are staggered: host h's first window starts at h/n
            // of the cycle.
            let first = out.hot[0].0;
            let expected = SimTime::ZERO + SimDuration::from_secs_f64(h as f64 / 4.0 * 8.0 * 3600.0);
            assert_eq!(first, expected);
            // The wave repeats across the horizon.
            let last = out.hot.last().unwrap().0;
            assert!(last + SimDuration::from_hours(9) > SimTime::ZERO + horizon);
        }
    }

    #[test]
    fn flash_crowd_heats_victim_edge_more_than_core() {
        let mut topo = Topology::synthetic(5, 0.0, 4);
        apply_flash_crowds(
            &mut topo,
            &FlashCrowdSpec {
                events_per_day: 10.0,
                duration_mins: (10.0, 30.0),
                factor: (100.0, 200.0),
            },
            4,
        );
        let n = topo.n();
        let edge_windows: usize =
            (0..2 * n).map(|i| topo.specs()[i].hot.len()).sum();
        let core_windows: usize =
            (2 * n..topo.specs().len()).map(|i| topo.specs()[i].hot.len()).sum();
        assert!(edge_windows > 0, "no flash crowd landed");
        // Each event heats 1 edge and n-1 cores.
        assert_eq!(core_windows, edge_windows * (n - 1));
        let edge_factor = topo
            .specs()
            .iter()
            .take(2 * n)
            .flat_map(|s| s.hot.iter())
            .map(|w| w.2)
            .fold(0.0f64, f64::max);
        let core_factor = topo
            .specs()
            .iter()
            .skip(2 * n)
            .flat_map(|s| s.hot.iter())
            .map(|w| w.2)
            .fold(0.0f64, f64::max);
        assert!(edge_factor > core_factor * 3.9, "edge {edge_factor} core {core_factor}");
    }

    #[test]
    fn asymmetry_skews_forward_loss_and_delay() {
        let mut params = Topology::synthetic_params(0.001);
        AsymmetrySpec { loss_skew: 4.0, delay_skew_ms: 25.0 }.apply(&mut params);
        let topo = Topology::synthetic_with(6, 0.001, params, 5);
        let (a, b) = (HostId(1), HostId(4));
        let fwd = &topo.specs()[topo.seg_core(a, b).0 as usize];
        let rev = &topo.specs()[topo.seg_core(b, a).0 as usize];
        let ratio = fwd.loss.stationary_loss(1.0) / rev.loss.stationary_loss(1.0);
        assert!((ratio - 16.0).abs() < 0.5, "skew² expected, got {ratio}");
        // Per-pair inflation draws differ by direction, so assert the
        // *mean* forward-minus-reverse delay over all pairs: the random
        // part cancels and the scripted 25 ms skew remains.
        let mut diff_ms = 0.0;
        let mut pairs = 0.0;
        for i in 0..6u16 {
            for j in (i + 1)..6u16 {
                let f = &topo.specs()[topo.seg_core(HostId(i), HostId(j)).0 as usize];
                let r = &topo.specs()[topo.seg_core(HostId(j), HostId(i)).0 as usize];
                diff_ms += f.latency.prop.as_millis_f64() - r.latency.prop.as_millis_f64();
                pairs += 1.0;
            }
        }
        let mean = diff_ms / pairs;
        assert!((15.0..35.0).contains(&mean), "mean directional skew {mean}ms, want ~25");
    }
}
