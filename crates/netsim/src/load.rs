//! Diurnal load modulation.
//!
//! §4.2 of the paper: "During many hours of the day, the Internet is
//! mostly quiescent and loss rates are low" — and the worst single hour
//! saw >13% loss. Loss intensity therefore follows a 24-hour sinusoid;
//! on top of that, individual segments get *hot periods* (scripted or
//! randomly scheduled bursts of heavy congestion) from the topology
//! builder, handled in [`crate::segment`].

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A smooth 24-hour load profile.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LoadProfile {
    /// Relative swing around 1.0; 0.6 means intensity varies 0.4..1.6.
    pub amplitude: f64,
    /// Cycle length (24 h for the Internet's diurnal pattern).
    pub period: SimDuration,
    /// Phase offset in cycles (0..1); lets presets start mid-cycle.
    pub phase: f64,
}

impl LoadProfile {
    /// Flat profile (intensity 1.0 always) — for unit tests.
    pub fn flat() -> Self {
        LoadProfile { amplitude: 0.0, period: SimDuration::from_hours(24), phase: 0.0 }
    }

    /// The default diurnal profile used by the testbed presets.
    pub fn diurnal() -> Self {
        LoadProfile { amplitude: 0.6, period: SimDuration::from_hours(24), phase: 0.15 }
    }

    /// Load intensity multiplier at `now` (always > 0).
    pub fn intensity(&self, now: SimTime) -> f64 {
        if self.amplitude == 0.0 {
            return 1.0;
        }
        let frac = (now.as_micros() as f64 / self.period.as_micros() as f64) + self.phase;
        let s = (std::f64::consts::TAU * frac).sin();
        (1.0 + self.amplitude * s).max(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_one() {
        let p = LoadProfile::flat();
        for h in 0..48 {
            assert_eq!(p.intensity(SimTime::from_secs(h * 3600)), 1.0);
        }
    }

    #[test]
    fn diurnal_swings_and_stays_positive() {
        let p = LoadProfile::diurnal();
        let vals: Vec<f64> = (0..24)
            .map(|h| p.intensity(SimTime::from_secs(h * 3600)))
            .collect();
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        assert!(min > 0.0);
        assert!(max > 1.3 && min < 0.7, "min={min} max={max}");
    }

    #[test]
    fn period_is_24h() {
        let p = LoadProfile::diurnal();
        let a = p.intensity(SimTime::from_secs(5 * 3600));
        let b = p.intensity(SimTime::from_secs(5 * 3600 + 86_400));
        assert!((a - b).abs() < 1e-9);
    }
}
