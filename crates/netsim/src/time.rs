//! Simulated time: microsecond-resolution instants and durations.
//!
//! Wall-clock types from `std::time` are deliberately not used inside the
//! simulator; experiments must be reproducible and decoupled from the host
//! machine. `SimTime` is an absolute instant (microseconds since the start
//! of the experiment's epoch) and `SimDuration` a non-negative span.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant in simulated time, in microseconds since the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct SimTime(u64);

/// A non-negative span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinite" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whole seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole hours since the epoch (used by windowed statistics).
    pub const fn as_hours(self) -> u64 {
        self.0 / 3_600_000_000
    }

    /// Elapsed time since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    /// Builds a duration from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000_000)
    }

    /// Builds a duration from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400_000_000)
    }

    /// Builds a duration from fractional seconds; negative values clamp
    /// to zero (the simulator has no negative spans).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            SimDuration(0)
        } else {
            SimDuration((s * 1e6).round() as u64)
        }
    }

    /// The duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a non-negative float, rounding to the nearest
    /// microsecond.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        debug_assert!(f >= 0.0, "durations cannot be scaled negatively");
        SimDuration((self.0 as f64 * f).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs();
        let (d, s) = (s / 86_400, s % 86_400);
        let (h, s) = (s / 3_600, s % 3_600);
        let (m, s) = (s / 60, s % 60);
        write!(f, "{d}d {h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_days(1).as_secs_f64(), 86_400.0);
        assert_eq!(SimDuration::from_hours(2), SimDuration::from_mins(120));
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 10_500_000);
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_millis(500));
        assert_eq!(SimDuration::from_secs(1) * 3, SimDuration::from_secs(3));
        assert_eq!(SimDuration::from_secs(3) / 3, SimDuration::from_secs(1));
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.001), SimDuration::from_millis(1));
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration::from_micros(10).mul_f64(1.24), SimDuration::from_micros(12));
        assert_eq!(SimDuration::from_micros(10).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimTime::from_secs(90_061).to_string(), "1d 01:01:01");
    }

    #[test]
    fn hours_bucket() {
        assert_eq!(SimTime::from_secs(3_599).as_hours(), 0);
        assert_eq!(SimTime::from_secs(3_600).as_hours(), 1);
    }
}
