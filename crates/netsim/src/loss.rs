//! Bursty congestion loss: a lazily-advanced Gilbert–Elliott process.
//!
//! Each network segment alternates between a *good* state (negligible
//! loss) and a *bad* state (a congestion burst where most packets die).
//! Burst durations are hyper-exponential — a mixture of short queue
//! overflows (tens of milliseconds) and longer congestion episodes — which
//! reproduces the paper's observation that the conditional loss
//! probability of a second packet decays only slowly as the spacing grows
//! from 0 ms to 10 ms to 20 ms (§4.4, Table 5).
//!
//! The chain is advanced *lazily*: state is only evolved when a packet
//! actually crosses the segment. Sojourns in each state are exponential
//! (memoryless), so skipping ahead over long idle gaps by resampling from
//! the stationary distribution is statistically exact for the
//! exponential-good state and a documented approximation for the
//! hyper-exponential bad state (idle gaps overwhelmingly end in the good
//! state, so the approximation is negligible in practice).

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Parameters of the Gilbert–Elliott congestion process.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GeParams {
    /// Mean sojourn in the good state at load intensity 1.0.
    pub mean_good: SimDuration,
    /// Mean duration of a *short* burst (queue overflow scale).
    pub short_bad: SimDuration,
    /// Mean duration of a *long* burst (sustained congestion scale).
    pub long_bad: SimDuration,
    /// Probability that a burst is of the long kind.
    pub p_long: f64,
    /// Per-packet loss probability in the good state (residual noise).
    pub loss_good: f64,
    /// Per-packet loss probability inside a burst. Below 1.0 because real
    /// drop-tail queues interleave survivors even while overflowing; the
    /// paper's 72% back-to-back CLP pins this down.
    pub loss_bad: f64,
}

impl GeParams {
    /// A segment that never loses packets (ideal link).
    pub fn lossless() -> Self {
        GeParams {
            mean_good: SimDuration::from_secs(3600),
            short_bad: SimDuration::from_millis(1),
            long_bad: SimDuration::from_millis(1),
            p_long: 0.0,
            loss_good: 0.0,
            loss_bad: 0.0,
        }
    }

    /// Builds parameters from a target stationary loss rate, keeping the
    /// burst-shape defaults that calibrate the paper's CLP numbers.
    ///
    /// `stationary_loss` is the long-run fraction of packets lost at load
    /// intensity 1.0 (e.g. `0.004` for a 0.4% segment).
    pub fn from_stationary_loss(stationary_loss: f64) -> Self {
        // Burst-shape defaults are calibrated against the paper's Table 5:
        // CLP(back-to-back) ≈ 72%, CLP(10 ms) ≈ 66%, CLP(20 ms) ≈ 65%.
        // The slow 10→20 ms decay requires a small fraction of second-scale
        // bursts carrying most of the bad time.
        let mut p = GeParams {
            mean_good: SimDuration::from_secs(15),
            short_bad: SimDuration::from_millis(12),
            long_bad: SimDuration::from_millis(1000),
            p_long: 0.073,
            loss_good: 0.0,
            loss_bad: 0.68,
        };
        if stationary_loss <= 0.0 {
            return GeParams::lossless();
        }
        // stationary_loss = bad_fraction * loss_bad  with
        // bad_fraction = mean_bad / (mean_good + mean_bad).
        let mean_bad = p.mean_bad_micros();
        let want_bad_fraction = (stationary_loss / p.loss_bad).min(0.9);
        let mean_good = mean_bad * (1.0 - want_bad_fraction) / want_bad_fraction;
        p.mean_good = SimDuration::from_micros(mean_good.max(1.0) as u64);
        p
    }

    /// Mean bad sojourn in microseconds.
    pub fn mean_bad_micros(&self) -> f64 {
        (1.0 - self.p_long) * self.short_bad.as_micros() as f64
            + self.p_long * self.long_bad.as_micros() as f64
    }

    /// Long-run fraction of time spent in the bad state at intensity
    /// `intensity` (which scales how often bursts start).
    pub fn stationary_bad(&self, intensity: f64) -> f64 {
        let g = self.mean_good.as_micros() as f64 / intensity.max(1e-9);
        let b = self.mean_bad_micros();
        b / (g + b)
    }

    /// Long-run packet loss rate at the given intensity.
    pub fn stationary_loss(&self, intensity: f64) -> f64 {
        let fb = self.stationary_bad(intensity);
        fb * self.loss_bad + (1.0 - fb) * self.loss_good
    }
}

/// The evolving state of one segment's congestion process.
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    params: GeParams,
    bad: bool,
    /// The current state holds until this instant (exclusive).
    until: SimTime,
    /// Whether the first sojourn has been drawn yet.
    init: bool,
}

impl GilbertElliott {
    /// Creates a process starting in the good state at time zero.
    pub fn new(params: GeParams) -> Self {
        GilbertElliott { params, bad: false, until: SimTime::ZERO, init: false }
    }

    /// The configured parameters.
    pub fn params(&self) -> &GeParams {
        &self.params
    }

    fn draw_sojourn(&self, bad: bool, intensity: f64, rng: &mut Rng) -> SimDuration {
        let mean_us = if bad {
            if rng.chance(self.params.p_long) {
                self.params.long_bad.as_micros() as f64
            } else {
                self.params.short_bad.as_micros() as f64
            }
        } else {
            self.params.mean_good.as_micros() as f64 / intensity.max(1e-9)
        };
        SimDuration::from_micros(rng.exp(mean_us).max(1.0) as u64)
    }

    /// Advances the chain to `now` and reports whether the segment is in a
    /// congestion burst.
    pub fn is_bad(&mut self, now: SimTime, intensity: f64, rng: &mut Rng) -> bool {
        if !self.init {
            // First observation: start from the stationary distribution so
            // short runs are unbiased.
            self.init = true;
            self.bad = rng.chance(self.params.stationary_bad(intensity));
            self.until = now + self.draw_sojourn(self.bad, intensity, rng);
            return self.bad;
        }
        if now < self.until {
            return self.bad;
        }
        // Fast-skip long idle gaps: beyond many cycle lengths the state is
        // stationary, so resample it instead of replaying every sojourn.
        let cycle = self.params.mean_good.as_micros() as f64 / intensity.max(1e-9)
            + self.params.mean_bad_micros();
        let gap = now.since(self.until).as_micros() as f64;
        if gap > 64.0 * cycle {
            self.bad = rng.chance(self.params.stationary_bad(intensity));
            self.until = now + self.draw_sojourn(self.bad, intensity, rng);
            return self.bad;
        }
        while self.until <= now {
            self.bad = !self.bad;
            let sojourn = self.draw_sojourn(self.bad, intensity, rng);
            self.until += sojourn;
        }
        self.bad
    }

    /// Advances to `now` and samples one packet crossing: returns
    /// `(in_burst, lost)`.
    pub fn observe(&mut self, now: SimTime, intensity: f64, rng: &mut Rng) -> (bool, bool) {
        let bad = self.is_bad(now, intensity, rng);
        let p = if bad { self.params.loss_bad } else { self.params.loss_good };
        (bad, rng.chance(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_loss_rate(params: GeParams, spacing: SimDuration, n: u64, seed: u64) -> f64 {
        let mut ge = GilbertElliott::new(params);
        let mut rng = Rng::new(seed);
        let mut t = SimTime::ZERO;
        let mut lost = 0u64;
        for _ in 0..n {
            let (_, l) = ge.observe(t, 1.0, &mut rng);
            if l {
                lost += 1;
            }
            t += spacing;
        }
        lost as f64 / n as f64
    }

    #[test]
    fn stationary_loss_matches_prediction() {
        let p = GeParams::from_stationary_loss(0.004);
        let predicted = p.stationary_loss(1.0);
        assert!((predicted - 0.004).abs() < 1e-9, "calibration formula: {predicted}");
        // Empirical check with widely spaced samples (independent-ish).
        let measured = sample_loss_rate(p, SimDuration::from_secs(7), 400_000, 99);
        assert!(
            (measured - 0.004).abs() < 0.001,
            "measured {measured}, wanted ~0.004"
        );
    }

    #[test]
    fn back_to_back_clp_is_loss_bad() {
        // Second packet sent with zero gap sees the same state, so
        // CLP(0ms) must approach loss_bad.
        let p = GeParams::from_stationary_loss(0.01);
        let mut ge = GilbertElliott::new(p);
        let mut rng = Rng::new(7);
        let mut t = SimTime::ZERO;
        let (mut first_lost, mut both_lost) = (0u64, 0u64);
        for _ in 0..4_000_000 {
            let (_, l1) = ge.observe(t, 1.0, &mut rng);
            let (_, l2) = ge.observe(t, 1.0, &mut rng);
            if l1 {
                first_lost += 1;
                if l2 {
                    both_lost += 1;
                }
            }
            t += SimDuration::from_secs(1);
        }
        let clp = both_lost as f64 / first_lost as f64;
        assert!((clp - p.loss_bad).abs() < 0.05, "clp={clp} loss_bad={}", p.loss_bad);
    }

    #[test]
    fn clp_decays_with_gap() {
        let p = GeParams::from_stationary_loss(0.01);
        let clp_at = |gap_ms: u64, seed: u64| {
            let mut ge = GilbertElliott::new(p);
            let mut rng = Rng::new(seed);
            let mut t = SimTime::ZERO;
            let (mut first, mut both) = (0u64, 0u64);
            for _ in 0..3_000_000 {
                let (_, l1) = ge.observe(t, 1.0, &mut rng);
                let (_, l2) = ge.observe(t + SimDuration::from_millis(gap_ms), 1.0, &mut rng);
                if l1 {
                    first += 1;
                    if l2 {
                        both += 1;
                    }
                }
                t += SimDuration::from_secs(1);
            }
            both as f64 / first as f64
        };
        let c0 = clp_at(0, 1);
        let c10 = clp_at(10, 2);
        let c500 = clp_at(500, 3);
        assert!(c0 > c10, "c0={c0} c10={c10}");
        assert!(c10 > c500, "c10={c10} c500={c500}");
        // Far beyond the short-burst scale most of the correlation is gone
        // (only the rare second-scale bursts remain sticky).
        assert!(c500 < 0.6 * c0, "c500={c500} c0={c0}");
    }

    #[test]
    fn lossless_never_drops() {
        let rate = sample_loss_rate(GeParams::lossless(), SimDuration::from_millis(10), 50_000, 5);
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn intensity_scales_loss() {
        let p = GeParams::from_stationary_loss(0.005);
        assert!(p.stationary_loss(4.0) > 3.0 * p.stationary_loss(1.0));
        assert!(p.stationary_loss(0.25) < 0.3 * p.stationary_loss(1.0));
    }

    #[test]
    fn deterministic_replay() {
        let p = GeParams::from_stationary_loss(0.01);
        let a = sample_loss_rate(p, SimDuration::from_millis(500), 10_000, 42);
        let b = sample_loss_rate(p, SimDuration::from_millis(500), 10_000, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn fast_skip_preserves_stationarity() {
        // Samples spaced far beyond the cycle length exercise the
        // stationary-resample path; the loss rate must stay calibrated.
        let p = GeParams::from_stationary_loss(0.02);
        let measured = sample_loss_rate(p, SimDuration::from_secs(3600), 300_000, 11);
        assert!((measured - 0.02).abs() < 0.004, "measured={measured}");
    }
}
