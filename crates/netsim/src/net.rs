//! The animated network: transmits packets across a topology.
//!
//! [`Network`] owns the live state of every segment plus per-host
//! process-liveness, and answers one question: *a packet leaves `src`
//! for `dst` at time `t` — when does it arrive, if at all?* All policy
//! (probing, routing, duplication) lives in higher crates.

use crate::load::LoadProfile;
use crate::outage::{OutageParams, OutageProcess};
use crate::rng::Rng;
use crate::segment::{DropCause, Segment, SegmentId, Transit};
use crate::time::{SimDuration, SimTime};
use crate::topology::{HostId, Topology};
use serde::{Deserialize, Serialize};

/// The outcome of handing one packet to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Packet will arrive after `delay`.
    Delivered {
        /// Total one-way delay across the three segments.
        delay: SimDuration,
    },
    /// Packet died.
    Dropped {
        /// Segment where it died.
        segment: SegmentId,
        /// Why.
        cause: DropCause,
    },
}

impl Delivery {
    /// True when the packet survived.
    pub fn is_delivered(&self) -> bool {
        matches!(self, Delivery::Delivered { .. })
    }
}

/// Aggregate flow counters for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetCounters {
    /// Packets offered to the network.
    pub sent: u64,
    /// Packets that arrived.
    pub delivered: u64,
    /// Drops inside failure windows.
    pub dropped_outage: u64,
    /// Congestion drops.
    pub dropped_congestion: u64,
    /// Link-state dissemination payload bytes offered to the network
    /// (piggybacked metric vectors and standalone LSA packets alike, as
    /// encoded on the wire). Excluded from output fingerprints so the
    /// dissemination mode stays a free knob.
    pub lsa_bytes: u64,
    /// Link-state metric entries offered (the byte figure's unit-free
    /// companion).
    pub lsa_entries: u64,
}

impl NetCounters {
    /// Overall loss rate.
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            1.0 - self.delivered as f64 / self.sent as f64
        }
    }

    /// Folds another run's counters into this one (sharded-run merge).
    pub fn merge(&mut self, other: &NetCounters) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped_outage += other.dropped_outage;
        self.dropped_congestion += other.dropped_congestion;
        self.lsa_bytes += other.lsa_bytes;
        self.lsa_entries += other.lsa_entries;
    }
}

/// Live network state for one experiment run.
pub struct Network {
    topo: Topology,
    segments: Vec<Segment>,
    host_proc: Vec<OutageProcess>,
    host_rng: Rng,
    load: LoadProfile,
    counters: NetCounters,
}

impl Network {
    /// Animates `topo`; all randomness derives from `seed`.
    pub fn new(topo: Topology, seed: u64) -> Self {
        let root = Rng::new(seed);
        let segments = topo
            .specs()
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                Segment::new(SegmentId(i as u32), spec.clone(), root.derive(0x5E6 + i as u64))
            })
            .collect();
        // Host process crashes: rare, minutes-long (the events the
        // collector's 90 s rule must filter, §4.1).
        // Volunteer-testbed flakiness: measurement processes restart,
        // hosts reboot, links get unplugged. Roughly 1% downtime per
        // host — invisible to the endpoint filter when the host serves
        // as a forwarding intermediate, which is a big part of why
        // random-intermediate legs lose several times more packets than
        // direct ones (Tables 5 and 7).
        let crash_params = if topo.params().host_crashes {
            OutageParams {
                mean_up: SimDuration::from_secs(130_000), // ~1.5 days
                min_down: SimDuration::from_mins(4),
                alpha: 1.2,
                max_down: SimDuration::from_hours(2),
            }
        } else {
            OutageParams::never()
        };
        let host_proc = (0..topo.n()).map(|_| OutageProcess::new(crash_params)).collect();
        Network {
            topo,
            segments,
            host_proc,
            host_rng: root.derive(0xCAFE),
            load: LoadProfile::diurnal(),
            counters: NetCounters::default(),
        }
    }

    /// The underlying topology.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Replaces the load profile (tests use [`LoadProfile::flat`]).
    pub fn set_load(&mut self, load: LoadProfile) {
        self.load = load;
    }

    /// Current load intensity.
    pub fn intensity(&self, now: SimTime) -> f64 {
        self.load.intensity(now)
    }

    /// Is the host process alive at `now`? (Network connectivity is a
    /// separate matter — this models crashes/restarts of the measurement
    /// process itself.)
    pub fn host_up(&mut self, h: HostId, now: SimTime) -> bool {
        !self.host_proc[h.idx()].is_down(now, &mut self.host_rng)
    }

    /// Transmits one packet on the one-way overlay hop `src → dst`.
    ///
    /// The caller is responsible for checking host liveness; the network
    /// only models wires. Each segment is sampled at the instant the
    /// packet actually crosses it.
    pub fn transmit(&mut self, now: SimTime, src: HostId, dst: HostId) -> Delivery {
        debug_assert_ne!(src, dst, "no self-hops on the overlay");
        self.counters.sent += 1;
        let mut t = now;
        for seg_id in self.topo.path(src, dst) {
            let intensity = self.load.intensity(t);
            match self.segments[seg_id.0 as usize].transit(t, intensity) {
                Transit::Pass(d) => t += d,
                Transit::Dropped(cause) => {
                    match cause {
                        DropCause::Outage => self.counters.dropped_outage += 1,
                        DropCause::Congestion => self.counters.dropped_congestion += 1,
                        DropCause::HostDown => {}
                    }
                    return Delivery::Dropped { segment: seg_id, cause };
                }
            }
        }
        self.counters.delivered += 1;
        Delivery::Delivered { delay: t - now }
    }

    /// Local (possibly skewed) clock reading of `host` at true time `t`,
    /// microseconds.
    pub fn local_micros(&self, host: HostId, t: SimTime) -> i64 {
        self.topo.clock(host).local_micros(t)
    }

    /// Flow counters.
    pub fn counters(&self) -> &NetCounters {
        &self.counters
    }

    /// Accounts link-state dissemination payload carried by a packet the
    /// caller just offered to [`Self::transmit`] (the network itself is
    /// payload-blind, so the overlay driver reports the cost).
    pub fn note_lsa(&mut self, bytes: u64, entries: u64) {
        self.counters.lsa_bytes += bytes;
        self.counters.lsa_entries += entries;
    }

    /// Mutable access to a segment (fault injection in tests/examples).
    pub fn segment_mut(&mut self, id: SegmentId) -> &mut Segment {
        &mut self.segments[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn lossless_synthetic_delivers_everything() {
        let topo = Topology::synthetic(4, 0.0, 1);
        let mut net = Network::new(topo, 1);
        net.set_load(LoadProfile::flat());
        let (a, b) = (HostId(0), HostId(2));
        for i in 0..1000 {
            let d = net.transmit(SimTime::from_secs(i), a, b);
            assert!(d.is_delivered(), "dropped at t={i}: {d:?}");
        }
        assert_eq!(net.counters().sent, 1000);
        assert_eq!(net.counters().delivered, 1000);
    }

    #[test]
    fn loss_rate_tracks_configuration() {
        // 1% per edge + small core → ~2% per path.
        let topo = Topology::synthetic(4, 0.01, 2);
        let mut net = Network::new(topo, 2);
        net.set_load(LoadProfile::flat());
        let pairs = net.topo().ordered_pairs();
        let mut t = SimTime::ZERO;
        let n = 120_000;
        for i in 0..n {
            let (a, b) = pairs[i % pairs.len()];
            net.transmit(t, a, b);
            t += SimDuration::from_millis(137);
        }
        let rate = net.counters().loss_rate();
        assert!((0.012..0.034).contains(&rate), "rate={rate}");
    }

    #[test]
    fn delay_roughly_geographic() {
        let topo = Topology::ron2003(3);
        let mit = topo.host_by_name("MIT").unwrap();
        let lon = topo.host_by_name("GBLX-LON").unwrap();
        let mazu = topo.host_by_name("Mazu").unwrap();
        let mut net = Network::new(topo, 3);
        net.set_load(LoadProfile::flat());
        let mean_delay = |net: &mut Network, a, b| {
            let mut sum = 0.0;
            let mut n = 0;
            for i in 0..300 {
                if let Delivery::Delivered { delay } =
                    net.transmit(SimTime::from_secs(40 + i * 7), a, b)
                {
                    sum += delay.as_millis_f64();
                    n += 1;
                }
            }
            sum / n as f64
        };
        let far = mean_delay(&mut net, mit, lon);
        let near = mean_delay(&mut net, mit, mazu);
        assert!(far > 25.0, "transatlantic {far}ms");
        assert!(near < 15.0, "metro {near}ms");
    }

    #[test]
    fn forced_outage_kills_direct_but_not_detour() {
        let topo = Topology::synthetic(4, 0.0, 4);
        let (a, b, c) = (HostId(0), HostId(1), HostId(2));
        let core_ab = topo.seg_core(a, b);
        let mut net = Network::new(topo, 4);
        net.set_load(LoadProfile::flat());
        let t = SimTime::from_secs(100);
        net.segment_mut(core_ab).force_outage(t, SimDuration::from_secs(60));
        assert!(!net.transmit(t, a, b).is_delivered(), "direct must die");
        // Detour a→c and c→b avoids the failed core segment.
        assert!(net.transmit(t, a, c).is_delivered());
        assert!(net.transmit(t, c, b).is_delivered());
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let topo = Topology::ron2003(9);
            let mut net = Network::new(topo, 9);
            let pairs = net.topo().ordered_pairs();
            let mut outcomes = Vec::new();
            let mut t = SimTime::ZERO;
            for i in 0..5_000 {
                let (a, b) = pairs[i % pairs.len()];
                outcomes.push(net.transmit(t, a, b).is_delivered());
                t += SimDuration::from_millis(311);
            }
            outcomes
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn host_crash_filter_source_exists() {
        let topo = Topology::ron2003(10);
        let mut net = Network::new(topo, 10);
        // Over two weeks some host must be down at some point.
        // Sample each host every 10 minutes over two weeks; crash windows
        // are minutes long, so this grid cannot miss them all.
        let mut saw_down = false;
        'outer: for step in 0..(14 * 144) {
            for h in 0..30u16 {
                if !net.host_up(HostId(h), SimTime::from_secs(step * 600)) {
                    saw_down = true;
                    break 'outer;
                }
            }
        }
        assert!(saw_down, "expected at least one host crash in 14 days");
    }

    #[test]
    fn synthetic_without_crashes_is_always_up() {
        let topo = Topology::synthetic(5, 0.01, 11);
        let mut net = Network::new(topo, 11);
        for d in 0..30u64 {
            for h in 0..5u16 {
                assert!(net.host_up(HostId(h), SimTime::from_secs(d * 86_400)));
            }
        }
    }
}
