//! Deterministic pseudo-random number generation.
//!
//! The simulator needs full reproducibility: the same seed must generate
//! the same run regardless of platform, crate versions, or iteration
//! order elsewhere in the program. To guarantee that, this module carries
//! its own xoshiro256** implementation (public-domain algorithm by
//! Blackman & Vigna) seeded through SplitMix64, plus the handful of
//! distributions the network models need (uniform, exponential, bounded
//! Pareto, normal and lognormal).
//!
//! Independent *streams* are derived with [`Rng::derive`], so each network
//! segment evolves from its own generator and adding a new consumer never
//! perturbs existing ones.
//!
//! # Stream derivation and shard universes
//!
//! Two derivation APIs exist, with different jobs:
//!
//! * [`Rng::derive`] — an independent *stream* inside the same
//!   simulation universe (one per segment, per node, …). The child state
//!   is produced by absorbing **all four** parent state words plus the
//!   label into a SplitMix64 sponge prefixed with a domain constant.
//!   Earlier revisions seeded the child from `s[0] ^ label` alone, which
//!   made `derive(0)` collide structurally with `Rng::new(s[0])` — a
//!   master stream and a derived stream could walk the same sequence.
//!   The sponge closes that hole: no choice of label reduces to a plain
//!   `Rng::new` seeding, and labels differing in any bit give unrelated
//!   children.
//! * [`Rng::stream_seed`] — a 64-bit *seed for a child universe*, used
//!   by the sharded experiment runner: shard `k` of a run with master
//!   seed `m` is seeded with `Rng::new(m).stream_seed(k)`. The value is
//!   drawn through the same sponge under a distinct domain constant, so
//!   a shard universe can never equal the master universe (the value for
//!   any label differs from `m` itself and from every `derive` result),
//!   and shards with different indices get unrelated universes even when
//!   `m` and `m ⊕ k` would collide under a naive XOR scheme.

/// A deterministic random number generator (xoshiro256**).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain tag for [`Rng::derive`] (same-universe streams).
const DOMAIN_DERIVE: u64 = 0xD0_5E6D_E217_3A11;
/// Domain tag for [`Rng::stream_seed`] (child shard universes).
const DOMAIN_SHARD: u64 = 0x51AB_1E5E_ED51_DE5C;

/// Absorbs one word into a SplitMix64-based sponge accumulator.
#[inline]
fn absorb(acc: u64, word: u64) -> u64 {
    let mut sm = acc ^ word.wrapping_mul(0xA24B_AED4_963E_E407);
    splitmix64(&mut sm)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent stream labelled by `stream`.
    ///
    /// Streams with different labels are statistically independent of each
    /// other and of the parent; deriving is stateless with respect to the
    /// parent (it does not consume parent randomness), so the set of
    /// consumers can grow without disturbing reproducibility.
    ///
    /// The child is seeded through a domain-separated sponge over the
    /// *full* parent state and the label (see the module docs): unlike
    /// the earlier `s[0] ^ label` construction, no label can make the
    /// child replay a `Rng::new` master stream.
    pub fn derive(&self, stream: u64) -> Rng {
        let mut sm = self.sponge(DOMAIN_DERIVE, stream);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Draws a 64-bit seed for an independent *child universe* ("shard
    /// stream") labelled by `label`, without consuming parent state.
    ///
    /// This is the splittable-stream API used by the sharded experiment
    /// runner: shard `k` of a run with master seed `m` lives in the
    /// universe `Rng::new(Rng::new(m).stream_seed(k))`. The seed is
    /// produced by the same full-state sponge as [`Rng::derive`] but
    /// under a distinct domain constant, so a shard seed can neither
    /// equal the master seed structurally (a naive `m ^ k` collides with
    /// the master for `k = 0` and makes shards of seeds `m` and `m ^ 1`
    /// swap universes) nor fall into the `derive` stream family.
    pub fn stream_seed(&self, label: u64) -> u64 {
        self.sponge(DOMAIN_SHARD, label)
    }

    /// SplitMix64 sponge over the full state plus `label`, prefixed with
    /// a domain constant.
    fn sponge(&self, domain: u64, label: u64) -> u64 {
        let mut acc = domain;
        for w in self.s {
            acc = absorb(acc, w);
        }
        absorb(acc, label)
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire-style rejection-free-enough sampling: widening multiply.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.f64()
    }

    /// Exponentially distributed value with the given mean.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse CDF; 1-f64() is in (0,1] so ln never sees zero.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Bounded Pareto sample in `[xm, cap]` with shape `alpha`.
    ///
    /// Heavy-tailed durations (outages) use this: most values are near the
    /// minimum `xm`, but multi-minute tails occur.
    pub fn pareto(&mut self, xm: f64, alpha: f64, cap: f64) -> f64 {
        debug_assert!(xm > 0.0 && alpha > 0.0 && cap >= xm);
        let u = self.f64();
        // Inverse CDF of the bounded Pareto distribution.
        let l = xm.powf(alpha);
        let h = cap.powf(alpha);
        let x = (-(u * h - u * l - h) / (h * l)).powf(-1.0 / alpha);
        x.clamp(xm, cap)
    }

    /// Standard normal via Box–Muller (one value per call; no caching so
    /// the stream stays position-independent).
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        let u1 = 1.0 - self.f64(); // (0, 1]
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        mu + sigma * r * (std::f64::consts::TAU * u2).cos()
    }

    /// Lognormal value whose *median* is `median` and whose log-space
    /// standard deviation is `sigma`.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        debug_assert!(median > 0.0);
        (self.normal(median.ln(), sigma)).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element index, `None` for an empty slice.
    pub fn pick_index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some(self.below(len as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_stateless_and_independent() {
        let parent = Rng::new(7);
        let mut c1 = parent.derive(1);
        let mut c1_again = parent.derive(1);
        let mut c2 = parent.derive(2);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn derive_zero_does_not_replay_a_master_stream() {
        // The historic bug: `derive(0)` seeded the child from `s[0]`
        // alone, so `Rng::new(parent.s[0])` was the *same* stream. The
        // sponge construction must keep the two apart.
        let parent = Rng::new(7);
        let leaked_word = parent.s[0];
        let mut child = parent.derive(0);
        let mut master = Rng::new(leaked_word);
        let same = (0..64).filter(|_| child.next_u64() == master.next_u64()).count();
        assert_eq!(same, 0, "derive(0) must not equal Rng::new(s[0])");
    }

    #[test]
    fn stream_seed_is_stable_and_label_sensitive() {
        let parent = Rng::new(42);
        assert_eq!(parent.stream_seed(3), parent.stream_seed(3));
        assert_ne!(parent.stream_seed(3), parent.stream_seed(4));
    }

    #[test]
    fn stream_seed_never_returns_the_master_seed() {
        // A naive `seed ^ shard` scheme returns the master seed for
        // shard 0; the domain-separated sponge must not.
        for seed in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            let parent = Rng::new(seed);
            for label in 0..64 {
                assert_ne!(parent.stream_seed(label), seed, "seed={seed} label={label}");
            }
        }
    }

    #[test]
    fn stream_seed_differs_from_derive_family() {
        // Domain separation: the shard-universe seed material must not
        // coincide with the derive-stream sponge for the same label.
        let parent = Rng::new(1234);
        for label in 0..32 {
            let mut shard = Rng::new(parent.stream_seed(label));
            let mut derived = parent.derive(label);
            let same = (0..32).filter(|_| shard.next_u64() == derived.next_u64()).count();
            assert_eq!(same, 0, "label={label}");
        }
    }

    #[test]
    fn sibling_shard_universes_are_unrelated() {
        let parent = Rng::new(99);
        let mut a = Rng::new(parent.stream_seed(0));
        let mut b = Rng::new(parent.stream_seed(1));
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound_and_covers() {
        let mut r = Rng::new(4);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = r.below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn exp_mean_close() {
        let mut r = Rng::new(6);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp(50.0)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn pareto_bounded() {
        let mut r = Rng::new(8);
        for _ in 0..10_000 {
            let x = r.pareto(30.0, 1.2, 1800.0);
            assert!((30.0..=1800.0).contains(&x), "x={x}");
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let mut r = Rng::new(9);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.pareto(30.0, 1.2, 1800.0)).collect();
        let near_min = samples.iter().filter(|&&x| x < 60.0).count() as f64 / n as f64;
        let long = samples.iter().filter(|&&x| x > 600.0).count() as f64 / n as f64;
        assert!(near_min > 0.4, "mass near minimum: {near_min}");
        assert!(long > 0.005, "tail mass: {long}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(10);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn lognormal_median() {
        let mut r = Rng::new(11);
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n).map(|_| r.lognormal(5.0, 0.7)).collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        let median = xs[n / 2];
        assert!((median - 5.0).abs() < 0.2, "median={median}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(12);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pick_index_empty() {
        let mut r = Rng::new(13);
        assert_eq!(r.pick_index(0), None);
        assert!(r.pick_index(3).unwrap() < 3);
    }
}
