//! Per-host clocks.
//!
//! "Most, but not all, hosts have GPS-synchronized clocks" (§4.1). A
//! host's local clock reads `true_time + offset + drift·t`. One-way
//! latencies computed from two different hosts' clocks therefore absorb
//! the skew difference; the paper (and our `analysis` crate) cancels it
//! by averaging the forward and reverse path summaries.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A host clock model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClockModel {
    /// Fixed offset from true time, microseconds (signed).
    pub offset_us: i64,
    /// Drift in parts-per-billion (signed); 1000 ppb ≈ 86 ms/day.
    pub drift_ppb: i64,
    /// Whether this host is GPS-disciplined (offset/drift ≈ 0).
    pub gps: bool,
}

impl ClockModel {
    /// A perfectly synchronised (GPS) clock.
    pub fn gps() -> Self {
        ClockModel { offset_us: 0, drift_ppb: 0, gps: true }
    }

    /// An NTP-ish clock with the given fixed offset and drift.
    pub fn skewed(offset_us: i64, drift_ppb: i64) -> Self {
        ClockModel { offset_us, drift_ppb, gps: false }
    }

    /// The host's local timestamp (microseconds, signed) for true instant
    /// `t`.
    pub fn local_micros(&self, t: SimTime) -> i64 {
        let base = t.as_micros() as i64;
        // Split the multiply to stay within i64 even for large drifts.
        let drift = (base / 1_000_000_000) * self.drift_ppb
            + ((base % 1_000_000_000) * self.drift_ppb) / 1_000_000_000;
        base + self.offset_us + drift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gps_is_identity() {
        let c = ClockModel::gps();
        let t = SimTime::from_secs(123_456);
        assert_eq!(c.local_micros(t), t.as_micros() as i64);
    }

    #[test]
    fn offset_shifts() {
        let c = ClockModel::skewed(-2_500, 0);
        let t = SimTime::from_secs(10);
        assert_eq!(c.local_micros(t), 10_000_000 - 2_500);
    }

    #[test]
    fn drift_accumulates() {
        // 1000 ppb over 1000 seconds = 1 ms.
        let c = ClockModel::skewed(0, 1_000);
        let t = SimTime::from_secs(1_000);
        assert_eq!(c.local_micros(t), 1_000_000_000 + 1_000);
    }

    #[test]
    fn drift_no_overflow_over_two_weeks() {
        let c = ClockModel::skewed(5_000, 50_000);
        let t = SimTime::from_secs(14 * 86_400);
        let local = c.local_micros(t);
        let expected_drift = (14i64 * 86_400) * 50_000 / 1_000; // us
        assert_eq!(local, t.as_micros() as i64 + 5_000 + expected_drift);
    }
}
