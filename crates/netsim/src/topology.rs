//! Testbed topologies: hosts, host classes, and per-segment parameters.
//!
//! The presets reproduce the RON testbed of the paper: [`Topology::ron2003`]
//! builds the 30 hosts of Table 1 (with the Table 2 class mix), and
//! [`Topology::ron2002`] the 17-host 2002 deployment. Host coordinates are
//! approximate city locations; access-link quality is derived from the
//! host class (Internet2 university, ISP, cable modem, DSL, international
//! academic, ...), matching the paper's description ("from OC3s to cable
//! modems and DSL links", §4).
//!
//! A topology is *pure data*: per-segment [`SegmentSpec`]s plus host
//! metadata. The [`crate::net::Network`] animates it.

use crate::clock::ClockModel;
use crate::latency::{Episode, LatencyModel};
use crate::loss::GeParams;
use crate::outage::OutageParams;
use crate::rng::Rng;
use crate::segment::{SegmentId, SegmentSpec};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Index of a host within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostId(pub u16);

impl HostId {
    /// The index as usize, for table lookups.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Access-link technology / administrative class of a host (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostClass {
    /// US university on the Internet2 backbone (asterisks in Table 1).
    EduI2,
    /// University host not on Internet2.
    Edu,
    /// Large commercial ISP point of presence.
    IspLarge,
    /// Small or regional ISP.
    IspSmall,
    /// Private company connection.
    Company,
    /// Residential cable modem.
    Cable,
    /// Residential DSL line.
    Dsl,
    /// International university.
    IntlEdu,
    /// International ISP.
    IntlIsp,
}

impl HostClass {
    /// Baseline stationary loss of each access segment of this class at
    /// load intensity 1.0.
    pub fn edge_loss(self) -> f64 {
        match self {
            HostClass::EduI2 => 0.00008,
            HostClass::Edu => 0.0008,
            HostClass::IspLarge => 0.0006,
            HostClass::IspSmall => 0.0020,
            HostClass::Company => 0.0012,
            HostClass::Cable => 0.0050,
            HostClass::Dsl => 0.0080,
            HostClass::IntlEdu => 0.0030,
            HostClass::IntlIsp => 0.0015,
        }
    }

    /// Extra one-way propagation on the access link (last-mile delay).
    pub fn edge_prop(self) -> SimDuration {
        match self {
            HostClass::EduI2 => SimDuration::from_micros(300),
            HostClass::Edu => SimDuration::from_micros(500),
            HostClass::IspLarge => SimDuration::from_micros(400),
            HostClass::IspSmall => SimDuration::from_micros(800),
            HostClass::Company => SimDuration::from_micros(600),
            HostClass::Cable => SimDuration::from_millis(4),
            HostClass::Dsl => SimDuration::from_millis(7),
            HostClass::IntlEdu => SimDuration::from_millis(1),
            HostClass::IntlIsp => SimDuration::from_micros(800),
        }
    }

    /// Mean days between access-link failures.
    pub fn edge_mtbf_days(self) -> f64 {
        match self {
            HostClass::EduI2 => 18.0,
            HostClass::Edu => 12.0,
            HostClass::IspLarge => 15.0,
            HostClass::IspSmall => 8.0,
            HostClass::Company => 10.0,
            HostClass::Cable => 6.0,
            HostClass::Dsl => 5.0,
            HostClass::IntlEdu => 8.0,
            HostClass::IntlIsp => 10.0,
        }
    }
}

/// One testbed host.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostInfo {
    /// Short name (Table 1 column 1).
    pub name: String,
    /// Access class.
    pub class: HostClass,
    /// Approximate latitude of the host city.
    pub lat: f64,
    /// Approximate longitude of the host city.
    pub lon: f64,
    /// On the Internet2 backbone.
    pub i2: bool,
    /// Override of the class edge loss (e.g. the Korea↔US DSL extreme of
    /// §4.2).
    pub edge_loss_override: Option<f64>,
}

/// Global knobs distinguishing testbed eras and scenarios.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopologyParams {
    /// Multiplier on all stationary congestion loss (2002 ran hotter).
    pub loss_scale: f64,
    /// Stationary loss of a generic core segment.
    pub core_loss: f64,
    /// Stationary loss of an Internet2-to-Internet2 core segment.
    pub i2_core_loss: f64,
    /// Multiplier on failure frequency.
    pub outage_scale: f64,
    /// Per-host lognormal diversity (log-space sigma) applied to edge loss.
    pub diversity_sigma: f64,
    /// Range of routing inflation over great-circle propagation for core
    /// segments (sampled per ordered pair).
    pub inflation: (f64, f64),
    /// Fixed per-core-segment delay (router hops, serialisation).
    pub core_base_delay: SimDuration,
    /// Fraction of hosts with GPS-disciplined clocks (§4.1: "most").
    pub gps_fraction: f64,
    /// Whether hosts occasionally crash (process restarts; filtered by the
    /// collector's 90 s rule).
    pub host_crashes: bool,
    /// Whether segments suffer outages at all (disabled in fully
    /// controlled synthetic topologies; tests inject faults explicitly).
    pub outages: bool,
    /// Scripted hot periods (congestion storms) per simulated day.
    pub hot_periods_per_day: f64,
    /// Intensity multiplier range of hot periods.
    pub hot_factor: (f64, f64),
    /// New per-path trouble episodes per day: hours-long congestion on a
    /// single ordered pair's core segment. These are the pathologies
    /// reactive routing can dodge (a detour through any intermediate
    /// avoids the troubled core), unlike edge storms which every path to
    /// the host shares. The Table 6 tail and the loss-routing gain both
    /// come from here.
    pub pair_trouble_per_day: f64,
    /// Trouble episode duration range, hours.
    pub trouble_hours: (f64, f64),
    /// Trouble episode intensity multiplier range.
    pub trouble_factor: (f64, f64),
    /// Add the §4.5 Cornell-style latency pathology.
    pub cornell_episode: bool,
    /// Direction skew on core-segment loss: the "forward" direction of
    /// every ordered pair (`src < dst`) gets its stationary loss
    /// multiplied by this factor, the reverse direction divided by it.
    /// `1.0` (the default) is a symmetric network; `3.0` models the
    /// asymmetric-path pathology where one direction of a path is far
    /// dirtier than the other (think saturated peering in one direction).
    pub dir_loss_skew: f64,
    /// Direction skew on core-segment delay: extra one-way propagation
    /// added to the forward (`src < dst`) direction only. Zero keeps the
    /// network symmetric.
    pub dir_delay_skew: SimDuration,
    /// Horizon the scripted schedules should cover.
    pub horizon: SimDuration,
}

impl Default for TopologyParams {
    fn default() -> Self {
        TopologyParams {
            loss_scale: 1.0,
            core_loss: 0.0004,
            i2_core_loss: 0.00002,
            outage_scale: 1.0,
            diversity_sigma: 0.65,
            inflation: (1.7, 3.2),
            core_base_delay: SimDuration::from_millis(3),
            gps_fraction: 0.8,
            host_crashes: true,
            outages: true,
            hot_periods_per_day: 3.0,
            hot_factor: (15.0, 60.0),
            pair_trouble_per_day: 0.0,
            trouble_hours: (1.0, 4.0),
            trouble_factor: (150.0, 700.0),
            cornell_episode: false,
            dir_loss_skew: 1.0,
            dir_delay_skew: SimDuration::ZERO,
            horizon: SimDuration::from_days(14),
        }
    }
}

/// A complete testbed description.
#[derive(Debug, Clone)]
pub struct Topology {
    hosts: Vec<HostInfo>,
    clocks: Vec<ClockModel>,
    specs: Vec<SegmentSpec>,
    params: TopologyParams,
    /// Optional sparse probe mesh: `probe_mesh[h]` lists the hosts `h`
    /// may probe. `None` means the historical full clique. Behind an
    /// `Arc` because the sharded runner clones the topology per slice.
    probe_mesh: Option<std::sync::Arc<Vec<Vec<u16>>>>,
}

/// A deterministic, seed-derived `k`-regular probe mesh on `n` hosts.
///
/// Construction: a seed-derived permutation arranges the hosts on a
/// circle, then each host connects to its `k/2` nearest successors and
/// predecessors (a circulant), plus its antipode when `k` is odd. The
/// result is exactly `k`-regular with no duplicate edges, symmetric
/// (`b ∈ mesh[a] ⇔ a ∈ mesh[b]`), and a pure function of `(n, k, seed)`
/// — every slice, shard and distributed worker derives the identical
/// mesh. Neighbor lists come back sorted ascending.
///
/// # Panics
///
/// When no `k`-regular graph on `n` vertices exists: `k` must be in
/// `1..n` and `n * k` must be even.
pub fn sparse_mesh(n: usize, k: usize, seed: u64) -> Vec<Vec<u16>> {
    assert!(n >= 2 && k >= 1 && k < n, "mesh degree {k} must be in 1..{n}");
    assert!(
        (n * k).is_multiple_of(2),
        "no {k}-regular graph on {n} hosts exists (hosts x degree must be even)"
    );
    let mut order: Vec<u16> = (0..n as u16).collect();
    Rng::new(seed ^ 0x5AB5_E5ED_0E5B_0A7D).shuffle(&mut order);
    let mut mesh: Vec<Vec<u16>> = vec![Vec::with_capacity(k); n];
    let connect = |mesh: &mut Vec<Vec<u16>>, a: u16, b: u16| {
        mesh[a as usize].push(b);
        mesh[b as usize].push(a);
    };
    // Circulant rings at distance 1..=k/2: each adds degree 2. Every
    // distance is below n/2 (k < n), so no ring duplicates another.
    for d in 1..=k / 2 {
        for i in 0..n {
            connect(&mut mesh, order[i], order[(i + d) % n]);
        }
    }
    if k % 2 == 1 {
        // The evenness guard above makes n even here: a perfect
        // antipodal matching contributes the remaining odd degree.
        for i in 0..n / 2 {
            connect(&mut mesh, order[i], order[i + n / 2]);
        }
    }
    for nbrs in &mut mesh {
        nbrs.sort_unstable();
    }
    mesh
}

/// Great-circle distance between two (lat, lon) points, km.
fn haversine_km(a: (f64, f64), b: (f64, f64)) -> f64 {
    let (la1, lo1) = (a.0.to_radians(), a.1.to_radians());
    let (la2, lo2) = (b.0.to_radians(), b.1.to_radians());
    let dla = la2 - la1;
    let dlo = lo2 - lo1;
    let h = (dla / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlo / 2.0).sin().powi(2);
    2.0 * 6371.0 * h.sqrt().asin()
}

struct HostRow(&'static str, HostClass, f64, f64, bool, Option<f64>);

/// Table 1 of the paper, with approximate coordinates and our class
/// assignment. The `Option<f64>` overrides edge loss for the §4.2
/// extremes.
const RON2003_HOSTS: &[HostRow] = &[
    HostRow("Aros", HostClass::IspSmall, 40.76, -111.89, false, None),
    HostRow("AT&T", HostClass::IspLarge, 40.79, -74.39, false, None),
    HostRow("CA-DSL", HostClass::Dsl, 37.55, -122.27, false, None),
    HostRow("CCI", HostClass::Company, 40.76, -111.89, false, None),
    HostRow("CMU", HostClass::EduI2, 40.44, -79.94, true, None),
    HostRow("Coloco", HostClass::IspSmall, 39.10, -76.85, false, None),
    HostRow("Cornell", HostClass::EduI2, 42.44, -76.50, true, None),
    HostRow("Cybermesa", HostClass::IspSmall, 35.69, -105.94, false, None),
    HostRow("Digitalwest", HostClass::IspSmall, 35.28, -120.66, false, None),
    HostRow("GBLX-AMS", HostClass::IntlIsp, 52.37, 4.90, false, None),
    HostRow("GBLX-ANA", HostClass::IspLarge, 33.84, -117.91, false, None),
    HostRow("GBLX-CHI", HostClass::IspLarge, 41.88, -87.63, false, None),
    HostRow("GBLX-JFK", HostClass::IspLarge, 40.64, -73.78, false, None),
    HostRow("GBLX-LON", HostClass::IntlIsp, 51.51, -0.13, false, None),
    HostRow("Intel", HostClass::Company, 37.44, -122.14, false, None),
    HostRow("Korea", HostClass::IntlEdu, 36.37, 127.36, false, Some(0.018)),
    HostRow("Lulea", HostClass::IntlEdu, 65.58, 22.15, false, None),
    HostRow("MA-Cable", HostClass::Cable, 42.37, -71.11, false, None),
    HostRow("Mazu", HostClass::Company, 42.36, -71.06, false, None),
    HostRow("MIT", HostClass::EduI2, 42.36, -71.09, true, None),
    HostRow("MIT-main", HostClass::Edu, 42.36, -71.09, false, None),
    HostRow("NC-Cable", HostClass::Cable, 35.99, -78.90, false, None),
    HostRow("Nortel", HostClass::Company, 43.65, -79.38, false, None),
    HostRow("NYU", HostClass::EduI2, 40.73, -73.99, true, None),
    HostRow("PDI", HostClass::Company, 37.44, -122.14, false, None),
    HostRow("PSG", HostClass::IspSmall, 47.63, -122.52, false, None),
    HostRow("UCSD", HostClass::EduI2, 32.88, -117.23, true, None),
    HostRow("Utah", HostClass::EduI2, 40.76, -111.89, true, None),
    HostRow("Vineyard", HostClass::IspSmall, 42.37, -71.10, false, None),
    HostRow("VU-NL", HostClass::IntlEdu, 52.33, 4.86, false, None),
];

/// The 17 hosts of the 2002 datasets. The paper marks them in bold in
/// Table 1 (not recoverable from the text), so this is our documented
/// choice of the plausible early-RON subset.
const RON2002_NAMES: &[&str] = &[
    "Aros", "AT&T", "CA-DSL", "CCI", "CMU", "Cornell", "Cybermesa", "Intel", "Korea", "Lulea",
    "MA-Cable", "MIT", "NC-Cable", "Nortel", "NYU", "PDI", "Utah",
];

impl Topology {
    /// Number of hosts.
    pub fn n(&self) -> usize {
        self.hosts.len()
    }

    /// Host metadata.
    pub fn hosts(&self) -> &[HostInfo] {
        &self.hosts
    }

    /// Host metadata by id.
    pub fn host(&self, h: HostId) -> &HostInfo {
        &self.hosts[h.idx()]
    }

    /// The clock model of a host.
    pub fn clock(&self, h: HostId) -> &ClockModel {
        &self.clocks[h.idx()]
    }

    /// Looks a host up by name.
    pub fn host_by_name(&self, name: &str) -> Option<HostId> {
        self.hosts
            .iter()
            .position(|h| h.name == name)
            .map(|i| HostId(i as u16))
    }

    /// The build parameters.
    pub fn params(&self) -> &TopologyParams {
        &self.params
    }

    /// All segment specs, indexable by [`SegmentId`].
    pub fn specs(&self) -> &[SegmentSpec] {
        &self.specs
    }

    /// Mutable segment specs, for the scripted impairment planners in
    /// [`crate::stress`].
    pub(crate) fn specs_mut(&mut self) -> &mut [SegmentSpec] {
        &mut self.specs
    }

    /// The sparse probe mesh, if one is installed: `mesh[h]` lists the
    /// hosts `h` may probe. `None` means the full clique.
    pub fn probe_mesh(&self) -> Option<&std::sync::Arc<Vec<Vec<u16>>>> {
        self.probe_mesh.as_ref()
    }

    /// Installs a sparse probe mesh (see [`sparse_mesh`]).
    ///
    /// # Panics
    ///
    /// When the mesh's shape does not fit this topology: one neighbor
    /// list per host, no empty list, no self-loops, every neighbor in
    /// range.
    pub fn set_probe_mesh(&mut self, mesh: Vec<Vec<u16>>) {
        assert_eq!(mesh.len(), self.n(), "probe mesh must cover every host");
        for (h, nbrs) in mesh.iter().enumerate() {
            assert!(!nbrs.is_empty(), "host {h} has no probe neighbors");
            assert!(
                nbrs.iter().all(|&b| (b as usize) < self.n() && b as usize != h),
                "host {h} has an out-of-range or self neighbor"
            );
        }
        self.probe_mesh = Some(std::sync::Arc::new(mesh));
    }

    /// The outbound access segment of a host.
    pub fn seg_out(&self, h: HostId) -> SegmentId {
        SegmentId(2 * h.0 as u32)
    }

    /// The inbound access segment of a host.
    pub fn seg_in(&self, h: HostId) -> SegmentId {
        SegmentId(2 * h.0 as u32 + 1)
    }

    /// The core segment of the ordered pair `src → dst`.
    pub fn seg_core(&self, src: HostId, dst: HostId) -> SegmentId {
        let n = self.n() as u32;
        SegmentId(2 * n + src.0 as u32 * n + dst.0 as u32)
    }

    /// The three segments a one-way hop `src → dst` crosses, in order.
    pub fn path(&self, src: HostId, dst: HostId) -> [SegmentId; 3] {
        [self.seg_out(src), self.seg_core(src, dst), self.seg_in(dst)]
    }

    /// All ordered host pairs (the paper's ~870 one-way paths for N=30).
    pub fn ordered_pairs(&self) -> Vec<(HostId, HostId)> {
        let n = self.n() as u16;
        let mut v = Vec::with_capacity(self.n() * (self.n() - 1));
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    v.push((HostId(i), HostId(j)));
                }
            }
        }
        v
    }

    /// The build parameters of the [`Topology::ron2003`] preset.
    pub fn ron2003_params() -> TopologyParams {
        TopologyParams {
            loss_scale: 0.50,
            inflation: (2.1, 2.9),
            outage_scale: 1.5,
            pair_trouble_per_day: 60.0,
            trouble_factor: (200.0, 900.0),
            cornell_episode: true,
            ..TopologyParams::default()
        }
    }

    /// The 30-host 2003 testbed (RON2003 dataset era).
    pub fn ron2003(seed: u64) -> Topology {
        Self::from_rows(RON2003_HOSTS, Self::ron2003_params(), seed)
    }

    /// Same as [`Topology::ron2003`] but with custom parameters.
    pub fn ron2003_with(params: TopologyParams, seed: u64) -> Topology {
        Self::from_rows(RON2003_HOSTS, params, seed)
    }

    /// The build parameters of the [`Topology::ron2002`] preset.
    pub fn ron2002_params() -> TopologyParams {
        TopologyParams {
            // §4.2: 2002's overall direct loss was 0.74% against 2003's
            // 0.42% — the hotter year is encoded here structurally (not
            // left to per-seed diversity draws, which flip the ordering
            // for many seeds).
            loss_scale: 0.62,
            // 2002's losses sat deeper in the network: a bigger core share
            // makes same-pair copies through different intermediates more
            // independent, matching the year's lower indirect CLP (§4.4).
            core_loss: 0.0012,
            inflation: (2.9, 3.7),
            pair_trouble_per_day: 10.0,
            cornell_episode: false,
            hot_periods_per_day: 4.0,
            horizon: SimDuration::from_days(5),
            ..TopologyParams::default()
        }
    }

    /// The 17-host 2002 testbed (RONnarrow / RONwide era): hotter links,
    /// no Cornell pathology.
    pub fn ron2002(seed: u64) -> Topology {
        Self::ron2002_with(Self::ron2002_params(), seed)
    }

    /// Same as [`Topology::ron2002`] but with custom parameters.
    pub fn ron2002_with(params: TopologyParams, seed: u64) -> Topology {
        let rows: Vec<&HostRow> = RON2003_HOSTS
            .iter()
            .filter(|r| RON2002_NAMES.contains(&r.0))
            .collect();
        Self::from_refs(&rows, params, seed)
    }

    /// The build parameters of the [`Topology::synthetic`] preset: a
    /// fully controlled testbed — no outages, crashes, storms or
    /// diversity draws — with a core carrying a fifth of the edge loss.
    pub fn synthetic_params(edge_loss: f64) -> TopologyParams {
        TopologyParams {
            host_crashes: false,
            outages: false,
            hot_periods_per_day: 0.0,
            diversity_sigma: 0.0,
            gps_fraction: 1.0,
            core_loss: edge_loss * 0.2,
            i2_core_loss: 0.0,
            horizon: SimDuration::from_days(2),
            ..TopologyParams::default()
        }
    }

    /// A small uniform synthetic testbed for tests and examples: `n`
    /// hosts around a geographic circle, every edge with the same
    /// stationary loss.
    pub fn synthetic(n: usize, edge_loss: f64, seed: u64) -> Topology {
        Self::synthetic_with(n, edge_loss, Self::synthetic_params(edge_loss), seed)
    }

    /// Same as [`Topology::synthetic`] but with custom parameters.
    pub fn synthetic_with(n: usize, edge_loss: f64, params: TopologyParams, seed: u64) -> Topology {
        assert!(n >= 2);
        let hosts: Vec<HostInfo> = (0..n)
            .map(|i| {
                let angle = std::f64::consts::TAU * i as f64 / n as f64;
                HostInfo {
                    name: format!("node{i}"),
                    class: HostClass::IspSmall,
                    lat: 40.0 + 8.0 * angle.sin(),
                    lon: -95.0 + 18.0 * angle.cos(),
                    i2: false,
                    edge_loss_override: Some(edge_loss),
                }
            })
            .collect();
        Self::build(hosts, params, seed)
    }

    fn from_rows(rows: &[HostRow], params: TopologyParams, seed: u64) -> Topology {
        let refs: Vec<&HostRow> = rows.iter().collect();
        Self::from_refs(&refs, params, seed)
    }

    fn from_refs(rows: &[&HostRow], params: TopologyParams, seed: u64) -> Topology {
        let hosts: Vec<HostInfo> = rows
            .iter()
            .map(|r| HostInfo {
                name: r.0.to_string(),
                class: r.1,
                lat: r.2,
                lon: r.3,
                i2: r.4,
                edge_loss_override: r.5,
            })
            .collect();
        Self::build(hosts, params, seed)
    }

    /// Builds a topology from arbitrary host metadata.
    pub fn build(hosts: Vec<HostInfo>, params: TopologyParams, seed: u64) -> Topology {
        let n = hosts.len();
        let root = Rng::new(seed);
        let mut param_rng = root.derive(0xA11CE);
        let mut specs = Vec::with_capacity(2 * n + n * n);

        // Access segments: 2 per host (out, in).
        for h in &hosts {
            let mult = if params.diversity_sigma > 0.0 {
                param_rng.lognormal(1.0, params.diversity_sigma)
            } else {
                1.0
            };
            let base = h.edge_loss_override.unwrap_or_else(|| h.class.edge_loss());
            let loss = (base * mult * params.loss_scale).min(0.2);
            let mtbf = h.class.edge_mtbf_days() / params.outage_scale;
            for _dir in 0..2 {
                let mut latency = LatencyModel::typical(h.class.edge_prop());
                if params.cornell_episode && h.name == "Cornell" {
                    // §4.5: "many of the paths to the Cornell node
                    // experienced latencies of up to 1 second" around day 6.
                    let start = params.horizon.mul_f64(0.40);
                    let dur = params.horizon.mul_f64(0.09);
                    latency.episodes.push(Episode {
                        start: SimTime::ZERO + start,
                        end: SimTime::ZERO + start + dur,
                        extra: SimDuration::from_millis(750),
                    });
                }
                let outage = if params.outages {
                    OutageParams::edge(mtbf)
                } else {
                    OutageParams::never()
                };
                specs.push(SegmentSpec {
                    loss: GeParams::from_stationary_loss(loss),
                    outage,
                    latency,
                    hot: Vec::new(),
                    down: Vec::new(),
                });
            }
        }

        // Core segments: one per ordered pair (diagonal entries unused but
        // present to keep indexing O(1)).
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    specs.push(SegmentSpec::ideal(SimDuration::from_millis(1)));
                    continue;
                }
                let both_i2 = hosts[i].i2 && hosts[j].i2;
                let base = if both_i2 { params.i2_core_loss } else { params.core_loss };
                let mult = if params.diversity_sigma > 0.0 {
                    param_rng.lognormal(1.0, params.diversity_sigma)
                } else {
                    1.0
                };
                // Per-direction asymmetry: the forward (i < j) direction
                // carries the skew, the reverse its inverse, so the
                // *pair* mean stays put while the directions diverge.
                let dir_mult =
                    if i < j { params.dir_loss_skew } else { 1.0 / params.dir_loss_skew };
                let loss = (base * mult * params.loss_scale * dir_mult).min(0.1);
                let dist = haversine_km((hosts[i].lat, hosts[i].lon), (hosts[j].lat, hosts[j].lon));
                let inflation = if both_i2 {
                    param_rng.uniform(1.15, 1.5)
                } else {
                    param_rng.uniform(params.inflation.0, params.inflation.1)
                };
                let dir_extra_us =
                    if i < j { params.dir_delay_skew.as_micros() as f64 } else { 0.0 };
                let prop_us = params.core_base_delay.as_micros() as f64
                    + dist / 200.0 * 1000.0 * inflation
                    + dir_extra_us;
                let outage = if params.outages {
                    OutageParams::core(20.0 / params.outage_scale)
                } else {
                    OutageParams::never()
                };
                specs.push(SegmentSpec {
                    loss: GeParams::from_stationary_loss(loss),
                    outage,
                    latency: LatencyModel::typical(SimDuration::from_micros(prop_us as u64)),
                    hot: Vec::new(),
                    down: Vec::new(),
                });
            }
        }

        // Scripted hot periods: congestion storms hitting one host's edge
        // (both directions) or one core segment.
        let mut hot_rng = root.derive(0x1107);
        let days = params.horizon.as_secs_f64() / 86_400.0;
        let count = (params.hot_periods_per_day * days).round() as usize;
        for _ in 0..count {
            let start =
                SimTime::ZERO + SimDuration::from_secs_f64(hot_rng.uniform(0.0, params.horizon.as_secs_f64()));
            let dur = SimDuration::from_secs_f64(hot_rng.uniform(1200.0, 5400.0));
            let factor = hot_rng.uniform(params.hot_factor.0, params.hot_factor.1);
            if hot_rng.chance(0.7) {
                // Edge storm: hits everything through one host.
                let h = hot_rng.below(n as u64) as usize;
                specs[2 * h].hot.push((start, start + dur, factor));
                specs[2 * h + 1].hot.push((start, start + dur, factor));
            } else {
                // Core storm on one ordered pair.
                let i = hot_rng.below(n as u64) as usize;
                let mut j = hot_rng.below(n as u64) as usize;
                if i == j {
                    j = (j + 1) % n;
                }
                specs[2 * n + i * n + j].hot.push((start, start + dur, factor));
            }
        }

        // Per-path trouble episodes: hours of serious congestion on one
        // ordered pair's core segment (see TopologyParams docs).
        let mut trouble_rng = root.derive(0x7B0B);
        let tcount = (params.pair_trouble_per_day * days).round() as usize;
        for _ in 0..tcount {
            let start = SimTime::ZERO
                + SimDuration::from_secs_f64(trouble_rng.uniform(0.0, params.horizon.as_secs_f64()));
            let dur = SimDuration::from_secs_f64(
                trouble_rng.uniform(params.trouble_hours.0, params.trouble_hours.1) * 3600.0,
            );
            let factor = trouble_rng.uniform(params.trouble_factor.0, params.trouble_factor.1);
            let i = trouble_rng.below(n as u64) as usize;
            let mut j = trouble_rng.below(n as u64) as usize;
            if i == j {
                j = (j + 1) % n;
            }
            specs[2 * n + i * n + j].hot.push((start, start + dur, factor));
        }

        // Clocks.
        let mut clock_rng = root.derive(0xC10C);
        let clocks: Vec<ClockModel> = hosts
            .iter()
            .map(|_| {
                if clock_rng.chance(params.gps_fraction) {
                    ClockModel::gps()
                } else {
                    ClockModel::skewed(
                        clock_rng.uniform(-25_000.0, 25_000.0) as i64,
                        clock_rng.uniform(-2_000.0, 2_000.0) as i64,
                    )
                }
            })
            .collect();

        Topology { hosts, clocks, specs, params, probe_mesh: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ron2003_matches_table_1_and_2() {
        let t = Topology::ron2003(1);
        assert_eq!(t.n(), 30);
        // 870 one-way paths between 30 hosts (§4).
        assert_eq!(t.ordered_pairs().len(), 870);
        // Table 2 class mix.
        let count = |c: HostClass| t.hosts().iter().filter(|h| h.class == c).count();
        assert_eq!(count(HostClass::EduI2), 6);
        assert_eq!(count(HostClass::Cable) + count(HostClass::Dsl), 3);
        assert_eq!(
            count(HostClass::IntlEdu) + count(HostClass::IntlIsp),
            5,
            "five non-US-class hosts"
        );
        assert!(t.host_by_name("Korea").is_some());
        assert!(t.host_by_name("nonexistent").is_none());
    }

    #[test]
    fn ron2002_is_the_17_host_subset() {
        let t2 = Topology::ron2002(1);
        assert_eq!(t2.n(), 17);
        assert!(t2.host_by_name("MIT").is_some());
        assert!(t2.host_by_name("GBLX-LON").is_none());
        // 2002 paths ran hotter on average (0.74% vs 0.42% in the paper):
        // the 17-host subset carries proportionally more lossy edges and a
        // dirtier core.
        let mean_path_loss = |t: &Topology| {
            let pairs = t.ordered_pairs();
            pairs
                .iter()
                .map(|&(a, b)| {
                    t.path(a, b)
                        .iter()
                        .map(|s| t.specs()[s.0 as usize].loss.stationary_loss(1.0))
                        .sum::<f64>()
                })
                .sum::<f64>()
                / pairs.len() as f64
        };
        let t3 = Topology::ron2003(1);
        assert!(
            mean_path_loss(&t2) > mean_path_loss(&t3),
            "2002 quiet-state path loss must exceed 2003's"
        );
    }

    #[test]
    fn segment_indexing_is_unique_and_in_bounds() {
        let t = Topology::ron2003(2);
        let n = t.n();
        // detlint: allow(nondet-iter) — test-side uniqueness probe; the
        // only iteration is an order-insensitive max().
        let mut seen = std::collections::HashSet::new();
        for i in 0..n as u16 {
            assert!(seen.insert(t.seg_out(HostId(i))));
            assert!(seen.insert(t.seg_in(HostId(i))));
        }
        for (a, b) in t.ordered_pairs() {
            assert!(seen.insert(t.seg_core(a, b)), "core {a:?}->{b:?} collided");
        }
        let max = seen.iter().map(|s| s.0).max().unwrap() as usize;
        assert!(max < t.specs().len());
    }

    #[test]
    fn sparse_mesh_is_exactly_k_regular_symmetric_and_deterministic() {
        for (n, k) in [(30, 6), (30, 7) /* odd k, even n */, (31, 6), (4, 1), (8, 7)] {
            let mesh = sparse_mesh(n, k, 42);
            assert_eq!(mesh.len(), n);
            for (h, nbrs) in mesh.iter().enumerate() {
                assert_eq!(nbrs.len(), k, "host {h} degree (n={n}, k={k})");
                assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted, duplicate-free");
                for &b in nbrs {
                    assert_ne!(b as usize, h, "self-loop at {h}");
                    assert!(
                        mesh[b as usize].contains(&(h as u16)),
                        "mesh must be symmetric: {h} -> {b}"
                    );
                }
            }
            assert_eq!(mesh, sparse_mesh(n, k, 42), "pure function of (n, k, seed)");
        }
        assert_ne!(sparse_mesh(30, 6, 1), sparse_mesh(30, 6, 2), "seed-derived");
    }

    #[test]
    #[should_panic(expected = "no 3-regular graph on 5 hosts")]
    fn sparse_mesh_rejects_impossible_degree_parity() {
        sparse_mesh(5, 3, 1);
    }

    #[test]
    fn topology_carries_an_installed_probe_mesh_through_clone() {
        let mut t = Topology::synthetic(6, 0.01, 1);
        assert!(t.probe_mesh().is_none(), "clique by default");
        t.set_probe_mesh(sparse_mesh(6, 2, 9));
        let c = t.clone();
        assert_eq!(c.probe_mesh().unwrap().as_slice(), t.probe_mesh().unwrap().as_slice());
    }

    #[test]
    #[should_panic(expected = "must cover every host")]
    fn probe_mesh_shape_is_checked() {
        Topology::synthetic(6, 0.01, 1).set_probe_mesh(vec![vec![1]; 5]);
    }

    #[test]
    fn path_is_out_core_in() {
        let t = Topology::ron2003(3);
        let (a, b) = (HostId(0), HostId(5));
        let p = t.path(a, b);
        assert_eq!(p[0], t.seg_out(a));
        assert_eq!(p[1], t.seg_core(a, b));
        assert_eq!(p[2], t.seg_in(b));
    }

    #[test]
    fn i2_pairs_get_clean_cores() {
        let t = Topology::ron2003(4);
        let mit = t.host_by_name("MIT").unwrap();
        let cmu = t.host_by_name("CMU").unwrap();
        let dsl = t.host_by_name("CA-DSL").unwrap();
        let clean = &t.specs()[t.seg_core(mit, cmu).0 as usize];
        let dirty = &t.specs()[t.seg_core(mit, dsl).0 as usize];
        assert!(
            clean.loss.stationary_loss(1.0) < dirty.loss.stationary_loss(1.0),
            "Internet2 core should be cleaner"
        );
    }

    #[test]
    fn cornell_has_latency_episode_in_2003_only() {
        let t3 = Topology::ron2003(5);
        let cornell = t3.host_by_name("Cornell").unwrap();
        let spec = &t3.specs()[t3.seg_in(cornell).0 as usize];
        assert!(!spec.latency.episodes.is_empty(), "2003 Cornell episode missing");

        let t2 = Topology::ron2002(5);
        let cornell2 = t2.host_by_name("Cornell").unwrap();
        let spec2 = &t2.specs()[t2.seg_in(cornell2).0 as usize];
        assert!(spec2.latency.episodes.is_empty(), "2002 must not have the episode");
    }

    #[test]
    fn deterministic_build() {
        let a = Topology::ron2003(77);
        let b = Topology::ron2003(77);
        for (sa, sb) in a.specs().iter().zip(b.specs()) {
            assert_eq!(
                sa.loss.stationary_loss(1.0),
                sb.loss.stationary_loss(1.0)
            );
        }
    }

    #[test]
    fn synthetic_is_uniform() {
        let t = Topology::synthetic(5, 0.01, 9);
        assert_eq!(t.n(), 5);
        for i in 0..5u16 {
            let s = &t.specs()[t.seg_out(HostId(i)).0 as usize];
            let loss = s.loss.stationary_loss(1.0);
            assert!((loss - 0.01).abs() < 1e-6, "loss={loss}");
        }
    }

    #[test]
    fn transatlantic_cores_are_slower_than_metro() {
        let t = Topology::ron2003(6);
        let mit = t.host_by_name("MIT").unwrap();
        let lon = t.host_by_name("GBLX-LON").unwrap();
        let mazu = t.host_by_name("Mazu").unwrap(); // also Boston
        let far = &t.specs()[t.seg_core(mit, lon).0 as usize];
        let near = &t.specs()[t.seg_core(mit, mazu).0 as usize];
        assert!(far.latency.prop > near.latency.prop * 3);
    }
}
