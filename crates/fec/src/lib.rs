//! # fec — packet-level forward error correction
//!
//! §5.2 of the paper analyses how FEC interacts with bursty, correlated
//! packet loss: "Reed-Solomon erasure codes are a standard FEC method …
//! If the first packet in a packet train is lost, the high conditional
//! loss probability tells us that there is a 70% chance that the second
//! packet will also be lost — so to avoid this, the FEC information must
//! be spread out by nearly half a second if sending packets down the same
//! path."
//!
//! This crate supplies the machinery to reproduce that analysis:
//!
//! * [`gf256`] — arithmetic in GF(2⁸) (polynomial 0x11D);
//! * [`rs`] — a systematic Reed–Solomon erasure code built from a Cauchy
//!   matrix (any k of the k+r shards reconstruct the group);
//! * [`interleave`] — a block interleaver that spreads a group's packets
//!   over time to decorrelate burst losses;
//! * [`stream`] — a streaming encoder/decoder pair with recovery-delay
//!   accounting.

#![warn(missing_docs)]

pub mod gf256;
pub mod interleave;
pub mod rs;
pub mod stream;

pub use interleave::BlockInterleaver;
pub use rs::{ErasureCode, FecError};
pub use stream::{FecPacket, FecReceiver, FecSender, ReceiverStats};
