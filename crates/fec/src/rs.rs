//! A systematic Reed–Solomon erasure code over GF(2⁸).
//!
//! The generator is a Cauchy matrix `C[p][j] = 1 / (x_p ⊕ y_j)` with
//! `x_p = k + p`, `y_j = j`. Every square submatrix of a Cauchy matrix is
//! nonsingular, so *any* k of the k+r shards (data or parity) suffice to
//! reconstruct the group — the standard property FEC-based multi-path
//! schemes rely on (§5.2, [Rizzo/RMDP]).
//!
//! Encoding appends `r` parity shards to `k` data shards; decoding
//! reconstructs missing data shards by Gauss–Jordan elimination of the
//! k×k system formed by the surviving rows.

use crate::gf256::{self, mul_acc};
use std::fmt;

/// Erasure-coding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FecError {
    /// `k`, `r`, or `k + r` outside the field's limits.
    BadGeometry {
        /// Requested data shards.
        k: usize,
        /// Requested parity shards.
        r: usize,
    },
    /// Fewer than `k` shards survive: the group is unrecoverable.
    NotEnoughShards {
        /// Shards present.
        have: usize,
        /// Shards needed.
        need: usize,
    },
    /// Shards disagree in length.
    LengthMismatch,
}

impl fmt::Display for FecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FecError::BadGeometry { k, r } => write!(f, "invalid geometry k={k} r={r}"),
            FecError::NotEnoughShards { have, need } => {
                write!(f, "unrecoverable: {have} shards present, {need} needed")
            }
            FecError::LengthMismatch => write!(f, "shards have differing lengths"),
        }
    }
}

impl std::error::Error for FecError {}

/// A (k, r) systematic erasure code: k data shards, r parity shards.
#[derive(Debug, Clone)]
pub struct ErasureCode {
    k: usize,
    r: usize,
    /// r × k Cauchy rows.
    rows: Vec<Vec<u8>>,
}

impl ErasureCode {
    /// Creates a code with `k` data and `r` parity shards (`k ≥ 1`,
    /// `r ≥ 0`, `k + r ≤ 256`).
    pub fn new(k: usize, r: usize) -> Result<Self, FecError> {
        if k == 0 || k + r > 256 {
            return Err(FecError::BadGeometry { k, r });
        }
        let rows = (0..r)
            .map(|p| {
                (0..k)
                    .map(|j| gf256::inv(((k + p) as u8) ^ (j as u8)))
                    .collect()
            })
            .collect();
        Ok(ErasureCode { k, r, rows })
    }

    /// Data shard count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Parity shard count.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Computes the `r` parity shards for `data` (all equal length).
    pub fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, FecError> {
        if data.len() != self.k {
            return Err(FecError::BadGeometry { k: data.len(), r: self.r });
        }
        let len = data[0].len();
        if data.iter().any(|d| d.len() != len) {
            return Err(FecError::LengthMismatch);
        }
        let mut parity = vec![vec![0u8; len]; self.r];
        for (p, row) in self.rows.iter().enumerate() {
            for (j, d) in data.iter().enumerate() {
                mul_acc(&mut parity[p], d, row[j]);
            }
        }
        Ok(parity)
    }

    /// Reconstructs missing **data** shards in place.
    ///
    /// `shards` has length `k + r`: indices `0..k` are data, `k..k+r`
    /// parity; `None` marks an erasure. On success every data slot is
    /// `Some`. Parity slots are left as they were.
    pub fn decode(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), FecError> {
        if shards.len() != self.k + self.r {
            return Err(FecError::BadGeometry { k: shards.len(), r: 0 });
        }
        let missing: Vec<usize> =
            (0..self.k).filter(|&i| shards[i].is_none()).collect();
        if missing.is_empty() {
            return Ok(());
        }
        let have = shards.iter().filter(|s| s.is_some()).count();
        if have < self.k {
            return Err(FecError::NotEnoughShards { have, need: self.k });
        }
        let len = shards
            .iter()
            .flatten()
            .map(|s| s.len())
            .next()
            .ok_or(FecError::NotEnoughShards { have: 0, need: self.k })?;
        if shards.iter().flatten().any(|s| s.len() != len) {
            return Err(FecError::LengthMismatch);
        }

        // Assemble k rows: prefer surviving data rows (identity), fill
        // with surviving parity rows.
        let mut matrix: Vec<Vec<u8>> = Vec::with_capacity(self.k);
        let mut rhs: Vec<Vec<u8>> = Vec::with_capacity(self.k);
        for i in 0..self.k {
            if let Some(s) = &shards[i] {
                let mut row = vec![0u8; self.k];
                row[i] = 1;
                matrix.push(row);
                rhs.push(s.clone());
            }
        }
        for p in 0..self.r {
            if matrix.len() == self.k {
                break;
            }
            if let Some(s) = &shards[self.k + p] {
                matrix.push(self.rows[p].clone());
                rhs.push(s.clone());
            }
        }
        debug_assert_eq!(matrix.len(), self.k);

        // Gauss–Jordan over GF(256): reduce [matrix | rhs] to identity.
        for col in 0..self.k {
            // Find a pivot.
            let pivot = (col..self.k)
                .find(|&row| matrix[row][col] != 0)
                .expect("Cauchy system is always solvable");
            matrix.swap(col, pivot);
            rhs.swap(col, pivot);
            // Normalise the pivot row.
            let pv = matrix[col][col];
            if pv != 1 {
                let inv = gf256::inv(pv);
                for x in matrix[col].iter_mut() {
                    *x = gf256::mul(*x, inv);
                }
                let row = std::mem::take(&mut rhs[col]);
                let mut scaled = vec![0u8; len];
                mul_acc(&mut scaled, &row, inv);
                rhs[col] = scaled;
            }
            // Eliminate the column elsewhere.
            for row in 0..self.k {
                if row == col || matrix[row][col] == 0 {
                    continue;
                }
                let c = matrix[row][col];
                let pivot_row = matrix[col].clone();
                for (x, p) in matrix[row].iter_mut().zip(&pivot_row) {
                    *x ^= gf256::mul(c, *p);
                }
                let pivot_rhs = rhs[col].clone();
                mul_acc(&mut rhs[row], &pivot_rhs, c);
            }
        }

        // matrix is now the identity: rhs[i] is data shard i.
        for i in missing {
            shards[i] = Some(rhs[i].clone());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut state = seed;
        (0..k)
            .map(|_| {
                (0..len)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        (state >> 33) as u8
                    })
                    .collect()
            })
            .collect()
    }

    fn roundtrip(k: usize, r: usize, erase: &[usize]) {
        let code = ErasureCode::new(k, r).unwrap();
        let data = sample_data(k, 64, (k * 31 + r) as u64);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        for &e in erase {
            shards[e] = None;
        }
        code.decode(&mut shards).unwrap();
        for i in 0..k {
            assert_eq!(shards[i].as_ref().unwrap(), &data[i], "shard {i} (k={k}, r={r})");
        }
    }

    #[test]
    fn no_erasures_is_noop() {
        roundtrip(5, 1, &[]);
    }

    #[test]
    fn paper_5_1_code_recovers_one_loss() {
        // §5.2's example: "1 redundant packet for every 5 data packets".
        for e in 0..6 {
            roundtrip(5, 1, &[e]);
        }
    }

    #[test]
    fn recovers_r_erasures_anywhere() {
        // k=6, r=3: every 3-subset of the 9 shards may vanish.
        let k = 6;
        let r = 3;
        for a in 0..k + r {
            for b in a + 1..k + r {
                for c in b + 1..k + r {
                    roundtrip(k, r, &[a, b, c]);
                }
            }
        }
    }

    #[test]
    fn too_many_erasures_rejected() {
        let code = ErasureCode::new(4, 2).unwrap();
        let data = sample_data(4, 16, 9);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .into_iter()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        shards[0] = None;
        shards[1] = None;
        shards[4] = None;
        let err = code.decode(&mut shards).unwrap_err();
        assert!(matches!(err, FecError::NotEnoughShards { have: 3, need: 4 }));
    }

    #[test]
    fn geometry_limits() {
        assert!(ErasureCode::new(0, 1).is_err());
        assert!(ErasureCode::new(200, 57).is_err());
        assert!(ErasureCode::new(200, 56).is_ok());
        assert!(ErasureCode::new(1, 0).is_ok());
    }

    #[test]
    fn length_mismatch_rejected() {
        let code = ErasureCode::new(2, 1).unwrap();
        let a = vec![1u8; 8];
        let b = vec![2u8; 9];
        assert_eq!(
            code.encode(&[&a, &b]).unwrap_err(),
            FecError::LengthMismatch
        );
    }

    #[test]
    fn parity_is_deterministic_and_nontrivial() {
        let code = ErasureCode::new(3, 2).unwrap();
        let data = sample_data(3, 32, 4);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let p1 = code.encode(&refs).unwrap();
        let p2 = code.encode(&refs).unwrap();
        assert_eq!(p1, p2);
        assert_ne!(p1[0], p1[1], "distinct parity rows");
        assert_ne!(p1[0], data[0], "parity is not a copy");
    }

    #[test]
    fn zero_length_shards_work() {
        roundtrip(3, 2, &[0, 4]);
        let code = ErasureCode::new(2, 1).unwrap();
        let parity = code.encode(&[&[], &[]]).unwrap();
        assert_eq!(parity, vec![Vec::<u8>::new()]);
    }

    #[test]
    fn large_group_roundtrip() {
        // A content-distribution-scale group.
        roundtrip(32, 8, &[0, 5, 11, 31, 33, 36, 38, 39]);
    }
}
