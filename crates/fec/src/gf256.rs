//! Arithmetic in GF(2⁸) with the primitive polynomial x⁸+x⁴+x³+x²+1
//! (0x11D), the field conventionally used by Reed–Solomon erasure codes.
//!
//! Exponential/logarithm tables are computed at compile time; `mul` is
//! two table lookups and one add.

const POLY: u32 = 0x11D;

const fn build_tables() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u32 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    // Duplicate so mul can index exp[log a + log b] without a modulo.
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_tables();
/// exp table: `EXP[i] = α^i`, doubled to avoid modular reduction.
pub const EXP: [u8; 512] = TABLES.0;
/// log table: `LOG[α^i] = i`; `LOG[0]` is undefined (never read).
pub const LOG: [u8; 256] = TABLES.1;

/// Addition (= subtraction) in GF(2⁸).
#[inline]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplication in GF(2⁸).
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse. Panics on zero.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    EXP[255 - LOG[a as usize] as usize]
}

/// Division `a / b`. Panics when `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        0
    } else {
        EXP[(LOG[a as usize] as usize + 255 - LOG[b as usize] as usize) % 255]
    }
}

/// `a^n` by exponent arithmetic.
pub fn pow(a: u8, n: u32) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let e = (LOG[a as usize] as u32 * n) % 255;
    EXP[e as usize]
}

/// `dst[i] ^= c · src[i]` — the inner loop of encoding and decoding.
pub fn mul_acc(dst: &mut [u8], src: &[u8], c: u8) {
    debug_assert_eq!(dst.len(), src.len());
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let lc = LOG[c as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= EXP[lc + LOG[*s as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent() {
        for i in 1..=255u32 {
            let a = EXP[LOG[i as usize] as usize];
            assert_eq!(a as u32, i, "exp(log({i}))");
        }
    }

    #[test]
    fn multiplication_matches_schoolbook() {
        // Carry-less schoolbook multiply mod POLY as the oracle.
        fn slow_mul(mut a: u16, mut b: u16) -> u8 {
            let mut acc: u16 = 0;
            while b != 0 {
                if b & 1 != 0 {
                    acc ^= a;
                }
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= POLY as u16;
                }
                b >>= 1;
            }
            acc as u8
        }
        for a in 0..=255u16 {
            for b in (0..=255u16).step_by(7) {
                assert_eq!(mul(a as u8, b as u8), slow_mul(a, b), "{a}*{b}");
            }
        }
    }

    #[test]
    fn field_axioms_hold() {
        // Spot-check associativity / distributivity across a grid.
        for &a in &[1u8, 2, 3, 29, 76, 200, 255] {
            for &b in &[1u8, 5, 17, 99, 254] {
                for &c in &[2u8, 11, 123, 250] {
                    assert_eq!(mul(a, mul(b, c)), mul(mul(a, b), c), "assoc");
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)), "distr");
                }
            }
        }
    }

    #[test]
    fn inverse_round_trips() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    fn zero_behaviour() {
        assert_eq!(mul(0, 123), 0);
        assert_eq!(mul(123, 0), 0);
        assert_eq!(div(0, 5), 0);
        assert_eq!(pow(0, 5), 0);
        assert_eq!(pow(0, 0), 1);
    }

    #[test]
    #[should_panic(expected = "zero has no inverse")]
    fn inv_zero_panics() {
        let _ = inv(0);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for &a in &[2u8, 3, 29, 142] {
            let mut acc = 1u8;
            for n in 0..20 {
                assert_eq!(pow(a, n), acc, "a={a} n={n}");
                acc = mul(acc, a);
            }
        }
    }

    #[test]
    fn mul_acc_accumulates() {
        let src = [1u8, 2, 3, 0, 255];
        let mut dst = [9u8, 9, 9, 9, 9];
        let c = 7;
        let expect: Vec<u8> = src.iter().zip(dst.iter()).map(|(&s, &d)| d ^ mul(c, s)).collect();
        mul_acc(&mut dst, &src, c);
        assert_eq!(dst.to_vec(), expect);
    }

    #[test]
    fn mul_acc_identity_and_zero() {
        let src = [5u8, 6, 7];
        let mut dst = [1u8, 1, 1];
        mul_acc(&mut dst, &src, 1);
        assert_eq!(dst, [4, 7, 6]);
        let before = dst;
        mul_acc(&mut dst, &src, 0);
        assert_eq!(dst, before);
    }
}
