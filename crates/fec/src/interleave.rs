//! Block interleaving.
//!
//! A burst that kills `b` consecutive packets kills at most
//! `ceil(b / depth)` packets of any one FEC group once groups are
//! interleaved to depth `depth`. The §5.2 trade-off: deeper interleaving
//! tolerates longer bursts but delays recovery by up to
//! `rows × cols` packet slots — at interactive packet rates that is the
//! "nearly half a second" the paper warns about.

/// A rows × cols block interleaver (a fixed permutation of
/// `rows * cols` packet slots: write row-major, read column-major).
///
/// `rows` is the group length (k + r shards) and `cols` the interleaving
/// depth (number of groups in flight).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInterleaver {
    rows: usize,
    cols: usize,
}

impl BlockInterleaver {
    /// Creates an interleaver; both dimensions must be ≥ 1.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1, "degenerate interleaver");
        BlockInterleaver { rows, cols }
    }

    /// Total slots in one interleaving block.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Never empty (dimensions are ≥ 1).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Maps a logical index (group-major order: group `g`'s packets are
    /// contiguous) to its transmit slot (packet-position-major order:
    /// packet `p` of every group goes out before packet `p+1` of any).
    pub fn permute(&self, i: usize) -> usize {
        let block = i / self.len();
        let off = i % self.len();
        let (group, pos) = (off / self.rows, off % self.rows);
        block * self.len() + pos * self.cols + group
    }

    /// Inverse of [`BlockInterleaver::permute`].
    pub fn inverse(&self, j: usize) -> usize {
        let block = j / self.len();
        let off = j % self.len();
        let (pos, group) = (off / self.cols, off % self.cols);
        block * self.len() + group * self.rows + pos
    }

    /// The spacing (in transmit slots) between consecutive packets of the
    /// same group — the burst length the interleaver absorbs.
    pub fn group_spacing(&self) -> usize {
        self.cols
    }

    /// Worst-case extra buffering (in slots) the interleaver introduces.
    pub fn max_delay_slots(&self) -> usize {
        self.len().saturating_sub(1)
    }

    /// Interleaves a slice (length must be a multiple of
    /// [`BlockInterleaver::len`]).
    pub fn interleave<T: Clone>(&self, xs: &[T]) -> Vec<T> {
        assert_eq!(xs.len() % self.len(), 0, "length must be a whole number of blocks");
        let mut out = xs.to_vec();
        for (i, x) in xs.iter().enumerate() {
            out[self.permute(i)] = x.clone();
        }
        out
    }

    /// Undoes [`BlockInterleaver::interleave`].
    pub fn deinterleave<T: Clone>(&self, xs: &[T]) -> Vec<T> {
        assert_eq!(xs.len() % self.len(), 0, "length must be a whole number of blocks");
        let mut out = xs.to_vec();
        for (j, x) in xs.iter().enumerate() {
            out[self.inverse(j)] = x.clone();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permute_is_a_bijection() {
        for (r, c) in [(1, 1), (6, 1), (1, 7), (6, 4), (9, 16)] {
            let il = BlockInterleaver::new(r, c);
            let n = il.len() * 3; // several blocks
            let mut seen = vec![false; n];
            for i in 0..n {
                let j = il.permute(i);
                assert!(j < n);
                assert!(!seen[j], "slot {j} hit twice ({r}x{c})");
                seen[j] = true;
                assert_eq!(il.inverse(j), i, "inverse broken at {i}");
            }
        }
    }

    #[test]
    fn round_trip_restores_order() {
        let il = BlockInterleaver::new(3, 4);
        let xs: Vec<u32> = (0..24).collect();
        let tx = il.interleave(&xs);
        assert_ne!(tx, xs, "interleaving must reorder");
        assert_eq!(il.deinterleave(&tx), xs);
    }

    #[test]
    fn consecutive_group_packets_are_spaced_by_depth() {
        let il = BlockInterleaver::new(6, 5);
        // Group 0 occupies logical slots 0..6 of the first block.
        let slots: Vec<usize> = (0..6).map(|i| il.permute(i)).collect();
        for w in slots.windows(2) {
            assert_eq!(w[1] - w[0], 5, "spacing must equal depth");
        }
    }

    #[test]
    fn burst_hits_at_most_one_packet_per_group_when_short() {
        let il = BlockInterleaver::new(6, 5);
        // A burst of `depth` consecutive transmit slots.
        for burst_start in 0..25 {
            let killed: Vec<usize> = (burst_start..burst_start + 5)
                .map(|j| il.inverse(j))
                .collect();
            // Count kills per group (logical index / rows... group = i / 6
            // within a block of 30). BTreeMap: deterministic iteration,
            // so a failure names the same group on every run.
            let mut per_group = std::collections::BTreeMap::new();
            for i in killed {
                *per_group.entry(i / 6).or_insert(0) += 1;
            }
            for (g, k) in per_group {
                assert!(k <= 1, "burst at {burst_start} killed {k} packets of group {g}");
            }
        }
    }

    #[test]
    fn depth_one_is_identity() {
        let il = BlockInterleaver::new(6, 1);
        for i in 0..18 {
            assert_eq!(il.permute(i), i);
        }
        assert_eq!(il.max_delay_slots(), 5);
    }

    #[test]
    #[should_panic(expected = "whole number of blocks")]
    fn partial_blocks_rejected() {
        let il = BlockInterleaver::new(3, 4);
        let xs: Vec<u32> = (0..13).collect();
        let _ = il.interleave(&xs);
    }
}
