//! Streaming FEC: group packets, append parity, recover losses, and
//! account for the recovery delay the paper's §5.2 analysis turns on.

use crate::rs::{ErasureCode, FecError};
use std::collections::BTreeMap;

/// One packet of the encoded stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FecPacket {
    /// FEC group number.
    pub group: u32,
    /// Shard index within the group (`0..k` data, `k..k+r` parity).
    pub index: u8,
    /// Shard bytes.
    pub payload: Vec<u8>,
}

impl FecPacket {
    /// True for data shards.
    pub fn is_data(&self, k: usize) -> bool {
        (self.index as usize) < k
    }
}

/// Groups outgoing data packets and appends parity shards. Packets must
/// share one payload length (pad at the application layer).
#[derive(Debug)]
pub struct FecSender {
    code: ErasureCode,
    group: u32,
    buf: Vec<Vec<u8>>,
}

impl FecSender {
    /// Creates a sender with `k` data + `r` parity shards per group.
    pub fn new(k: usize, r: usize) -> Result<Self, FecError> {
        Ok(FecSender { code: ErasureCode::new(k, r)?, group: 0, buf: Vec::with_capacity(k) })
    }

    /// Queues one data payload; returns the packets ready to transmit
    /// (the data packet itself, plus the whole group's parity when the
    /// group fills — "an efficient FEC sends the original packets first",
    /// §5.2).
    pub fn push(&mut self, payload: Vec<u8>) -> Result<Vec<FecPacket>, FecError> {
        let index = self.buf.len() as u8;
        let group = self.group;
        let mut out = vec![FecPacket { group, index, payload: payload.clone() }];
        self.buf.push(payload);
        if self.buf.len() == self.code.k() {
            let refs: Vec<&[u8]> = self.buf.iter().map(|p| p.as_slice()).collect();
            let parity = self.code.encode(&refs)?;
            for (i, p) in parity.into_iter().enumerate() {
                out.push(FecPacket {
                    group,
                    index: (self.code.k() + i) as u8,
                    payload: p,
                });
            }
            self.buf.clear();
            self.group += 1;
        }
        Ok(out)
    }

    /// Ends the stream: pads the open group with zero-filled shards so
    /// its parity can be computed, and returns the padding and parity
    /// packets. Without this, the receiver would close the final group
    /// incomplete and misreport the never-sent shards as losses.
    pub fn flush(&mut self) -> Result<Vec<FecPacket>, FecError> {
        if self.buf.is_empty() {
            return Ok(Vec::new());
        }
        let len = self.buf[0].len();
        let mut out = Vec::new();
        while !self.buf.is_empty() {
            let mut produced = self.push(vec![0u8; len])?;
            out.append(&mut produced);
        }
        Ok(out)
    }

    /// Data shards per group.
    pub fn k(&self) -> usize {
        self.code.k()
    }

    /// Parity shards per group.
    pub fn r(&self) -> usize {
        self.code.r()
    }
}

#[derive(Debug)]
struct GroupState {
    shards: Vec<Option<Vec<u8>>>,
    /// Arrival slot of the first packet (recovery-delay accounting).
    first_arrival: u64,
    data_seen: usize,
    total_seen: usize,
    done: bool,
}

/// Receiver statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// Data packets that arrived on their own.
    pub received: u64,
    /// Data packets reconstructed from parity.
    pub recovered: u64,
    /// Data packets lost beyond repair.
    pub unrecoverable: u64,
    /// Sum over recovered packets of (recovery slot − first-arrival
    /// slot) — divide by `recovered` for the mean recovery delay in
    /// packet slots.
    pub recovery_delay_slots: u64,
}

impl ReceiverStats {
    /// Residual loss rate after FEC.
    pub fn residual_loss(&self) -> f64 {
        let total = self.received + self.recovered + self.unrecoverable;
        if total == 0 {
            0.0
        } else {
            self.unrecoverable as f64 / total as f64
        }
    }

    /// Mean recovery delay in packet slots (0 when nothing recovered).
    pub fn mean_recovery_delay(&self) -> f64 {
        if self.recovered == 0 {
            0.0
        } else {
            self.recovery_delay_slots as f64 / self.recovered as f64
        }
    }
}

/// Reassembles FEC groups, recovering erased data shards when enough of
/// the group survives.
#[derive(Debug)]
pub struct FecReceiver {
    code: ErasureCode,
    groups: BTreeMap<u32, GroupState>,
    /// Groups older than this many groups behind the newest are closed.
    horizon: u32,
    newest: u32,
    slot: u64,
    stats: ReceiverStats,
}

impl FecReceiver {
    /// Creates a receiver for a (k, r) code; `horizon` controls how many
    /// groups stay open awaiting stragglers.
    pub fn new(k: usize, r: usize, horizon: u32) -> Result<Self, FecError> {
        Ok(FecReceiver {
            code: ErasureCode::new(k, r)?,
            groups: BTreeMap::new(),
            horizon: horizon.max(1),
            newest: 0,
            slot: 0,
            stats: ReceiverStats::default(),
        })
    }

    /// Ingests one packet from the network; call once per *transmit slot*
    /// even for losses (pass `None`) so delay accounting stays aligned.
    pub fn on_slot(&mut self, pkt: Option<FecPacket>) {
        self.slot += 1;
        if let Some(pkt) = pkt {
            self.ingest(pkt);
        }
        // Close groups that fell behind the horizon.
        let cutoff = self.newest.saturating_sub(self.horizon);
        let stale: Vec<u32> = self.groups.range(..cutoff).map(|(&g, _)| g).collect();
        for g in stale {
            self.close(g);
        }
    }

    fn ingest(&mut self, pkt: FecPacket) {
        let k = self.code.k();
        let nshards = k + self.code.r();
        if (pkt.index as usize) >= nshards {
            return; // corrupt index; drop
        }
        self.newest = self.newest.max(pkt.group);
        let slot = self.slot;
        let entry = self.groups.entry(pkt.group).or_insert_with(|| GroupState {
            shards: vec![None; nshards],
            first_arrival: slot,
            data_seen: 0,
            total_seen: 0,
            done: false,
        });
        if entry.done || entry.shards[pkt.index as usize].is_some() {
            return;
        }
        if (pkt.index as usize) < k {
            entry.data_seen += 1;
            self.stats.received += 1;
        }
        entry.total_seen += 1;
        entry.shards[pkt.index as usize] = Some(pkt.payload);
        if entry.total_seen >= k && entry.data_seen < k {
            // Enough shards to reconstruct the missing data.
            let missing = k - entry.data_seen;
            if self.code.decode(&mut entry.shards).is_ok() {
                entry.data_seen = k;
                entry.done = true;
                self.stats.recovered += missing as u64;
                self.stats.recovery_delay_slots +=
                    missing as u64 * (slot - entry.first_arrival);
            }
        } else if entry.data_seen == k {
            entry.done = true;
        }
    }

    fn close(&mut self, group: u32) {
        if let Some(g) = self.groups.remove(&group) {
            if !g.done {
                let k = self.code.k();
                self.stats.unrecoverable += (k - g.data_seen) as u64;
            }
        }
    }

    /// Closes all open groups and returns the final statistics.
    pub fn finish(mut self) -> ReceiverStats {
        let open: Vec<u32> = self.groups.keys().copied().collect();
        for g in open {
            self.close(g);
        }
        self.stats
    }

    /// Statistics so far (open groups not yet counted).
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(i: usize) -> Vec<u8> {
        vec![i as u8; 8]
    }

    /// Runs `n` data packets through sender → lossy channel → receiver.
    fn run(k: usize, r: usize, n: usize, drop: impl Fn(usize) -> bool) -> ReceiverStats {
        let mut tx = FecSender::new(k, r).unwrap();
        let mut rx = FecReceiver::new(k, r, 4).unwrap();
        let mut slot = 0usize;
        for i in 0..n {
            for pkt in tx.push(payload(i)).unwrap() {
                if drop(slot) {
                    rx.on_slot(None);
                } else {
                    rx.on_slot(Some(pkt));
                }
                slot += 1;
            }
        }
        rx.finish()
    }

    #[test]
    fn clean_channel_delivers_everything() {
        let s = run(5, 1, 100, |_| false);
        assert_eq!(s.received, 100);
        assert_eq!(s.recovered, 0);
        assert_eq!(s.unrecoverable, 0);
        assert_eq!(s.residual_loss(), 0.0);
    }

    #[test]
    fn single_loss_per_group_is_repaired() {
        // Drop exactly one data slot per 6-slot group (5 data + 1 parity).
        let s = run(5, 1, 100, |slot| slot % 6 == 2);
        assert_eq!(s.unrecoverable, 0);
        assert_eq!(s.recovered, 20, "one repair per group");
        assert!(s.mean_recovery_delay() > 0.0);
    }

    #[test]
    fn burst_overwhelms_unprotected_group() {
        // Burst of 3 consecutive losses each group; (5,1) cannot repair.
        let s = run(5, 1, 100, |slot| slot % 6 < 3);
        assert!(s.unrecoverable > 0);
        assert!(s.residual_loss() > 0.2);
    }

    #[test]
    fn stronger_code_survives_burst() {
        // Same burst, (5,3): three losses per 8-slot group are repairable.
        let s = run(5, 3, 100, |slot| slot % 8 < 3);
        assert_eq!(s.unrecoverable, 0, "residual={}", s.residual_loss());
    }

    #[test]
    fn parity_loss_is_harmless_when_data_arrives() {
        // Drop only parity slots (index 5 of each group).
        let s = run(5, 1, 50, |slot| slot % 6 == 5);
        assert_eq!(s.received, 50);
        assert_eq!(s.unrecoverable, 0);
        assert_eq!(s.recovered, 0);
    }

    #[test]
    fn recovered_payloads_match() {
        let k = 4;
        let r = 2;
        let mut tx = FecSender::new(k, r).unwrap();
        let mut rx = FecReceiver::new(k, r, 4).unwrap();
        let mut all = Vec::new();
        for i in 0..k {
            all.extend(tx.push(payload(100 + i)).unwrap());
        }
        // Deliver everything except data shard 1; capture recovery by
        // inspecting stats and then the next group flows cleanly.
        for pkt in all {
            if pkt.index == 1 {
                rx.on_slot(None);
            } else {
                rx.on_slot(Some(pkt));
            }
        }
        let s = rx.stats();
        assert_eq!(s.recovered, 1);
        assert_eq!(s.received, 3);
    }

    #[test]
    fn duplicate_packets_are_idempotent() {
        let k = 3;
        let mut tx = FecSender::new(k, 1).unwrap();
        let mut rx = FecReceiver::new(k, 1, 4).unwrap();
        let mut pkts = Vec::new();
        for i in 0..k {
            pkts.extend(tx.push(payload(i)).unwrap());
        }
        for pkt in pkts.iter().chain(pkts.iter()) {
            rx.on_slot(Some(pkt.clone()));
        }
        let s = rx.finish();
        assert_eq!(s.received, 3);
        assert_eq!(s.unrecoverable, 0);
    }

    #[test]
    fn flush_completes_the_final_group() {
        let k = 5;
        let mut tx = FecSender::new(k, 1).unwrap();
        let mut rx = FecReceiver::new(k, 1, 4).unwrap();
        // 7 packets: one full group + 2 stragglers.
        let mut pkts = Vec::new();
        for i in 0..7 {
            pkts.extend(tx.push(payload(i)).unwrap());
        }
        pkts.extend(tx.flush().unwrap());
        // Padded group: 7 real + 3 pads + 2 parity = 12 packets total.
        assert_eq!(pkts.len(), 12);
        for p in pkts {
            rx.on_slot(Some(p));
        }
        let s = rx.finish();
        assert_eq!(s.unrecoverable, 0, "flush must close the group cleanly");
        assert_eq!(s.received, 10, "7 real + 3 pad data shards");
    }

    #[test]
    fn flush_on_group_boundary_is_empty() {
        let mut tx = FecSender::new(3, 1).unwrap();
        for i in 0..3 {
            tx.push(payload(i)).unwrap();
        }
        assert!(tx.flush().unwrap().is_empty());
    }

    #[test]
    fn corrupt_index_is_dropped() {
        let mut rx = FecReceiver::new(3, 1, 4).unwrap();
        rx.on_slot(Some(FecPacket { group: 0, index: 200, payload: payload(0) }));
        let s = rx.finish();
        assert_eq!(s.received, 0);
        assert_eq!(s.unrecoverable, 0);
    }
}
