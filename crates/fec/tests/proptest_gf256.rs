//! Property tests: GF(2⁸) is a field and the erasure code is linear.

use fec::gf256::{add, div, inv, mul, pow};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn addition_is_an_abelian_group(a: u8, b: u8, c: u8) {
        prop_assert_eq!(add(a, b), add(b, a));
        prop_assert_eq!(add(add(a, b), c), add(a, add(b, c)));
        prop_assert_eq!(add(a, 0), a);
        prop_assert_eq!(add(a, a), 0, "characteristic 2: every element is its own inverse");
    }

    #[test]
    fn multiplication_is_commutative_and_associative(a: u8, b: u8, c: u8) {
        prop_assert_eq!(mul(a, b), mul(b, a));
        prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
        prop_assert_eq!(mul(a, 1), a);
    }

    #[test]
    fn distributivity(a: u8, b: u8, c: u8) {
        prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
    }

    #[test]
    fn multiplicative_inverses(a in 1u8..=255) {
        prop_assert_eq!(mul(a, inv(a)), 1);
        prop_assert_eq!(div(mul(a, 7), a), 7);
    }

    #[test]
    fn no_zero_divisors(a in 1u8..=255, b in 1u8..=255) {
        prop_assert_ne!(mul(a, b), 0);
    }

    #[test]
    fn pow_is_repeated_multiplication(a: u8, n in 0u32..16) {
        let mut acc = 1u8;
        for _ in 0..n {
            acc = mul(acc, a);
        }
        prop_assert_eq!(pow(a, n), acc);
    }

    #[test]
    fn fermat_little_theorem(a in 1u8..=255) {
        prop_assert_eq!(pow(a, 255), 1, "a^(q-1) = 1 in GF(q)");
    }
}
