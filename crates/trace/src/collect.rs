//! The central measurement collector (§4.1, streaming form).
//!
//! Hosts feed send and receive events in (true-)time order. The collector
//! matches receives with sends by probe id, resolves each probe (one to
//! [`MAX_PROBE_LEGS`] redundant legs) once its receive window expires,
//! and applies the paper's host-failure rule: a host that stops sending
//! probes for more than `fail_gap` (90 s) is considered crashed, and
//! samples toward it during the gap are discarded rather than counted as
//! network loss.
//!
//! ## Hot-path layout
//!
//! Millions of probes per campaign flow through `on_send` → `on_recv` →
//! `advance`, so the matcher avoids the obvious `HashMap<u64,
//! PendingProbe>` + deadline `BinaryHeap` shape:
//!
//! * probe state lives in a **slab** (`Vec<Option<PendingProbe>>` plus a
//!   free list), so the per-probe bytes are reused and receives touch one
//!   contiguous allocation. Legs are an inline `[PendingLeg;
//!   MAX_PROBE_LEGS]` with a 2-bit state machine per slot instead of
//!   nested `Option`s — the 4-leg record is *smaller* than the old
//!   2-leg `[Option<PendingLeg>; 2]`, whose inner `Option<RecvEvent>`
//!   cost 40 niche-less bytes per leg;
//! * the id → slot index goes through a **64-bit Fx hash** ([`FxU64`])
//!   instead of SipHash — probe ids are already uniform random u64s, so
//!   a single multiply is enough;
//! * deadlines are `first_sent + receive_window` with a **constant**
//!   window over nondecreasing send times, so they are already monotone:
//!   a `VecDeque` **ring in insertion order** replaces the heap. Pairs
//!   sharing an exact deadline resolve in ascending id order — the same
//!   tie-break the old `BinaryHeap<Reverse<(SimTime, u64)>>` applied —
//!   so the outcome stream, and therefore every downstream f64
//!   accumulator bit and run fingerprint, is unchanged;
//! * [`Collector::drain_into`] swaps the caller's buffer with the
//!   internal one instead of allocating a fresh `Vec` per sweep.

use crate::record::{LegOutcome, PairOutcome, RecvEvent, SendEvent, MAX_PROBE_LEGS};
use netsim::{HostId, SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// An FxHash-style hasher for 64-bit probe ids: one XOR and one multiply
/// by a Fibonacci-style odd constant. Probe ids are uniform random u64s
/// (and the slab index map is the innermost lookup of the collector), so
/// SipHash's flooding resistance buys nothing here but costs ~2× on
/// `on_send`/`on_recv`.
#[derive(Default)]
pub struct FxU64(u64);

impl Hasher for FxU64 {
    fn write(&mut self, bytes: &[u8]) {
        // Generic path for completeness; the map only keys u64s.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x517c_c1b7_2722_0a95);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

// detlint: allow(nondet-iter) — lookup-only id→slot index: outcome order
// comes from the slab + deadline ring (see `finish`), never from map
// iteration; the hasher is fixed-seed Fx, not RandomState, besides.
type FxMap<V> = HashMap<u64, V, BuildHasherDefault<FxU64>>;

/// A collector's aggregate counters in mergeable form.
///
/// A sharded experiment runs one [`Collector`] per workload slice; the
/// per-slice stats are summed in slice order into the run's totals.
/// Because every probe pair belongs to exactly one slice, the merged
/// numbers equal what a single collector fed the union of events would
/// have produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CollectorStats {
    /// Probe pairs resolved (each pair exactly once).
    pub resolved: u64,
    /// Pairs discarded by the §4.1 host-failure filter.
    pub discarded: u64,
    /// Receive events that arrived after their pair's window closed.
    pub late_receives: u64,
    /// Receive events that matched an open probe but referenced a leg
    /// that cannot exist (`leg >= MAX_PROBE_LEGS`) or was never sent.
    /// These used to be dropped silently; a corrupt host log now shows
    /// up here.
    pub malformed_receives: u64,
    /// Send events whose leg index was at or beyond [`MAX_PROBE_LEGS`] —
    /// impossible from the experiment driver (method specs validate
    /// their leg counts) and rejected at the wire for live traffic, so
    /// any count here means a corrupt host log.
    pub malformed_sends: u64,
    /// High-water mark of simultaneously open probe pairs — the
    /// collector's memory footprint is proportional to this, so it is
    /// the number to watch when scaling the mesh (`repro
    /// --scale-sweep`). Merges by `max`: a sharded campaign runs one
    /// collector per slice, and the campaign's occupancy is the worst
    /// slice's. Deliberately **excluded** from the run fingerprint,
    /// which folds resolved/discarded/late counts only.
    pub peak_pending: u64,
}

impl CollectorStats {
    /// Folds another collector's stats into this one.
    pub fn merge(&mut self, other: &CollectorStats) {
        self.resolved += other.resolved;
        self.discarded += other.discarded;
        self.late_receives += other.late_receives;
        self.malformed_receives += other.malformed_receives;
        self.malformed_sends += other.malformed_sends;
        self.peak_pending = self.peak_pending.max(other.peak_pending);
    }
}

/// Collector policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct CollectorConfig {
    /// How long after the first send a pair stays open for receives. The
    /// paper used one hour; simulated paths bound delay at a few seconds,
    /// so experiments typically shrink this to keep memory flat (the
    /// semantics are identical as long as it exceeds the maximum delay).
    pub receive_window: SimDuration,
    /// Send-gap beyond which a host counts as crashed (§4.1: 90 s).
    pub fail_gap: SimDuration,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            receive_window: SimDuration::from_secs(60),
            fail_gap: SimDuration::from_secs(90),
        }
    }
}

/// Per-leg state machine: a slot is untouched, sent, or sent+received.
/// Encoded as a plain byte (not nested `Option`s) so the inline leg
/// array stays compact and branch-predictable.
const LEG_UNSENT: u8 = 0;
const LEG_SENT: u8 = 1;
const LEG_RECEIVED: u8 = 2;

#[derive(Debug, Clone, Copy, Default)]
struct PendingLeg {
    route: u8,
    state: u8,
    sent_local_us: i64,
    recv_local_us: i64,
}

#[derive(Debug)]
struct PendingProbe {
    id: u64,
    method: u8,
    src: HostId,
    dst: HostId,
    first_sent: SimTime,
    legs: [PendingLeg; MAX_PROBE_LEGS],
}

#[derive(Debug, Clone, Default)]
struct HostActivity {
    last_send: Option<SimTime>,
    /// Silence gaps longer than `fail_gap`, as **open** intervals: the
    /// host provably sent a probe at both endpoints, so a probe stamped
    /// exactly on either boundary instant met a live host.
    down: Vec<(SimTime, SimTime)>,
}

impl HostActivity {
    fn on_send(&mut self, at: SimTime, fail_gap: SimDuration) {
        if let Some(prev) = self.last_send {
            if at <= prev {
                // A straggler from an imperfectly merged log (or a
                // same-instant second leg): the host provably sent at
                // `prev`, so an earlier send adds no liveness news —
                // and must not rewind `last_send` into fabricating a
                // spurious gap.
                return;
            }
            if at.since(prev) > fail_gap {
                self.down.push((prev, at));
            }
        }
        self.last_send = Some(at);
    }

    /// Was the host silent around `t` (either strictly inside a recorded
    /// gap, or silent ever since more than `fail_gap` before `now`)?
    fn was_down(&self, t: SimTime, now: SimTime, fail_gap: SimDuration) -> bool {
        match self.last_send {
            None => true, // never heard from this host at all
            Some(last) => {
                if t > last && now.since(last) > fail_gap {
                    return true; // open-ended silence
                }
                // Binary search over gaps (sorted by construction). Both
                // comparisons are strict: a gap's endpoints are instants
                // the host *did* send, so they don't count as down.
                let idx = self.down.partition_point(|&(_, end)| end <= t);
                idx < self.down.len() && self.down[idx].0 < t
            }
        }
    }
}

/// Slot indices are `u32`: the pending set is bounded by sends within
/// one receive window, far below 4 billion.
type SlotIdx = u32;

/// Streaming collector; see module docs.
pub struct Collector {
    cfg: CollectorConfig,
    /// Probe id → slab slot of the open probe.
    index: FxMap<SlotIdx>,
    /// Probe slab; freed slots are recycled via `free`.
    slots: Vec<Option<PendingProbe>>,
    free: Vec<SlotIdx>,
    /// Expiry ring, nondecreasing in deadline (constant receive window
    /// over time-ordered sends). Replaces the old deadline heap.
    deadlines: VecDeque<(SimTime, SlotIdx)>,
    /// Scratch for resolving one equal-deadline group in id order.
    batch: Vec<(u64, SlotIdx)>,
    activity: Vec<HostActivity>,
    finalized: Vec<PairOutcome>,
    discarded: u64,
    resolved: u64,
    late_receives: u64,
    malformed_receives: u64,
    malformed_sends: u64,
    peak_pending: u64,
}

impl Collector {
    /// Creates a collector for a mesh of `n` hosts.
    pub fn new(n: usize, cfg: CollectorConfig) -> Self {
        Collector {
            cfg,
            index: FxMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            deadlines: VecDeque::new(),
            batch: Vec::new(),
            activity: vec![HostActivity::default(); n],
            finalized: Vec::new(),
            discarded: 0,
            resolved: 0,
            late_receives: 0,
            malformed_receives: 0,
            malformed_sends: 0,
            peak_pending: 0,
        }
    }

    /// Ingests a send event. Events must arrive in nondecreasing time
    /// order (the natural order of a simulation or a merged log); rare
    /// stragglers from imperfectly merged logs are tolerated and slotted
    /// into deadline order.
    pub fn on_send(&mut self, e: SendEvent) {
        self.activity[e.src.idx()].on_send(e.sent, self.cfg.fail_gap);
        if e.leg as usize >= MAX_PROBE_LEGS {
            // A leg the wire format cannot carry: only a corrupt host
            // log can produce it. Count it loudly (the liveness signal
            // above still stands — the host did send *something*).
            self.malformed_sends += 1;
            return;
        }
        let idx = *self.index.entry(e.id).or_insert_with(|| {
            let probe = PendingProbe {
                id: e.id,
                method: e.method,
                src: e.src,
                dst: e.dst,
                first_sent: e.sent,
                legs: [PendingLeg::default(); MAX_PROBE_LEGS],
            };
            let idx = match self.free.pop() {
                Some(i) => {
                    self.slots[i as usize] = Some(probe);
                    i
                }
                None => {
                    self.slots.push(Some(probe));
                    (self.slots.len() - 1) as SlotIdx
                }
            };
            let deadline = e.sent + self.cfg.receive_window;
            match self.deadlines.back() {
                // Straggler: walk to its sorted position (position within
                // an equal-deadline run is irrelevant — groups resolve in
                // id order).
                Some(&(last, _)) if last > deadline => {
                    let at = self.deadlines.partition_point(|&(d, _)| d <= deadline);
                    self.deadlines.insert(at, (deadline, idx));
                }
                _ => self.deadlines.push_back((deadline, idx)),
            }
            idx
        });
        let probe = self.slots[idx as usize].as_mut().expect("indexed slot is occupied");
        probe.legs[e.leg as usize] =
            PendingLeg { route: e.route, state: LEG_SENT, sent_local_us: e.sent_local_us, recv_local_us: 0 };
        // The pending set only grows in `on_send`, so sampling here
        // captures the exact high-water mark.
        self.peak_pending = self.peak_pending.max(self.index.len() as u64);
    }

    /// Ingests a receive event.
    pub fn on_recv(&mut self, e: RecvEvent) {
        let Some(&idx) = self.index.get(&e.id) else {
            self.late_receives += 1;
            return;
        };
        let probe = self.slots[idx as usize].as_mut().expect("indexed slot is occupied");
        match probe.legs.get_mut(e.leg as usize) {
            Some(leg) if leg.state != LEG_UNSENT => {
                leg.state = LEG_RECEIVED;
                leg.recv_local_us = e.recv_local_us;
            }
            // A receive for a leg that can't exist or was never sent:
            // count it instead of losing it invisibly.
            _ => self.malformed_receives += 1,
        }
    }

    /// Resolves every pair whose receive window has expired by `now`.
    pub fn advance(&mut self, now: SimTime) {
        while let Some(&(deadline, _)) = self.deadlines.front() {
            if deadline > now {
                break;
            }
            self.resolve_deadline_group(deadline, now);
        }
    }

    /// Pops every ring entry sharing `deadline` and resolves the group in
    /// ascending id order — exactly the pop order of the old
    /// `BinaryHeap<Reverse<(SimTime, u64)>>`, so outcome-stream order
    /// (and everything fingerprinted downstream) is preserved.
    fn resolve_deadline_group(&mut self, deadline: SimTime, now: SimTime) {
        let mut batch = std::mem::take(&mut self.batch);
        batch.clear();
        while let Some(&(d, idx)) = self.deadlines.front() {
            if d != deadline {
                break;
            }
            self.deadlines.pop_front();
            let id = self.slots[idx as usize].as_ref().expect("ring slot is occupied").id;
            batch.push((id, idx));
        }
        if batch.len() > 1 {
            batch.sort_unstable_by_key(|&(id, _)| id);
        }
        for &(id, idx) in &batch {
            self.index.remove(&id);
            let pair = self.slots[idx as usize].take().expect("ring slot is occupied");
            self.free.push(idx);
            let outcome = self.resolve(pair, now);
            self.finalized.push(outcome);
        }
        self.batch = batch;
    }

    fn resolve(&mut self, p: PendingProbe, now: SimTime) -> PairOutcome {
        self.resolved += 1;
        let mk = |l: PendingLeg| match l.state {
            LEG_UNSENT => None,
            state => Some(LegOutcome {
                route: l.route,
                lost: state != LEG_RECEIVED,
                one_way_us: (state == LEG_RECEIVED).then(|| l.recv_local_us - l.sent_local_us),
            }),
        };
        // §4.1 host-failure filter: if the destination host's measurement
        // process was silent around the send instant, the sample tells us
        // about the host, not the network — discard it.
        let discarded = self.activity[p.dst.idx()].was_down(p.first_sent, now, self.cfg.fail_gap);
        if discarded {
            self.discarded += 1;
        }
        PairOutcome::from_legs(p.id, p.method, p.src, p.dst, p.first_sent, p.legs.map(mk), discarded)
    }

    /// Takes all outcomes finalized so far.
    ///
    /// Allocates a fresh vector per call; the experiment hot path uses
    /// [`drain_into`](Self::drain_into) instead.
    pub fn drain(&mut self) -> Vec<PairOutcome> {
        std::mem::take(&mut self.finalized)
    }

    /// Moves all outcomes finalized so far into `out` (cleared first) by
    /// swapping buffers, so a sweep loop that hands the same vector back
    /// allocates nothing in steady state.
    pub fn drain_into(&mut self, out: &mut Vec<PairOutcome>) {
        out.clear();
        std::mem::swap(&mut self.finalized, out);
    }

    /// Flushes every pending pair regardless of window (end of run).
    ///
    /// Pairs resolve in `(deadline, id)` order via the expiry ring — the
    /// same order [`advance`](Self::advance) would have used — so the
    /// end-of-run outcome stream is identical across runs and processes
    /// (this used to drain a `HashMap` in iteration order, which is not).
    pub fn finish(&mut self, now: SimTime) {
        while let Some(&(deadline, _)) = self.deadlines.front() {
            self.resolve_deadline_group(deadline, now);
        }
        debug_assert!(self.index.is_empty(), "every pending pair is on the ring");
    }

    /// (resolved, discarded-by-host-filter, receives-after-window).
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.resolved, self.discarded, self.late_receives)
    }

    /// The aggregate counters in mergeable struct form.
    pub fn stats(&self) -> CollectorStats {
        CollectorStats {
            resolved: self.resolved,
            discarded: self.discarded,
            late_receives: self.late_receives,
            malformed_receives: self.malformed_receives,
            malformed_sends: self.malformed_sends,
            peak_pending: self.peak_pending,
        }
    }

    /// Number of still-open pairs (memory watermark).
    pub fn pending_len(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CollectorConfig {
        CollectorConfig {
            receive_window: SimDuration::from_secs(10),
            fail_gap: SimDuration::from_secs(90),
        }
    }

    fn send(id: u64, leg: u8, src: u16, dst: u16, t: u64) -> SendEvent {
        SendEvent {
            id,
            method: 1,
            leg,
            src: HostId(src),
            dst: HostId(dst),
            route: 0,
            sent: SimTime::from_secs(t),
            sent_local_us: (t * 1_000_000) as i64,
        }
    }

    fn recv(id: u64, leg: u8, t_us: u64) -> RecvEvent {
        RecvEvent {
            id,
            leg,
            recv: SimTime::from_micros(t_us),
            recv_local_us: t_us as i64,
        }
    }

    /// Keeps both endpoints "alive" by having them send their own probes.
    fn heartbeat(c: &mut Collector, hosts: &[u16], t: u64) {
        for (i, &h) in hosts.iter().enumerate() {
            c.on_send(send(1_000_000 + t * 100 + i as u64, 0, h, hosts[(i + 1) % hosts.len()], t));
        }
    }

    #[test]
    fn received_pair_resolves_with_latency() {
        let mut c = Collector::new(4, cfg());
        for t in 0..40 {
            heartbeat(&mut c, &[0, 1], t);
        }
        c.on_send(send(42, 0, 0, 1, 5));
        c.on_recv(recv(42, 0, 5_030_000)); // 30 ms later
        c.advance(SimTime::from_secs(120));
        let outs = c.drain();
        let o = outs.iter().find(|o| o.id == 42).unwrap();
        assert!(!o.discarded);
        let leg = o.leg(0).unwrap();
        assert!(!leg.lost);
        assert_eq!(leg.one_way_us, Some(30_000));
        assert!(!o.all_lost());
    }

    #[test]
    fn unanswered_pair_resolves_lost() {
        let mut c = Collector::new(4, cfg());
        for t in 0..40 {
            heartbeat(&mut c, &[0, 1], t);
        }
        c.on_send(send(43, 0, 0, 1, 5));
        c.advance(SimTime::from_secs(120));
        let outs = c.drain();
        let o = outs.iter().find(|o| o.id == 43).unwrap();
        assert!(o.leg(0).unwrap().lost);
        assert!(o.all_lost());
        assert!(!o.discarded, "dst was alive; this is real network loss");
    }

    #[test]
    fn two_leg_pairs_pair_up() {
        let mut c = Collector::new(4, cfg());
        for t in 0..40 {
            heartbeat(&mut c, &[0, 1], t);
        }
        c.on_send(send(44, 0, 0, 1, 5));
        c.on_send(send(44, 1, 0, 1, 5));
        c.on_recv(recv(44, 1, 5_045_000));
        c.advance(SimTime::from_secs(120));
        let outs = c.drain();
        let o = outs.iter().find(|o| o.id == 44).unwrap();
        assert_eq!(o.leg_count(), 2);
        assert!(o.leg(0).unwrap().lost);
        assert!(!o.leg(1).unwrap().lost);
        assert!(!o.all_lost(), "one copy arrived — mesh routing saved the pair");
        assert_eq!(o.best_one_way_us(), Some(45_000));
    }

    #[test]
    fn receive_after_window_is_too_late() {
        let mut c = Collector::new(4, cfg());
        for t in 0..40 {
            heartbeat(&mut c, &[0, 1], t);
        }
        c.on_send(send(45, 0, 0, 1, 5));
        c.advance(SimTime::from_secs(30)); // window (10 s) long expired
        c.on_recv(recv(45, 0, 16_000_000));
        let outs = c.drain();
        let o = outs.iter().find(|o| o.id == 45).unwrap();
        assert!(o.leg(0).unwrap().lost, "late receive must not resurrect the pair");
        assert_eq!(c.counters().2, 1, "late receive counted");
    }

    #[test]
    fn malformed_receives_are_counted_not_dropped() {
        let mut c = Collector::new(4, cfg());
        heartbeat(&mut c, &[0, 1], 0);
        c.on_send(send(50, 0, 0, 1, 1)); // only leg 0 exists
        // Leg index out of range entirely:
        c.on_recv(recv(50, 2, 1_010_000));
        // Leg slot never sent:
        c.on_recv(recv(50, 1, 1_020_000));
        // A well-formed receive still lands:
        c.on_recv(recv(50, 0, 1_030_000));
        assert_eq!(c.stats().malformed_receives, 2);
        assert_eq!(c.counters().2, 0, "malformed is not 'late'");
        c.advance(SimTime::from_secs(60));
        let outs = c.drain();
        let o = outs.iter().find(|o| o.id == 50).unwrap();
        assert!(!o.leg(0).unwrap().lost, "the valid receive survived");
        // And the counter merges like the others.
        let mut total = CollectorStats::default();
        total.merge(&c.stats());
        assert_eq!(total.malformed_receives, 2);
    }

    #[test]
    fn four_leg_probe_resolves_all_legs() {
        let mut c = Collector::new(4, cfg());
        for t in 0..40 {
            heartbeat(&mut c, &[0, 1], t);
        }
        for leg in 0..MAX_PROBE_LEGS as u8 {
            let mut e = send(51, leg, 0, 1, 5);
            e.route = leg;
            c.on_send(e);
        }
        // Legs 1 and 3 arrive, 0 and 2 are lost.
        c.on_recv(recv(51, 1, 5_030_000));
        c.on_recv(recv(51, 3, 5_055_000));
        c.advance(SimTime::from_secs(120));
        let outs = c.drain();
        let o = outs.iter().find(|o| o.id == 51).unwrap();
        assert_eq!(o.leg_count(), MAX_PROBE_LEGS);
        assert!(o.leg(0).unwrap().lost && o.leg(2).unwrap().lost);
        assert!(!o.leg(1).unwrap().lost && !o.leg(3).unwrap().lost);
        assert_eq!(o.leg(3).unwrap().route, 3, "per-leg route tags survive");
        assert!(!o.all_lost());
        assert!(o.prefix_all_lost(1) && !o.prefix_all_lost(2));
        assert_eq!(o.best_one_way_us(), Some(30_000));
        assert_eq!(c.stats().malformed_receives, 0);
    }

    #[test]
    fn out_of_range_send_leg_is_counted_not_recorded() {
        let mut c = Collector::new(4, cfg());
        heartbeat(&mut c, &[0, 1], 0);
        c.on_send(send(52, MAX_PROBE_LEGS as u8, 0, 1, 1));
        assert_eq!(c.stats().malformed_sends, 1);
        assert_eq!(c.pending_len(), 2, "only the heartbeats are pending");
        // The stat merges like the others.
        let mut total = CollectorStats::default();
        total.merge(&c.stats());
        assert_eq!(total.malformed_sends, 1);
    }

    #[test]
    fn same_deadline_pairs_resolve_in_id_order() {
        // Several pairs sent at the same instant share a deadline; the
        // ring must reproduce the old heap's (deadline, id) pop order.
        let mut c = Collector::new(4, cfg());
        heartbeat(&mut c, &[0, 1], 0);
        for &id in &[907, 13, 402, 555, 1] {
            c.on_send(send(id, 0, 0, 1, 3));
        }
        c.advance(SimTime::from_secs(60));
        let ids: Vec<u64> = c.drain().iter().map(|o| o.id).filter(|&id| id < 1_000).collect();
        assert_eq!(ids, vec![1, 13, 402, 555, 907]);
    }

    #[test]
    fn host_failure_gap_discards_samples() {
        let mut c = Collector::new(4, cfg());
        // Host 1 is chatty until t=100, silent until t=400, then resumes.
        for t in 0..100 {
            c.on_send(send(2_000 + t, 0, 1, 2, t));
        }
        for t in 400..420 {
            c.on_send(send(3_000 + t, 0, 1, 2, t));
        }
        // Host 0 sends to host 1 during the silence: that loss is a host
        // failure, not a network failure.
        c.on_send(send(77, 0, 0, 1, 200));
        // And a control probe while 1 was alive:
        c.on_send(send(78, 0, 0, 1, 50));
        c.on_recv(recv(78, 0, 50_020_000));
        // Boundary probes: host 1 provably sent at t=99 (its last probe
        // before the gap) and at t=400 (its first after). A sample
        // stamped exactly on either endpoint met a live host — the gap
        // is open at both ends.
        c.on_send(send(79, 0, 0, 1, 99));
        c.on_send(send(80, 0, 0, 1, 400));
        c.advance(SimTime::from_secs(1_000));
        let outs = c.drain();
        assert!(outs.iter().find(|o| o.id == 77).unwrap().discarded);
        assert!(!outs.iter().find(|o| o.id == 78).unwrap().discarded);
        assert!(
            !outs.iter().find(|o| o.id == 79).unwrap().discarded,
            "gap-start instant: the host sent a probe then, it was up"
        );
        assert!(
            !outs.iter().find(|o| o.id == 80).unwrap().discarded,
            "gap-end instant: the host sent a probe then, it was up"
        );
    }

    #[test]
    fn straggler_send_does_not_fabricate_a_gap() {
        let mut c = Collector::new(4, cfg());
        // Host 1 is alive throughout, but a straggler from a merged log
        // replays an old send out of order.
        c.on_send(send(6_000, 0, 1, 2, 200));
        c.on_send(send(6_001, 0, 1, 2, 50)); // straggler, must not rewind
        c.on_send(send(6_002, 0, 1, 2, 210));
        // A probe toward host 1 inside the would-be (50, 210) "gap":
        c.on_send(send(88, 0, 0, 1, 205));
        c.advance(SimTime::from_secs(1_000));
        let outs = c.drain();
        assert!(
            !outs.iter().find(|o| o.id == 88).unwrap().discarded,
            "host 1 sent at 200 and 210; the straggler must not create a gap"
        );
    }

    #[test]
    fn open_ended_silence_discards() {
        let mut c = Collector::new(4, cfg());
        for t in 0..50 {
            c.on_send(send(5_000 + t, 0, 1, 2, t));
        }
        // Host 1 dies at t=50 and never comes back; probe at t=200.
        c.on_send(send(99, 0, 0, 1, 200));
        c.advance(SimTime::from_secs(500));
        let outs = c.drain();
        assert!(outs.iter().find(|o| o.id == 99).unwrap().discarded);
    }

    #[test]
    fn finish_flushes_pending() {
        let mut c = Collector::new(4, cfg());
        heartbeat(&mut c, &[0, 1], 0);
        c.on_send(send(46, 0, 0, 1, 5));
        assert!(c.pending_len() > 0);
        c.finish(SimTime::from_secs(6));
        assert_eq!(c.pending_len(), 0);
        assert!(c.drain().iter().any(|o| o.id == 46));
    }

    /// Regression for the nondeterministic `finish`: it used to walk
    /// `HashMap::keys()`, whose order changes between collectors (and
    /// between processes), so two identical runs could emit end-of-run
    /// outcomes in different orders. Resolution now walks the expiry
    /// ring, so identical inputs give identical outcome sequences.
    #[test]
    fn finish_order_is_deterministic_across_runs() {
        let run = || {
            let mut c = Collector::new(4, cfg());
            // Many pairs, still pending at finish; several share a send
            // instant (and thus a deadline) so tie order is exercised.
            for i in 0..200u64 {
                c.on_send(send(10_000 + (i * 7_919) % 100_000, 0, 0, 1, 1 + i / 8));
            }
            c.finish(SimTime::from_secs(30));
            c.drain().iter().map(|o| o.id).collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), 200);
        assert_eq!(
            a.iter().copied().collect::<std::collections::BTreeSet<_>>().len(),
            200,
            "every pair resolves exactly once"
        );
        assert_eq!(a, b, "identical runs must drain identical sequences");
        // And the order is the documented one — (deadline, id): within
        // each 8-pair same-instant group the ids are ascending.
        for group in a.chunks(8) {
            assert!(group.windows(2).all(|w| w[0] < w[1]), "group not id-sorted: {group:?}");
        }
    }

    #[test]
    fn drain_into_reuses_the_buffer() {
        let mut c = Collector::new(4, cfg());
        let mut buf = Vec::new();
        for round in 0..3u64 {
            heartbeat(&mut c, &[0, 1], round * 100);
            c.on_send(send(60 + round, 0, 0, 1, round * 100));
            c.advance(SimTime::from_secs(round * 100 + 90));
            c.drain_into(&mut buf);
            assert!(buf.iter().any(|o| o.id == 60 + round));
        }
        let cap = buf.capacity();
        heartbeat(&mut c, &[0, 1], 300);
        c.advance(SimTime::from_secs(390));
        c.drain_into(&mut buf);
        assert!(buf.capacity() >= 1, "buffer stays usable");
        assert!(cap > 0);
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut c = Collector::new(4, cfg());
        for wave in 0..5u64 {
            let t = wave * 100;
            for i in 0..50u64 {
                c.on_send(send(wave * 1_000 + i, 0, 0, 1, t));
            }
            c.advance(SimTime::from_secs(t + 90));
            c.drain();
        }
        assert!(
            c.slots.len() <= 50,
            "slab must recycle freed slots, got {} for 50 concurrent pairs",
            c.slots.len()
        );
    }

    #[test]
    fn peak_pending_is_a_high_water_mark_and_merges_by_max() {
        let mut c = Collector::new(4, cfg());
        heartbeat(&mut c, &[0, 1], 0); // 2 pending
        for i in 0..10u64 {
            c.on_send(send(100 + i, 0, 0, 1, 1));
        }
        assert_eq!(c.stats().peak_pending, 12);
        c.advance(SimTime::from_secs(60));
        assert_eq!(c.pending_len(), 0, "everything resolved");
        assert_eq!(c.stats().peak_pending, 12, "the mark survives the drain");
        // A second leg on an open pair opens nothing new.
        heartbeat(&mut c, &[0, 1], 70);
        c.on_send(send(200, 0, 0, 1, 70));
        c.on_send(send(200, 1, 0, 1, 70));
        assert_eq!(c.stats().peak_pending, 12, "3 open pairs < the old mark");
        // Slices merge occupancy by max (concurrent memory), not sum.
        let mut total = CollectorStats { peak_pending: 5, ..Default::default() };
        total.merge(&c.stats());
        assert_eq!(total.peak_pending, 12);
        let mut total = CollectorStats { peak_pending: 40, ..Default::default() };
        total.merge(&c.stats());
        assert_eq!(total.peak_pending, 40);
    }

    #[test]
    fn negative_one_way_survives_clock_skew() {
        let mut c = Collector::new(4, cfg());
        for t in 0..40 {
            heartbeat(&mut c, &[0, 1], t);
        }
        let mut e = send(47, 0, 0, 1, 5);
        e.sent_local_us = 5_000_000;
        c.on_send(e);
        // Receiver clock is behind: local receive stamp earlier than send.
        c.on_recv(RecvEvent {
            id: 47,
            leg: 0,
            recv: SimTime::from_micros(5_030_000),
            recv_local_us: 4_990_000,
        });
        c.advance(SimTime::from_secs(120));
        let outs = c.drain();
        let leg = outs.iter().find(|o| o.id == 47).unwrap().leg(0).unwrap();
        assert_eq!(leg.one_way_us, Some(-10_000));
    }
}
