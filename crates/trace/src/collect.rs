//! The central measurement collector (§4.1, streaming form).
//!
//! Hosts feed send and receive events in (true-)time order. The collector
//! pairs receives with sends by probe id, resolves each probe pair once
//! its receive window expires, and applies the paper's host-failure rule:
//! a host that stops sending probes for more than `fail_gap` (90 s) is
//! considered crashed, and samples toward it during the gap are discarded
//! rather than counted as network loss.

use crate::record::{LegOutcome, PairOutcome, RecvEvent, SendEvent};
use netsim::{HostId, SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A collector's aggregate counters in mergeable form.
///
/// A sharded experiment runs one [`Collector`] per workload slice; the
/// per-slice stats are summed in slice order into the run's totals.
/// Because every probe pair belongs to exactly one slice, the merged
/// numbers equal what a single collector fed the union of events would
/// have produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Probe pairs resolved (each pair exactly once).
    pub resolved: u64,
    /// Pairs discarded by the §4.1 host-failure filter.
    pub discarded: u64,
    /// Receive events that arrived after their pair's window closed.
    pub late_receives: u64,
}

impl CollectorStats {
    /// Folds another collector's stats into this one.
    pub fn merge(&mut self, other: &CollectorStats) {
        self.resolved += other.resolved;
        self.discarded += other.discarded;
        self.late_receives += other.late_receives;
    }
}

/// Collector policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct CollectorConfig {
    /// How long after the first send a pair stays open for receives. The
    /// paper used one hour; simulated paths bound delay at a few seconds,
    /// so experiments typically shrink this to keep memory flat (the
    /// semantics are identical as long as it exceeds the maximum delay).
    pub receive_window: SimDuration,
    /// Send-gap beyond which a host counts as crashed (§4.1: 90 s).
    pub fail_gap: SimDuration,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            receive_window: SimDuration::from_secs(60),
            fail_gap: SimDuration::from_secs(90),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingLeg {
    route: u8,
    sent_local_us: i64,
    recv: Option<RecvEvent>,
}

#[derive(Debug)]
struct PendingPair {
    method: u8,
    src: HostId,
    dst: HostId,
    first_sent: SimTime,
    legs: [Option<PendingLeg>; 2],
}

#[derive(Debug, Clone, Default)]
struct HostActivity {
    last_send: Option<SimTime>,
    /// Closed intervals during which the host was silent beyond the gap.
    down: Vec<(SimTime, SimTime)>,
}

impl HostActivity {
    fn on_send(&mut self, at: SimTime, fail_gap: SimDuration) {
        if let Some(prev) = self.last_send {
            if at.since(prev) > fail_gap {
                self.down.push((prev, at));
            }
        }
        self.last_send = Some(at);
    }

    /// Was the host silent around `t` (either inside a recorded gap, or
    /// silent ever since more than `fail_gap` before `now`)?
    fn was_down(&self, t: SimTime, now: SimTime, fail_gap: SimDuration) -> bool {
        match self.last_send {
            None => true, // never heard from this host at all
            Some(last) => {
                if t > last && now.since(last) > fail_gap {
                    return true; // open-ended silence
                }
                // Binary search over closed gaps (sorted by construction).
                let idx = self.down.partition_point(|&(_, end)| end <= t);
                idx < self.down.len() && self.down[idx].0 <= t
            }
        }
    }
}

/// Streaming collector; see module docs.
pub struct Collector {
    cfg: CollectorConfig,
    pending: HashMap<u64, PendingPair>,
    deadlines: BinaryHeap<Reverse<(SimTime, u64)>>,
    activity: Vec<HostActivity>,
    finalized: Vec<PairOutcome>,
    discarded: u64,
    resolved: u64,
    late_receives: u64,
}

impl Collector {
    /// Creates a collector for a mesh of `n` hosts.
    pub fn new(n: usize, cfg: CollectorConfig) -> Self {
        Collector {
            cfg,
            pending: HashMap::new(),
            deadlines: BinaryHeap::new(),
            activity: vec![HostActivity::default(); n],
            finalized: Vec::new(),
            discarded: 0,
            resolved: 0,
            late_receives: 0,
        }
    }

    /// Ingests a send event. Events must arrive in nondecreasing time
    /// order per host (the natural order of a simulation or a merged log).
    pub fn on_send(&mut self, e: SendEvent) {
        self.activity[e.src.idx()].on_send(e.sent, self.cfg.fail_gap);
        let leg = PendingLeg { route: e.route, sent_local_us: e.sent_local_us, recv: None };
        let entry = self.pending.entry(e.id).or_insert_with(|| {
            self.deadlines.push(Reverse((e.sent + self.cfg.receive_window, e.id)));
            PendingPair {
                method: e.method,
                src: e.src,
                dst: e.dst,
                first_sent: e.sent,
                legs: [None, None],
            }
        });
        if (e.leg as usize) < 2 {
            entry.legs[e.leg as usize] = Some(leg);
        }
    }

    /// Ingests a receive event.
    pub fn on_recv(&mut self, e: RecvEvent) {
        let Some(p) = self.pending.get_mut(&e.id) else {
            self.late_receives += 1;
            return;
        };
        if let Some(Some(leg)) = p.legs.get_mut(e.leg as usize) {
            leg.recv = Some(e);
        }
    }

    /// Resolves every pair whose receive window has expired by `now`.
    pub fn advance(&mut self, now: SimTime) {
        while let Some(&Reverse((deadline, id))) = self.deadlines.peek() {
            if deadline > now {
                break;
            }
            self.deadlines.pop();
            let Some(p) = self.pending.remove(&id) else { continue };
            let outcome = self.resolve(id, p, now);
            self.finalized.push(outcome);
        }
    }

    fn resolve(&mut self, id: u64, p: PendingPair, now: SimTime) -> PairOutcome {
        self.resolved += 1;
        let mk = |leg: &Option<PendingLeg>| {
            leg.map(|l| LegOutcome {
                route: l.route,
                lost: l.recv.is_none(),
                one_way_us: l.recv.map(|r| r.recv_local_us - l.sent_local_us),
            })
        };
        // §4.1 host-failure filter: if the destination host's measurement
        // process was silent around the send instant, the sample tells us
        // about the host, not the network — discard it.
        let discarded = self.activity[p.dst.idx()].was_down(p.first_sent, now, self.cfg.fail_gap);
        if discarded {
            self.discarded += 1;
        }
        PairOutcome {
            id,
            method: p.method,
            src: p.src,
            dst: p.dst,
            sent: p.first_sent,
            legs: [mk(&p.legs[0]), mk(&p.legs[1])],
            discarded,
        }
    }

    /// Takes all outcomes finalized so far.
    pub fn drain(&mut self) -> Vec<PairOutcome> {
        std::mem::take(&mut self.finalized)
    }

    /// Flushes every pending pair regardless of window (end of run).
    pub fn finish(&mut self, now: SimTime) {
        let ids: Vec<u64> = self.pending.keys().copied().collect();
        for id in ids {
            if let Some(p) = self.pending.remove(&id) {
                let o = self.resolve(id, p, now);
                self.finalized.push(o);
            }
        }
        self.deadlines.clear();
    }

    /// (resolved, discarded-by-host-filter, receives-after-window).
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.resolved, self.discarded, self.late_receives)
    }

    /// The same counters in mergeable struct form.
    pub fn stats(&self) -> CollectorStats {
        CollectorStats {
            resolved: self.resolved,
            discarded: self.discarded,
            late_receives: self.late_receives,
        }
    }

    /// Number of still-open pairs (memory watermark).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CollectorConfig {
        CollectorConfig {
            receive_window: SimDuration::from_secs(10),
            fail_gap: SimDuration::from_secs(90),
        }
    }

    fn send(id: u64, leg: u8, src: u16, dst: u16, t: u64) -> SendEvent {
        SendEvent {
            id,
            method: 1,
            leg,
            src: HostId(src),
            dst: HostId(dst),
            route: 0,
            sent: SimTime::from_secs(t),
            sent_local_us: (t * 1_000_000) as i64,
        }
    }

    fn recv(id: u64, leg: u8, t_us: u64) -> RecvEvent {
        RecvEvent {
            id,
            leg,
            recv: SimTime::from_micros(t_us),
            recv_local_us: t_us as i64,
        }
    }

    /// Keeps both endpoints "alive" by having them send their own probes.
    fn heartbeat(c: &mut Collector, hosts: &[u16], t: u64) {
        for (i, &h) in hosts.iter().enumerate() {
            c.on_send(send(1_000_000 + t * 100 + i as u64, 0, h, hosts[(i + 1) % hosts.len()], t));
        }
    }

    #[test]
    fn received_pair_resolves_with_latency() {
        let mut c = Collector::new(4, cfg());
        for t in 0..40 {
            heartbeat(&mut c, &[0, 1], t);
        }
        c.on_send(send(42, 0, 0, 1, 5));
        c.on_recv(recv(42, 0, 5_030_000)); // 30 ms later
        c.advance(SimTime::from_secs(120));
        let outs = c.drain();
        let o = outs.iter().find(|o| o.id == 42).unwrap();
        assert!(!o.discarded);
        let leg = o.legs[0].unwrap();
        assert!(!leg.lost);
        assert_eq!(leg.one_way_us, Some(30_000));
        assert!(!o.all_lost());
    }

    #[test]
    fn unanswered_pair_resolves_lost() {
        let mut c = Collector::new(4, cfg());
        for t in 0..40 {
            heartbeat(&mut c, &[0, 1], t);
        }
        c.on_send(send(43, 0, 0, 1, 5));
        c.advance(SimTime::from_secs(120));
        let outs = c.drain();
        let o = outs.iter().find(|o| o.id == 43).unwrap();
        assert!(o.legs[0].unwrap().lost);
        assert!(o.all_lost());
        assert!(!o.discarded, "dst was alive; this is real network loss");
    }

    #[test]
    fn two_leg_pairs_pair_up() {
        let mut c = Collector::new(4, cfg());
        for t in 0..40 {
            heartbeat(&mut c, &[0, 1], t);
        }
        c.on_send(send(44, 0, 0, 1, 5));
        c.on_send(send(44, 1, 0, 1, 5));
        c.on_recv(recv(44, 1, 5_045_000));
        c.advance(SimTime::from_secs(120));
        let outs = c.drain();
        let o = outs.iter().find(|o| o.id == 44).unwrap();
        assert_eq!(o.leg_count(), 2);
        assert!(o.legs[0].unwrap().lost);
        assert!(!o.legs[1].unwrap().lost);
        assert!(!o.all_lost(), "one copy arrived — mesh routing saved the pair");
        assert_eq!(o.best_one_way_us(), Some(45_000));
    }

    #[test]
    fn receive_after_window_is_too_late() {
        let mut c = Collector::new(4, cfg());
        for t in 0..40 {
            heartbeat(&mut c, &[0, 1], t);
        }
        c.on_send(send(45, 0, 0, 1, 5));
        c.advance(SimTime::from_secs(30)); // window (10 s) long expired
        c.on_recv(recv(45, 0, 16_000_000));
        let outs = c.drain();
        let o = outs.iter().find(|o| o.id == 45).unwrap();
        assert!(o.legs[0].unwrap().lost, "late receive must not resurrect the pair");
        assert_eq!(c.counters().2, 1, "late receive counted");
    }

    #[test]
    fn host_failure_gap_discards_samples() {
        let mut c = Collector::new(4, cfg());
        // Host 1 is chatty until t=100, silent until t=400, then resumes.
        for t in 0..100 {
            c.on_send(send(2_000 + t, 0, 1, 2, t));
        }
        for t in 400..420 {
            c.on_send(send(3_000 + t, 0, 1, 2, t));
        }
        // Host 0 sends to host 1 during the silence: that loss is a host
        // failure, not a network failure.
        c.on_send(send(77, 0, 0, 1, 200));
        // And a control probe while 1 was alive:
        c.on_send(send(78, 0, 0, 1, 50));
        c.on_recv(recv(78, 0, 50_020_000));
        c.advance(SimTime::from_secs(1_000));
        let outs = c.drain();
        assert!(outs.iter().find(|o| o.id == 77).unwrap().discarded);
        assert!(!outs.iter().find(|o| o.id == 78).unwrap().discarded);
    }

    #[test]
    fn open_ended_silence_discards() {
        let mut c = Collector::new(4, cfg());
        for t in 0..50 {
            c.on_send(send(5_000 + t, 0, 1, 2, t));
        }
        // Host 1 dies at t=50 and never comes back; probe at t=200.
        c.on_send(send(99, 0, 0, 1, 200));
        c.advance(SimTime::from_secs(500));
        let outs = c.drain();
        assert!(outs.iter().find(|o| o.id == 99).unwrap().discarded);
    }

    #[test]
    fn finish_flushes_pending() {
        let mut c = Collector::new(4, cfg());
        heartbeat(&mut c, &[0, 1], 0);
        c.on_send(send(46, 0, 0, 1, 5));
        assert!(c.pending_len() > 0);
        c.finish(SimTime::from_secs(6));
        assert_eq!(c.pending_len(), 0);
        assert!(c.drain().iter().any(|o| o.id == 46));
    }

    #[test]
    fn negative_one_way_survives_clock_skew() {
        let mut c = Collector::new(4, cfg());
        for t in 0..40 {
            heartbeat(&mut c, &[0, 1], t);
        }
        let mut e = send(47, 0, 0, 1, 5);
        e.sent_local_us = 5_000_000;
        c.on_send(e);
        // Receiver clock is behind: local receive stamp earlier than send.
        c.on_recv(RecvEvent {
            id: 47,
            leg: 0,
            recv: SimTime::from_micros(5_030_000),
            recv_local_us: 4_990_000,
        });
        c.advance(SimTime::from_secs(120));
        let outs = c.drain();
        let leg = outs.iter().find(|o| o.id == 47).unwrap().legs[0].unwrap();
        assert_eq!(leg.one_way_us, Some(-10_000));
    }
}
