//! Measurement event and outcome records.

use netsim::{HostId, SimTime};
use serde::{Deserialize, Serialize};

/// Maximum redundant legs per probe, mirroring the wire format's cap
/// (`overlay::wire::MAX_PROBE_LEGS` — the crates are siblings, so the
/// value is duplicated here and pinned equal by a cross-crate test in
/// `mpath-core`). Probe records size their leg arrays to this bound.
pub const MAX_PROBE_LEGS: usize = 4;

/// A measurement packet leaving its origin host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SendEvent {
    /// Random 64-bit probe identifier, shared by every leg of a probe.
    pub id: u64,
    /// Method registry index.
    pub method: u8,
    /// Leg within the probe (`0..MAX_PROBE_LEGS`).
    pub leg: u8,
    /// Measured path source.
    pub src: HostId,
    /// Measured path destination.
    pub dst: HostId,
    /// Route kind tag (see `overlay::RouteTag`).
    pub route: u8,
    /// True (simulator) send instant.
    pub sent: SimTime,
    /// The origin host's local clock at transmission, microseconds.
    pub sent_local_us: i64,
}

/// A measurement packet arriving at its destination (or, for round-trip
/// datasets, its echo arriving back at the origin).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecvEvent {
    /// Echoed probe identifier.
    pub id: u64,
    /// Leg within the probe (`0..MAX_PROBE_LEGS`).
    pub leg: u8,
    /// True (simulator) receive instant.
    pub recv: SimTime,
    /// The receiving host's local clock, microseconds.
    pub recv_local_us: i64,
}

/// One host-log line (what hosts push to the central machine).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LogEvent {
    /// A send record.
    Send(SendEvent),
    /// A receive record.
    Recv(RecvEvent),
}

/// The resolved fate of one measurement leg.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LegOutcome {
    /// Route kind tag.
    pub route: u8,
    /// True when no matching receive arrived inside the window.
    pub lost: bool,
    /// `recv_local − sent_local` in microseconds when received. May be
    /// negative under clock skew; the analysis layer corrects it by
    /// averaging with the reverse path (§4.1).
    pub one_way_us: Option<i64>,
}

/// A fully resolved probe: one to [`MAX_PROBE_LEGS`] redundant legs
/// sharing a probe id. Two-leg probes are the paper's pairs; the name
/// survives the k-leg generalization because every downstream consumer
/// still thinks in "pairs observed".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairOutcome {
    /// Probe identifier.
    pub id: u64,
    /// Method registry index.
    pub method: u8,
    /// Path source.
    pub src: HostId,
    /// Path destination.
    pub dst: HostId,
    /// True send instant of the first leg.
    pub sent: SimTime,
    /// Outcome per leg; single-packet methods use only slot 0, the
    /// paper's pairs slots 0–1.
    pub legs: [Option<LegOutcome>; MAX_PROBE_LEGS],
    /// True when the §4.1 host-failure filter discards this sample.
    pub discarded: bool,
}

impl PairOutcome {
    /// True when every present leg was lost (the probe failed
    /// end-to-end).
    pub fn all_lost(&self) -> bool {
        self.prefix_all_lost(MAX_PROBE_LEGS)
    }

    /// True when the first `j` leg slots hold at least one leg and every
    /// present one was lost — "the application sent j copies and none
    /// arrived". `prefix_all_lost(1)` is the paper's first-packet loss;
    /// `prefix_all_lost(MAX_PROBE_LEGS)` is [`all_lost`](Self::all_lost).
    pub fn prefix_all_lost(&self, j: usize) -> bool {
        let mut any = false;
        for l in self.legs.iter().take(j).flatten() {
            any = true;
            if !l.lost {
                return false;
            }
        }
        any
    }

    /// The smallest observed one-way time across received legs (the copy
    /// the application would have used first), microseconds.
    pub fn best_one_way_us(&self) -> Option<i64> {
        self.legs
            .iter()
            .flatten()
            .filter_map(|l| l.one_way_us)
            .min()
    }

    /// The smallest observed one-way time across the first `j` legs —
    /// what an application sending only j copies would have seen.
    pub fn best_of_first_one_way_us(&self, j: usize) -> Option<i64> {
        self.legs
            .iter()
            .take(j)
            .flatten()
            .filter_map(|l| l.one_way_us)
            .min()
    }

    /// Number of legs present (1 to [`MAX_PROBE_LEGS`]).
    pub fn leg_count(&self) -> usize {
        self.legs.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leg(lost: bool, one_way: Option<i64>) -> Option<LegOutcome> {
        Some(LegOutcome { route: 0, lost, one_way_us: one_way })
    }

    fn pair(first_two: [Option<LegOutcome>; 2]) -> PairOutcome {
        probe([first_two[0], first_two[1], None, None])
    }

    fn probe(legs: [Option<LegOutcome>; MAX_PROBE_LEGS]) -> PairOutcome {
        PairOutcome {
            id: 1,
            method: 0,
            src: HostId(0),
            dst: HostId(1),
            sent: SimTime::ZERO,
            legs,
            discarded: false,
        }
    }

    #[test]
    fn all_lost_requires_every_leg_lost() {
        assert!(pair([leg(true, None), leg(true, None)]).all_lost());
        assert!(!pair([leg(true, None), leg(false, Some(10))]).all_lost());
        assert!(!pair([leg(false, Some(10)), None]).all_lost());
        assert!(pair([leg(true, None), None]).all_lost());
    }

    #[test]
    fn empty_pair_is_not_lost() {
        assert!(!pair([None, None]).all_lost());
    }

    #[test]
    fn four_leg_probe_generalizes_the_pair_predicates() {
        let p = probe([leg(true, None), leg(true, None), leg(false, Some(40_000)), leg(true, None)]);
        assert!(!p.all_lost(), "the third copy arrived");
        assert_eq!(p.leg_count(), 4);
        assert!(p.prefix_all_lost(1), "first copy lost");
        assert!(p.prefix_all_lost(2), "first two copies lost");
        assert!(!p.prefix_all_lost(3), "three copies include the arrival");
        assert!(!p.prefix_all_lost(4));
        assert_eq!(p.best_one_way_us(), Some(40_000));
        assert_eq!(p.best_of_first_one_way_us(2), None);
        assert_eq!(p.best_of_first_one_way_us(3), Some(40_000));
        let dead = probe([leg(true, None); MAX_PROBE_LEGS]);
        assert!(dead.all_lost());
        assert!(!probe([None; MAX_PROBE_LEGS]).prefix_all_lost(4), "no legs, no loss");
    }

    #[test]
    fn best_one_way_picks_minimum() {
        let p = pair([leg(false, Some(500)), leg(false, Some(300))]);
        assert_eq!(p.best_one_way_us(), Some(300));
        let q = pair([leg(true, None), leg(false, Some(300))]);
        assert_eq!(q.best_one_way_us(), Some(300));
        let r = pair([leg(true, None), leg(true, None)]);
        assert_eq!(r.best_one_way_us(), None);
    }

    #[test]
    fn leg_count_counts_present() {
        assert_eq!(pair([leg(false, Some(1)), None]).leg_count(), 1);
        assert_eq!(pair([leg(false, Some(1)), leg(true, None)]).leg_count(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let p = pair([leg(false, Some(-250)), leg(true, None)]);
        let json = serde_json::to_string(&p).unwrap();
        let back: PairOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
