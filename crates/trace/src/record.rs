//! Measurement event and outcome records.

use netsim::{HostId, SimTime};
use serde::{Deserialize, Serialize};

/// Maximum redundant legs per probe, mirroring the wire format's cap
/// (`overlay::wire::MAX_PROBE_LEGS` — the crates are siblings, so the
/// value is duplicated here and pinned equal by a cross-crate test in
/// `mpath-core`). Probe records size their leg arrays to this bound.
pub const MAX_PROBE_LEGS: usize = 4;

/// A measurement packet leaving its origin host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SendEvent {
    /// Random 64-bit probe identifier, shared by every leg of a probe.
    pub id: u64,
    /// Method registry index.
    pub method: u8,
    /// Leg within the probe (`0..MAX_PROBE_LEGS`).
    pub leg: u8,
    /// Measured path source.
    pub src: HostId,
    /// Measured path destination.
    pub dst: HostId,
    /// Route kind tag (see `overlay::RouteTag`).
    pub route: u8,
    /// True (simulator) send instant.
    pub sent: SimTime,
    /// The origin host's local clock at transmission, microseconds.
    pub sent_local_us: i64,
}

/// A measurement packet arriving at its destination (or, for round-trip
/// datasets, its echo arriving back at the origin).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecvEvent {
    /// Echoed probe identifier.
    pub id: u64,
    /// Leg within the probe (`0..MAX_PROBE_LEGS`).
    pub leg: u8,
    /// True (simulator) receive instant.
    pub recv: SimTime,
    /// The receiving host's local clock, microseconds.
    pub recv_local_us: i64,
}

/// One host-log line (what hosts push to the central machine).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LogEvent {
    /// A send record.
    Send(SendEvent),
    /// A receive record.
    Recv(RecvEvent),
}

/// The resolved fate of one measurement leg.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LegOutcome {
    /// Route kind tag.
    pub route: u8,
    /// True when no matching receive arrived inside the window.
    pub lost: bool,
    /// `recv_local − sent_local` in microseconds when received. May be
    /// negative under clock skew; the analysis layer corrects it by
    /// averaging with the reverse path (§4.1).
    pub one_way_us: Option<i64>,
}

/// Leg-state byte: the slot holds no leg.
const LEG_ABSENT: u8 = 0;
/// Leg-state byte: the leg was sent and lost.
const LEG_LOST: u8 = 1;
/// Leg-state byte: the leg arrived.
const LEG_RECEIVED: u8 = 2;

/// Sentinel in the packed `one_way` slots of legs without a measured
/// one-way time. Real measurements are clock differences within a
/// receive window of the send — nowhere near `i64::MIN`.
const ONE_WAY_NONE: i64 = i64::MIN;

/// A fully resolved probe: one to [`MAX_PROBE_LEGS`] redundant legs
/// sharing a probe id. Two-leg probes are the paper's pairs; the name
/// survives the k-leg generalization because every downstream consumer
/// still thinks in "pairs observed".
///
/// Legs are stored packed — a state byte, a route byte and a
/// sentinel-coded `one_way_us` per slot — instead of the former
/// `[Option<LegOutcome>; MAX_PROBE_LEGS]`, which cost ~120 bytes per
/// outcome and dominated the windowed-accumulation hot path. The
/// [`leg`](Self::leg) accessor (and [`legs`](Self::legs)) still speak
/// `Option<LegOutcome>`, so consumers are layout-agnostic, and the
/// serde form is unchanged (a `legs` array of nullable leg objects).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairOutcome {
    /// Probe identifier.
    pub id: u64,
    /// Method registry index.
    pub method: u8,
    /// Path source.
    pub src: HostId,
    /// Path destination.
    pub dst: HostId,
    /// True send instant of the first leg.
    pub sent: SimTime,
    /// Per-slot state byte (absent / lost / received).
    state: [u8; MAX_PROBE_LEGS],
    /// Per-slot route tag (meaningful only when the slot is present).
    route: [u8; MAX_PROBE_LEGS],
    /// Per-slot one-way time, [`ONE_WAY_NONE`] when unmeasured.
    one_way: [i64; MAX_PROBE_LEGS],
    /// True when the §4.1 host-failure filter discards this sample.
    pub discarded: bool,
}

impl PairOutcome {
    /// Builds an outcome from per-slot leg options — the one
    /// construction path, so the packed encoding is normalized (absent
    /// slots always carry route 0 and the one-way sentinel, keeping
    /// derived `PartialEq` honest).
    pub fn from_legs(
        id: u64,
        method: u8,
        src: HostId,
        dst: HostId,
        sent: SimTime,
        legs: [Option<LegOutcome>; MAX_PROBE_LEGS],
        discarded: bool,
    ) -> PairOutcome {
        let mut state = [LEG_ABSENT; MAX_PROBE_LEGS];
        let mut route = [0u8; MAX_PROBE_LEGS];
        let mut one_way = [ONE_WAY_NONE; MAX_PROBE_LEGS];
        for (i, leg) in legs.iter().enumerate() {
            if let Some(l) = leg {
                state[i] = if l.lost { LEG_LOST } else { LEG_RECEIVED };
                route[i] = l.route;
                if let Some(us) = l.one_way_us {
                    debug_assert_ne!(us, ONE_WAY_NONE, "one_way_us collides with the sentinel");
                    one_way[i] = us;
                }
            }
        }
        PairOutcome { id, method, src, dst, sent, state, route, one_way, discarded }
    }

    /// The outcome of leg slot `i`, `None` for an empty slot.
    #[inline]
    pub fn leg(&self, i: usize) -> Option<LegOutcome> {
        match self.state[i] {
            LEG_ABSENT => None,
            s => Some(LegOutcome {
                route: self.route[i],
                lost: s == LEG_LOST,
                one_way_us: (self.one_way[i] != ONE_WAY_NONE).then(|| self.one_way[i]),
            }),
        }
    }

    /// All leg slots in order, as the former public array read.
    pub fn legs(&self) -> [Option<LegOutcome>; MAX_PROBE_LEGS] {
        std::array::from_fn(|i| self.leg(i))
    }

    /// True when every present leg was lost (the probe failed
    /// end-to-end).
    #[inline]
    pub fn all_lost(&self) -> bool {
        self.prefix_all_lost(MAX_PROBE_LEGS)
    }

    /// True when the first `j` leg slots hold at least one leg and every
    /// present one was lost — "the application sent j copies and none
    /// arrived". `prefix_all_lost(1)` is the paper's first-packet loss;
    /// `prefix_all_lost(MAX_PROBE_LEGS)` is [`all_lost`](Self::all_lost).
    #[inline]
    pub fn prefix_all_lost(&self, j: usize) -> bool {
        let mut any = false;
        for &s in self.state.iter().take(j) {
            if s == LEG_RECEIVED {
                return false;
            }
            any |= s != LEG_ABSENT;
        }
        any
    }

    /// The smallest observed one-way time across received legs (the copy
    /// the application would have used first), microseconds.
    #[inline]
    pub fn best_one_way_us(&self) -> Option<i64> {
        self.best_of_first_one_way_us(MAX_PROBE_LEGS)
    }

    /// The smallest observed one-way time across the first `j` legs —
    /// what an application sending only j copies would have seen.
    #[inline]
    pub fn best_of_first_one_way_us(&self, j: usize) -> Option<i64> {
        self.one_way
            .iter()
            .take(j)
            .copied()
            .filter(|&us| us != ONE_WAY_NONE)
            .min()
    }

    /// Number of legs present (1 to [`MAX_PROBE_LEGS`]).
    pub fn leg_count(&self) -> usize {
        self.state.iter().filter(|&&s| s != LEG_ABSENT).count()
    }
}

// Hand-written serde preserving the pre-compaction wire shape: a `legs`
// array of nullable leg objects. The packed encoding is an in-memory
// layout decision and must not leak into logs or fixtures.
impl serde::Serialize for PairOutcome {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("id".to_string(), self.id.to_value()),
            ("method".to_string(), self.method.to_value()),
            ("src".to_string(), self.src.to_value()),
            ("dst".to_string(), self.dst.to_value()),
            ("sent".to_string(), self.sent.to_value()),
            ("legs".to_string(), self.legs().to_value()),
            ("discarded".to_string(), self.discarded.to_value()),
        ])
    }
}

impl serde::Deserialize for PairOutcome {
    fn from_value(v: &serde::Value) -> Result<PairOutcome, serde::Error> {
        let serde::Value::Map(entries) = v else {
            return Err(serde::Error::new("PairOutcome: expected a map"));
        };
        const FIELDS: [&str; 7] = ["id", "method", "src", "dst", "sent", "legs", "discarded"];
        for (key, _) in entries {
            if !FIELDS.contains(&key.as_str()) {
                return Err(serde::Error::new(format!("PairOutcome: unknown field `{key}`")));
            }
        }
        let legs: [Option<LegOutcome>; MAX_PROBE_LEGS] =
            Deserialize::from_value(v.field("legs")?)?;
        Ok(PairOutcome::from_legs(
            Deserialize::from_value(v.field("id")?)?,
            Deserialize::from_value(v.field("method")?)?,
            Deserialize::from_value(v.field("src")?)?,
            Deserialize::from_value(v.field("dst")?)?,
            Deserialize::from_value(v.field("sent")?)?,
            legs,
            Deserialize::from_value(v.field("discarded")?)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leg(lost: bool, one_way: Option<i64>) -> Option<LegOutcome> {
        Some(LegOutcome { route: 0, lost, one_way_us: one_way })
    }

    fn pair(first_two: [Option<LegOutcome>; 2]) -> PairOutcome {
        probe([first_two[0], first_two[1], None, None])
    }

    fn probe(legs: [Option<LegOutcome>; MAX_PROBE_LEGS]) -> PairOutcome {
        PairOutcome::from_legs(1, 0, HostId(0), HostId(1), SimTime::ZERO, legs, false)
    }

    #[test]
    fn all_lost_requires_every_leg_lost() {
        assert!(pair([leg(true, None), leg(true, None)]).all_lost());
        assert!(!pair([leg(true, None), leg(false, Some(10))]).all_lost());
        assert!(!pair([leg(false, Some(10)), None]).all_lost());
        assert!(pair([leg(true, None), None]).all_lost());
    }

    #[test]
    fn empty_pair_is_not_lost() {
        assert!(!pair([None, None]).all_lost());
    }

    #[test]
    fn four_leg_probe_generalizes_the_pair_predicates() {
        let p = probe([leg(true, None), leg(true, None), leg(false, Some(40_000)), leg(true, None)]);
        assert!(!p.all_lost(), "the third copy arrived");
        assert_eq!(p.leg_count(), 4);
        assert!(p.prefix_all_lost(1), "first copy lost");
        assert!(p.prefix_all_lost(2), "first two copies lost");
        assert!(!p.prefix_all_lost(3), "three copies include the arrival");
        assert!(!p.prefix_all_lost(4));
        assert_eq!(p.best_one_way_us(), Some(40_000));
        assert_eq!(p.best_of_first_one_way_us(2), None);
        assert_eq!(p.best_of_first_one_way_us(3), Some(40_000));
        let dead = probe([leg(true, None); MAX_PROBE_LEGS]);
        assert!(dead.all_lost());
        assert!(!probe([None; MAX_PROBE_LEGS]).prefix_all_lost(4), "no legs, no loss");
    }

    #[test]
    fn best_one_way_picks_minimum() {
        let p = pair([leg(false, Some(500)), leg(false, Some(300))]);
        assert_eq!(p.best_one_way_us(), Some(300));
        let q = pair([leg(true, None), leg(false, Some(300))]);
        assert_eq!(q.best_one_way_us(), Some(300));
        let r = pair([leg(true, None), leg(true, None)]);
        assert_eq!(r.best_one_way_us(), None);
    }

    #[test]
    fn leg_count_counts_present() {
        assert_eq!(pair([leg(false, Some(1)), None]).leg_count(), 1);
        assert_eq!(pair([leg(false, Some(1)), leg(true, None)]).leg_count(), 2);
    }

    #[test]
    fn leg_accessor_round_trips_every_slot() {
        let legs = [leg(false, Some(-250)), leg(true, None), None, leg(false, None)];
        let p = probe(legs);
        assert_eq!(p.legs(), legs);
        for (i, want) in legs.iter().enumerate() {
            assert_eq!(p.leg(i), *want, "slot {i}");
        }
    }

    #[test]
    fn packed_layout_stays_compact() {
        // The whole point of the packed encoding: a cache line per
        // outcome, not the ~120 bytes of the Option-array layout.
        assert!(
            std::mem::size_of::<PairOutcome>() <= 64,
            "PairOutcome grew to {} bytes",
            std::mem::size_of::<PairOutcome>()
        );
    }

    #[test]
    fn serde_round_trip() {
        let p = pair([leg(false, Some(-250)), leg(true, None)]);
        let json = serde_json::to_string(&p).unwrap();
        let back: PairOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        // The wire shape is the pre-compaction one: nullable leg objects
        // under `legs`, nothing about the packed arrays.
        assert!(json.contains(r#""legs":[{"#), "unexpected wire shape: {json}");
        assert!(!json.contains("state"), "packed field leaked: {json}");
    }
}
