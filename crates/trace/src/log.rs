//! Per-host measurement logs with a portable on-disk codec.
//!
//! In the paper, "each probing host periodically pushes its logs to a
//! central monitoring machine" (§4.1). [`HostLog`] is that per-host
//! buffer: events append locally and `push` drains them toward the
//! collector. The JSON-lines codec makes experiment artifacts inspectable
//! with standard tooling.

use crate::record::LogEvent;
use std::io::{self, BufRead, Write};

/// A host's local measurement log.
#[derive(Debug, Default)]
pub struct HostLog {
    events: Vec<LogEvent>,
    pushed: u64,
}

impl HostLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn append(&mut self, e: LogEvent) {
        self.events.push(e);
    }

    /// Drains buffered events (the periodic push to the collector).
    pub fn push(&mut self) -> Vec<LogEvent> {
        self.pushed += self.events.len() as u64;
        std::mem::take(&mut self.events)
    }

    /// Number of events currently buffered.
    pub fn buffered(&self) -> usize {
        self.events.len()
    }

    /// Total events ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Writes events as JSON lines.
    pub fn write_jsonl<W: Write>(events: &[LogEvent], mut w: W) -> io::Result<()> {
        for e in events {
            let line = serde_json::to_string(e)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// Reads events from JSON lines, skipping blank lines.
    pub fn read_jsonl<R: BufRead>(r: R) -> io::Result<Vec<LogEvent>> {
        let mut out = Vec::new();
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let e: LogEvent = serde_json::from_str(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            out.push(e);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecvEvent, SendEvent};
    use netsim::{HostId, SimTime};

    fn sample_events() -> Vec<LogEvent> {
        vec![
            LogEvent::Send(SendEvent {
                id: 1,
                method: 2,
                leg: 0,
                src: HostId(3),
                dst: HostId(4),
                route: 1,
                sent: SimTime::from_secs(10),
                sent_local_us: 10_000_123,
            }),
            LogEvent::Recv(RecvEvent {
                id: 1,
                leg: 0,
                recv: SimTime::from_secs(11),
                recv_local_us: 11_000_456,
            }),
        ]
    }

    #[test]
    fn append_and_push_drain() {
        let mut log = HostLog::new();
        for e in sample_events() {
            log.append(e);
        }
        assert_eq!(log.buffered(), 2);
        let drained = log.push();
        assert_eq!(drained.len(), 2);
        assert_eq!(log.buffered(), 0);
        assert_eq!(log.total_pushed(), 2);
    }

    #[test]
    fn jsonl_round_trip() {
        let events = sample_events();
        let mut buf = Vec::new();
        HostLog::write_jsonl(&events, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        let back = HostLog::read_jsonl(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let events = sample_events();
        let mut buf = Vec::new();
        HostLog::write_jsonl(&events, &mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = HostLog::read_jsonl(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn jsonl_rejects_garbage() {
        let r = HostLog::read_jsonl(io::BufReader::new(&b"not json\n"[..]));
        assert!(r.is_err());
    }
}
