//! # trace — probe records, per-host logs, and the central collector
//!
//! The paper's measurement pipeline (§4.1): every probe has a random
//! 64-bit identifier; hosts log send and receive events with local
//! (possibly skewed) clocks; logs are pushed to a central machine that
//! pairs sends with receives, applies a receive window, and discards
//! samples affected by *host* failures (a host that stops sending probes
//! for more than 90 seconds is considered crashed, and losses toward it
//! are not network losses).
//!
//! [`collect::Collector`] is the streaming reimplementation of that
//! post-processing: experiments feed it send/receive events in time
//! order and drain finalized [`record::PairOutcome`]s.

#![warn(missing_docs)]

pub mod collect;
pub mod log;
pub mod record;

pub use collect::{Collector, CollectorConfig, CollectorStats};
pub use log::HostLog;
pub use record::{LegOutcome, LogEvent, PairOutcome, RecvEvent, SendEvent};
