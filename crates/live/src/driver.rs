//! The tokio driver: one task per overlay node.
//!
//! The driver owns a `UdpSocket` and an [`overlay::OverlayNode`] and
//! translates between them: datagrams decode into packets for
//! `on_packet`, the node's `poll_at` maps to `sleep_until`, and emitted
//! [`Transmit`]s are encoded and sent (through the impairment layer).
//! Application deliveries stream out of an mpsc channel.

use crate::impair::Impairment;
use bytes::Bytes;
use netsim::{HostId, Rng, SimTime};
use overlay::{Delivered, NodeConfig, OverlayNode, Packet, Policy, Transmit};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::UdpSocket;
use tokio::sync::{mpsc, oneshot, Notify};
use tokio::time::{Duration, Instant};

/// One row of [`LiveNode::snapshot`]: peer, loss estimate, smoothed
/// one-way latency in microseconds (if measured), and the dead flag.
pub type SnapshotRow = (HostId, f64, Option<f64>, bool);

/// Configuration of one live node.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// This node's overlay id.
    pub me: HostId,
    /// Overlay addresses indexed by `HostId` (including our own slot).
    pub peers: Vec<SocketAddr>,
    /// Overlay node parameters (probe intervals scale down for demos).
    pub node: NodeConfig,
    /// Outbound impairment.
    pub impair: Impairment,
    /// RNG seed (impairment decisions).
    pub seed: u64,
}

/// An application-level event from the node.
#[derive(Debug, Clone, PartialEq)]
pub enum LiveEvent {
    /// Data arrived for the local application.
    Data {
        /// Origin node.
        from: HostId,
        /// Stream id.
        stream: u32,
        /// Sequence number.
        seq: u32,
        /// Payload size.
        len: usize,
    },
    /// A measurement leg arrived (used by demo accounting).
    Measure {
        /// Probe id.
        id: u64,
        /// Origin node.
        from: HostId,
    },
}

enum Command {
    SendData { dst: HostId, stream: u32, seq: u32, payload: Bytes, policy: Policy },
    QueryRoute { dst: HostId, policy: Policy, resp: oneshot::Sender<overlay::Route> },
    Snapshot { resp: oneshot::Sender<Vec<SnapshotRow>> },
}

/// Handle to a running live overlay node.
pub struct LiveNode {
    me: HostId,
    addr: SocketAddr,
    cmd_tx: mpsc::Sender<Command>,
    events: Mutex<Option<mpsc::Receiver<LiveEvent>>>,
    shutdown: Arc<Notify>,
    task: Mutex<Option<tokio::task::JoinHandle<()>>>,
}

impl LiveNode {
    /// Binds a socket and spawns the node's event loop.
    pub async fn spawn(cfg: LiveConfig) -> std::io::Result<Arc<LiveNode>> {
        let me = cfg.me;
        let bind = cfg.peers[cfg.me.idx()];
        let socket = UdpSocket::bind(bind).await?;
        let addr = socket.local_addr()?;
        let (cmd_tx, cmd_rx) = mpsc::channel(256);
        let (event_tx, event_rx) = mpsc::channel(4096);
        let shutdown = Arc::new(Notify::new());
        let task = tokio::spawn(node_loop(cfg, socket, cmd_rx, event_tx, shutdown.clone()));
        Ok(Arc::new(LiveNode {
            me,
            addr,
            cmd_tx,
            events: Mutex::new(Some(event_rx)),
            shutdown,
            task: Mutex::new(Some(task)),
        }))
    }

    /// This node's overlay id.
    pub fn id(&self) -> HostId {
        self.me
    }

    /// The node's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Takes the application event receiver (callable once).
    pub fn take_events(&self) -> Option<mpsc::Receiver<LiveEvent>> {
        self.events.lock().take()
    }

    /// Sends application data toward `dst` under a routing policy.
    pub async fn send_data(
        &self,
        dst: HostId,
        stream: u32,
        seq: u32,
        payload: Bytes,
        policy: Policy,
    ) -> bool {
        self.cmd_tx
            .send(Command::SendData { dst, stream, seq, payload, policy })
            .await
            .is_ok()
    }

    /// Asks the node for its current route to `dst`.
    pub async fn route(&self, dst: HostId, policy: Policy) -> Option<overlay::Route> {
        let (tx, rx) = oneshot::channel();
        self.cmd_tx.send(Command::QueryRoute { dst, policy, resp: tx }).await.ok()?;
        rx.await.ok()
    }

    /// Per-peer (loss estimate, latency µs, dead) snapshot.
    pub async fn snapshot(&self) -> Option<Vec<SnapshotRow>> {
        let (tx, rx) = oneshot::channel();
        self.cmd_tx.send(Command::Snapshot { resp: tx }).await.ok()?;
        rx.await.ok()
    }

    /// Stops the node's task and waits for it to exit.
    pub async fn shutdown(&self) {
        self.shutdown.notify_waiters();
        let task = self.task.lock().take();
        if let Some(task) = task {
            let _ = task.await;
        }
    }
}

fn unix_micros() -> i64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as i64)
        .unwrap_or(0)
}

async fn node_loop(
    cfg: LiveConfig,
    socket: UdpSocket,
    mut cmd_rx: mpsc::Receiver<Command>,
    event_tx: mpsc::Sender<LiveEvent>,
    shutdown: Arc<Notify>,
) {
    let start = Instant::now();
    let now_sim = |at: Instant| SimTime::from_micros(at.duration_since(start).as_micros() as u64);
    let mut node = OverlayNode::new(cfg.me, cfg.peers.len(), cfg.node, cfg.seed, SimTime::ZERO);
    let mut rng = Rng::new(cfg.seed ^ 0x11FE);
    // Address book: HostId index → socket address.
    let addr_of: Vec<SocketAddr> = cfg.peers.clone();
    let socket = Arc::new(socket);
    let mut buf = vec![0u8; 64 * 1024];
    let mut out: Vec<Transmit> = Vec::new();

    loop {
        // Flush pending transmissions through the impairment layer.
        for tx in out.drain(..) {
            let Some(delay) = cfg.impair.judge(&mut rng) else { continue };
            let data = tx.packet.encode();
            let target = addr_of[tx.to.idx()];
            if delay.is_zero() {
                let _ = socket.send_to(&data, target).await;
            } else {
                let socket = socket.clone();
                tokio::spawn(async move {
                    tokio::time::sleep(delay).await;
                    let _ = socket.send_to(&data, target).await;
                });
            }
        }

        let wake = node
            .poll_at()
            .map(|t| start + Duration::from_micros(t.as_micros()))
            .unwrap_or_else(|| Instant::now() + Duration::from_secs(3600));

        tokio::select! {
            _ = shutdown.notified() => return,
            _ = tokio::time::sleep_until(wake) => {
                let t = now_sim(Instant::now());
                node.on_timer(t, unix_micros(), &mut out);
            }
            recv = socket.recv_from(&mut buf) => {
                let Ok((len, _from)) = recv else { continue };
                let Ok(packet) = Packet::decode(&buf[..len]) else { continue };
                let t = now_sim(Instant::now());
                if let Some(d) = node.on_packet(t, unix_micros(), packet, &mut out) {
                    let ev = match d {
                        Delivered::Data { origin, stream, seq, len } => {
                            LiveEvent::Data { from: origin, stream, seq, len }
                        }
                        Delivered::Measure { id, origin, .. } => {
                            LiveEvent::Measure { id, from: origin }
                        }
                    };
                    let _ = event_tx.try_send(ev);
                }
            }
            cmd = cmd_rx.recv() => {
                let Some(cmd) = cmd else { return };
                let t = now_sim(Instant::now());
                match cmd {
                    Command::SendData { dst, stream, seq, payload, policy } => {
                        let route = node.route(dst, policy, t);
                        let pkt = Packet::Data {
                            origin: cfg.me,
                            target: dst,
                            stream,
                            seq,
                            payload,
                        };
                        out.push(node.wrap(route, dst, pkt));
                    }
                    Command::QueryRoute { dst, policy, resp } => {
                        let _ = resp.send(node.route(dst, policy, t));
                    }
                    Command::Snapshot { resp } => {
                        let snap = (0..cfg.peers.len() as u16)
                            .filter(|&j| j != cfg.me.0)
                            .map(|j| {
                                let s = node.table().direct(HostId(j));
                                (HostId(j), s.loss_rate(), s.latency_us(), s.is_dead())
                            })
                            .collect();
                        let _ = resp.send(snap);
                    }
                }
            }
        }
    }
}
