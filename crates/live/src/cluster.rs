//! Multi-node localhost clusters and the mesh-vs-direct live demo.

use crate::driver::{LiveConfig, LiveEvent, LiveNode};
use crate::impair::Impairment;
use netsim::HostId;
use overlay::{NodeConfig, Policy, ProberConfig};
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::UdpSocket;
use tokio::time::Duration;

/// A set of live overlay nodes on loopback.
pub struct Cluster {
    nodes: Vec<Arc<LiveNode>>,
}

/// Demo-friendly node configuration: everything runs ~50× faster than
/// the RON defaults so convergence takes seconds, not minutes.
pub fn demo_node_config() -> NodeConfig {
    NodeConfig {
        prober: ProberConfig {
            interval: netsim::SimDuration::from_millis(300),
            jitter_frac: 0.2,
            timeout: netsim::SimDuration::from_millis(150),
            fast_count: 4,
            fast_spacing: netsim::SimDuration::from_millis(100),
        },
        window: 100,
        ewma_alpha: 0.1,
        staleness: netsim::SimDuration::from_secs(5),
        loss_hysteresis: 0.05,
        lat_hysteresis: 0.10,
    }
}

async fn reserve_addrs(n: usize) -> std::io::Result<Vec<SocketAddr>> {
    // Bind ephemeral sockets to discover free ports, then release them.
    // (A small race window exists; fine for demos and tests.)
    let mut addrs = Vec::with_capacity(n);
    let mut sockets = Vec::with_capacity(n);
    for _ in 0..n {
        let s = UdpSocket::bind("127.0.0.1:0").await?;
        addrs.push(s.local_addr()?);
        sockets.push(s);
    }
    drop(sockets);
    Ok(addrs)
}

impl Cluster {
    /// Spawns `n` nodes on loopback with the given impairment.
    pub async fn spawn(n: usize, impair: Impairment, seed: u64) -> std::io::Result<Cluster> {
        let peers = reserve_addrs(n).await?;
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let cfg = LiveConfig {
                me: HostId(i as u16),
                peers: peers.clone(),
                node: demo_node_config(),
                impair,
                seed: seed ^ (i as u64) << 8,
            };
            nodes.push(LiveNode::spawn(cfg).await?);
        }
        Ok(Cluster { nodes })
    }

    /// The spawned nodes.
    pub fn nodes(&self) -> &[Arc<LiveNode>] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Clusters are never empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Shuts every node down.
    pub async fn shutdown(&self) {
        for n in &self.nodes {
            n.shutdown().await;
        }
    }
}

/// Results of [`run_mesh_demo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemoReport {
    /// Data packets sent per strategy.
    pub sent: u32,
    /// Arrivals when sending one copy on the direct path.
    pub direct_delivered: u32,
    /// Arrivals when sending two copies (direct + random intermediate).
    pub mesh_delivered: u32,
}

/// Live mesh-vs-direct comparison: node 0 streams data to node 1 over an
/// impaired loopback wire, once singly (direct) and once 2-redundantly
/// (direct + random intermediate). Returns delivery counts.
pub async fn run_mesh_demo(
    cluster: &Cluster,
    packets: u32,
    pacing: Duration,
) -> std::io::Result<DemoReport> {
    assert!(cluster.len() >= 3, "mesh needs an intermediate");
    let src = &cluster.nodes()[0];
    let dst = &cluster.nodes()[1];
    let mut events = dst.take_events().expect("events taken once");

    // Stream 1: direct only. Stream 2: direct + random intermediate.
    for seq in 0..packets {
        src.send_data(HostId(1), 1, seq, bytes::Bytes::from_static(b"payload"), Policy::Direct)
            .await;
        src.send_data(HostId(1), 2, seq, bytes::Bytes::from_static(b"payload"), Policy::Direct)
            .await;
        src.send_data(HostId(1), 2, seq, bytes::Bytes::from_static(b"payload"), Policy::Random)
            .await;
        tokio::time::sleep(pacing).await;
    }

    // Collect deliveries until the line goes quiet.
    let mut got_direct = vec![false; packets as usize];
    let mut got_mesh = vec![false; packets as usize];
    loop {
        match tokio::time::timeout(Duration::from_millis(500), events.recv()).await {
            Ok(Some(LiveEvent::Data { stream, seq, .. })) => {
                if let Some(slot) = match stream {
                    1 => got_direct.get_mut(seq as usize),
                    2 => got_mesh.get_mut(seq as usize),
                    _ => None,
                } {
                    *slot = true;
                }
            }
            Ok(Some(_)) => {}
            Ok(None) | Err(_) => break,
        }
    }
    Ok(DemoReport {
        sent: packets,
        direct_delivered: got_direct.iter().filter(|&&x| x).count() as u32,
        mesh_delivered: got_mesh.iter().filter(|&&x| x).count() as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn nodes_learn_each_other_over_loopback() {
        let cluster = Cluster::spawn(3, Impairment::none(), 7).await.unwrap();
        tokio::time::sleep(Duration::from_millis(1500)).await;
        let snap = cluster.nodes()[0].snapshot().await.expect("snapshot");
        assert_eq!(snap.len(), 2);
        for (peer, loss, lat, dead) in snap {
            assert!(!dead, "peer {peer:?} wrongly dead");
            assert_eq!(loss, 0.0, "loopback lost probes to {peer:?}");
            let lat = lat.expect("latency measured");
            assert!(lat < 200_000.0, "loopback rtt/2 {lat}us");
        }
        cluster.shutdown().await;
    }

    #[tokio::test]
    async fn data_flows_direct_and_via_intermediate() {
        let cluster = Cluster::spawn(3, Impairment::none(), 8).await.unwrap();
        tokio::time::sleep(Duration::from_millis(600)).await;
        let report = run_mesh_demo(&cluster, 20, Duration::from_millis(5)).await.unwrap();
        assert_eq!(report.direct_delivered, 20, "clean wire: all direct arrive");
        assert_eq!(report.mesh_delivered, 20, "clean wire: all mesh arrive");
        cluster.shutdown().await;
    }

    #[tokio::test]
    async fn mesh_beats_direct_on_lossy_wire() {
        // 25% loss per hop: direct ≈ 75% delivery; mesh (direct + a
        // 2-hop copy) ≈ 1 − 0.25 × (1 − 0.75²) ≈ 89%.
        let cluster = Cluster::spawn(4, Impairment::lossy(0.25, 2), 9).await.unwrap();
        tokio::time::sleep(Duration::from_millis(1200)).await;
        let report = run_mesh_demo(&cluster, 150, Duration::from_millis(4)).await.unwrap();
        assert!(
            report.mesh_delivered > report.direct_delivered,
            "mesh {} must beat direct {}",
            report.mesh_delivered,
            report.direct_delivered
        );
        cluster.shutdown().await;
    }

    #[tokio::test]
    async fn dead_peer_is_detected_live() {
        let cluster = Cluster::spawn(3, Impairment::none(), 10).await.unwrap();
        tokio::time::sleep(Duration::from_millis(800)).await;
        // Kill node 2; node 0 must mark it dead within a few fast chains.
        cluster.nodes()[2].shutdown().await;
        tokio::time::sleep(Duration::from_millis(1500)).await;
        let snap = cluster.nodes()[0].snapshot().await.expect("snapshot");
        let dead_peer = snap.iter().find(|(p, _, _, _)| *p == HostId(2)).unwrap();
        assert!(dead_peer.3, "node 2 should be declared dead");
        let live_peer = snap.iter().find(|(p, _, _, _)| *p == HostId(1)).unwrap();
        assert!(!live_peer.3, "node 1 must stay alive");
        cluster.shutdown().await;
    }
}
