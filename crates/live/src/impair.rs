//! Outbound impairment: loss and delay injection for localhost runs.
//!
//! Loopback never loses a packet and delivers in microseconds, which
//! makes overlay demos boring and untestable. The impairment layer sits
//! between the node and its socket, dropping packets with a configured
//! probability and delaying the rest — the same role the fault-injection
//! flags play in smoltcp's examples.

use std::time::Duration;

/// Impairment parameters for one node's outbound traffic.
#[derive(Debug, Clone, Copy)]
pub struct Impairment {
    /// Drop probability per packet (0.0 = clean).
    pub loss: f64,
    /// Fixed one-way delay added to every packet.
    pub delay: Duration,
    /// Extra uniformly-distributed jitter on top of `delay`.
    pub jitter: Duration,
}

impl Default for Impairment {
    fn default() -> Self {
        Impairment { loss: 0.0, delay: Duration::ZERO, jitter: Duration::ZERO }
    }
}

impl Impairment {
    /// A clean wire.
    pub fn none() -> Self {
        Self::default()
    }

    /// A testbed-like wire: `loss` drop rate, ~`delay_ms` one-way delay.
    pub fn lossy(loss: f64, delay_ms: u64) -> Self {
        Impairment {
            loss,
            delay: Duration::from_millis(delay_ms),
            jitter: Duration::from_millis(delay_ms / 4),
        }
    }

    /// Decides one packet's fate: `None` = dropped, `Some(d)` = deliver
    /// after `d`.
    pub fn judge(&self, rng: &mut netsim::Rng) -> Option<Duration> {
        if rng.chance(self.loss) {
            return None;
        }
        let jitter_us = if self.jitter.is_zero() {
            0.0
        } else {
            rng.uniform(0.0, self.jitter.as_micros() as f64)
        };
        Some(self.delay + Duration::from_micros(jitter_us as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_wire_never_drops_or_delays() {
        let imp = Impairment::none();
        let mut rng = netsim::Rng::new(1);
        for _ in 0..1000 {
            assert_eq!(imp.judge(&mut rng), Some(Duration::ZERO));
        }
    }

    #[test]
    fn lossy_wire_drops_roughly_at_rate() {
        let imp = Impairment::lossy(0.3, 0);
        let mut rng = netsim::Rng::new(2);
        let dropped = (0..10_000).filter(|_| imp.judge(&mut rng).is_none()).count();
        assert!((2_700..3_300).contains(&dropped), "dropped={dropped}");
    }

    #[test]
    fn delay_within_bounds() {
        let imp = Impairment::lossy(0.0, 40);
        let mut rng = netsim::Rng::new(3);
        for _ in 0..1000 {
            let d = imp.judge(&mut rng).unwrap();
            assert!(d >= Duration::from_millis(40));
            assert!(d <= Duration::from_millis(50));
        }
    }
}
