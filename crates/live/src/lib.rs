//! # mpath-live — running the overlay on real sockets
//!
//! The discrete-event experiments prove the routing logic; this crate
//! proves it *deploys*. The exact same [`overlay::OverlayNode`] state
//! machine is driven here by a tokio event loop over UDP sockets:
//! packets are encoded with the wire codec, timers map to
//! `tokio::time::sleep_until`, and the node's emitted [`overlay::Transmit`]s go
//! out through an optional impairment layer (random loss + delay) so
//! localhost demos exhibit testbed-like behaviour.
//!
//! Structure follows the structured-concurrency discipline: a
//! [`driver::LiveNode`] owns its socket task; dropping the handle (or
//! calling [`driver::LiveNode::shutdown`]) terminates it; nothing
//! outlives the cluster that spawned it.

#![warn(missing_docs)]

pub mod cluster;
pub mod driver;
pub mod impair;

pub use cluster::{run_mesh_demo, Cluster, DemoReport};
pub use driver::{LiveConfig, LiveEvent, LiveNode, SnapshotRow};
pub use impair::Impairment;
