//! The detlint gate, as tests: every rule family is proven to catch its
//! seeded fixture violations (right rule, right file, right line), the
//! real workspace is proven clean, and the wire manifest is proven
//! deterministic and drift-sensitive. `cargo test` therefore fails for
//! the same reasons `cargo run -p detlint` exits nonzero.

use detlint::manifest::{
    self, TypeShape, VersionConstSpec, VersionTag, WireTypeSpec, MANIFEST_FILE,
};
use detlint::rules::{lint_source, FileClass, Violation};
use std::path::{Path, PathBuf};

const DET: FileClass = FileClass { deterministic: true };

fn fixture(name: &str) -> (String, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    (name.to_string(), std::fs::read_to_string(&path).unwrap())
}

fn lines_of(violations: &[Violation], rule: &str) -> Vec<u32> {
    violations.iter().filter(|v| v.rule == rule).map(|v| v.line).collect()
}

#[test]
fn nondet_iter_fixture_is_caught() {
    let (name, src) = fixture("nondet_iter.rs");
    let v = lint_source(&name, &src, DET);
    // Line 6 constructs (two mentions, one finding), 11 collects, 17 is
    // *not* covered by the annotation two lines above (allows bind to
    // the next code line — the fn signature), 29 follows a reason-less
    // annotation.
    assert_eq!(lines_of(&v, "nondet-iter"), [6, 11, 17, 29]);
    assert_eq!(lines_of(&v, "bad-annotation"), [27], "reason-less allow is flagged");
    assert!(v.iter().all(|x| x.file == name));
    // The same file in a non-deterministic crate: only the bad
    // annotation remains.
    let free = lint_source(&name, &src, FileClass { deterministic: false });
    assert_eq!(lines_of(&free, "nondet-iter"), [] as [u32; 0]);
}

#[test]
fn wall_clock_fixture_is_caught() {
    let (name, src) = fixture("wall_clock.rs");
    let v = lint_source(&name, &src, DET);
    assert_eq!(lines_of(&v, "wall-clock"), [5, 9, 10]);
    assert_eq!(lines_of(&v, "bad-annotation"), [] as [u32; 0]);
}

#[test]
fn float_order_fixture_is_caught_in_any_crate() {
    let (name, src) = fixture("float_order.rs");
    for det in [true, false] {
        let v = lint_source(&name, &src, FileClass { deterministic: det });
        assert_eq!(lines_of(&v, "float-total-order"), [5, 9, 13], "deterministic={det}");
    }
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

#[test]
fn the_workspace_is_clean() {
    let v = detlint::lint_workspace(&workspace_root());
    assert!(
        v.is_empty(),
        "detlint must pass on the workspace; violations:\n{}",
        v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn workspace_walk_excludes_vendor_and_fixtures() {
    let files = detlint::workspace_files(&workspace_root());
    assert!(files.len() > 50, "walk found only {} files", files.len());
    for f in &files {
        let s = f.to_string_lossy();
        assert!(!s.contains("vendor/"), "vendored stand-ins are not our invariants: {s}");
        assert!(!s.contains("fixtures"), "seeded violations must not gate the build: {s}");
    }
}

// ---- wire manifest ----

/// Specs describing the toy wire surface in `fixtures/wire/`.
const TOY_TYPES: &[WireTypeSpec] = &[
    WireTypeSpec {
        name: "ToyCounters",
        file: "wire_types.rs",
        shape: TypeShape::DeriveStruct,
        version: VersionTag::Const("TOY_WIRE_VERSION"),
    },
    WireTypeSpec {
        name: "ToyMsg",
        file: "wire_types.rs",
        shape: TypeShape::DeriveEnum,
        version: VersionTag::Const("TOY_WIRE_VERSION"),
    },
    WireTypeSpec {
        name: "ToyAccum",
        file: "wire_types.rs",
        shape: TypeShape::Handwritten,
        version: VersionTag::Inline,
    },
];
const TOY_CONSTS: &[VersionConstSpec] =
    &[VersionConstSpec { name: "TOY_WIRE_VERSION", file: "wire_types.rs" }];

fn wire_fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/wire")
}

#[test]
fn extraction_reads_all_three_shapes() {
    let m = manifest::extract(&wire_fixture_root(), TOY_TYPES, TOY_CONSTS).unwrap();
    assert_eq!(m.versions, [("TOY_WIRE_VERSION".to_string(), 2)]);
    let by_name = |n: &str| m.types.iter().find(|t| t.name == n).unwrap();
    assert_eq!(by_name("ToyCounters").fields, ["received", "sent"]);
    assert_eq!(by_name("ToyCounters").version, "TOY_WIRE_VERSION");
    assert_eq!(
        by_name("ToyMsg").fields,
        ["Data.0", "Data.1", "Hello.build", "Hello.proto", "Ping"]
    );
    assert_eq!(by_name("ToyAccum").fields, ["count", "sum", "v"]);
    assert_eq!(by_name("ToyAccum").version, "inline:1");
}

#[test]
fn manifest_rendering_is_deterministic() {
    // Satellite: double-run equality — two independent extractions of
    // the same source render byte-identically.
    let a = manifest::extract(&wire_fixture_root(), TOY_TYPES, TOY_CONSTS).unwrap().render();
    let b = manifest::extract(&wire_fixture_root(), TOY_TYPES, TOY_CONSTS).unwrap().render();
    assert_eq!(a, b);
    // And for the real workspace surface.
    let root = workspace_root();
    let c = manifest::extract(&root, manifest::WIRE_TYPES, manifest::VERSION_CONSTS)
        .unwrap()
        .render();
    let d = manifest::extract(&root, manifest::WIRE_TYPES, manifest::VERSION_CONSTS)
        .unwrap()
        .render();
    assert_eq!(c, d);
    // The checked-in golden is exactly that rendering.
    assert_eq!(
        c,
        std::fs::read_to_string(root.join(MANIFEST_FILE)).unwrap(),
        "WIRE_MANIFEST.json is stale — run `cargo run -p detlint -- --update-manifest`"
    );
}

#[test]
fn manifest_round_trips_through_its_parser() {
    let m = manifest::extract(&wire_fixture_root(), TOY_TYPES, TOY_CONSTS).unwrap();
    let back = manifest::parse_manifest(&m.render()).unwrap();
    assert_eq!(m, back);
}

/// Builds a scratch copy of the wire fixture whose golden manifest was
/// doctored by `mutate`, and returns the scratch root.
fn scratch_with_golden(tag: &str, mutate: impl Fn(&mut manifest::Manifest)) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("detlint_wire_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::copy(wire_fixture_root().join("wire_types.rs"), dir.join("wire_types.rs")).unwrap();
    let mut m = manifest::extract(&dir, TOY_TYPES, TOY_CONSTS).unwrap();
    mutate(&mut m);
    std::fs::write(dir.join(MANIFEST_FILE), m.render()).unwrap();
    dir
}

#[test]
fn field_removal_without_version_bump_is_fatal() {
    // The golden remembers a `dropped` field the source no longer has —
    // exactly what deleting a field from a wire type looks like — and
    // the recorded version is unchanged.
    let dir = scratch_with_golden("drift", |m| {
        let t = m.types.iter_mut().find(|t| t.name == "ToyCounters").unwrap();
        t.fields = vec!["dropped".into(), "received".into(), "sent".into()];
    });
    let v = manifest::check_with(&dir, TOY_TYPES, TOY_CONSTS);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "wire-manifest");
    assert!(v[0].msg.contains("without a `TOY_WIRE_VERSION` bump"), "{}", v[0].msg);
    // And --update-manifest refuses to paper over it.
    let err = manifest::update_with(&dir, TOY_TYPES, TOY_CONSTS).unwrap_err();
    assert!(err.contains("refusing to regenerate"), "{err}");
    assert!(err.contains("ToyCounters"), "{err}");
}

#[test]
fn field_change_with_version_bump_asks_for_regeneration() {
    // Same drift, but the golden records the *old* version value — i.e.
    // the source bumped TOY_WIRE_VERSION along with the field change.
    let dir = scratch_with_golden("bumped", |m| {
        let t = m.types.iter_mut().find(|t| t.name == "ToyCounters").unwrap();
        t.fields = vec!["dropped".into(), "received".into(), "sent".into()];
        m.versions = vec![("TOY_WIRE_VERSION".into(), 1)];
    });
    let v = manifest::check_with(&dir, TOY_TYPES, TOY_CONSTS);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].msg.contains("version bump seen"), "{}", v[0].msg);
    // Regeneration is allowed and heals the gate.
    manifest::update_with(&dir, TOY_TYPES, TOY_CONSTS).unwrap();
    assert!(manifest::check_with(&dir, TOY_TYPES, TOY_CONSTS).is_empty());
}

#[test]
fn inline_versioned_type_bump_is_recognized() {
    // ToyAccum is pinned by its own `"v"` literal: pretend the golden
    // was extracted when it wrote v=0 with one fewer field. The tag
    // moved 0 -> 1, so this reads as a legitimate, bumped change.
    let dir = scratch_with_golden("inline", |m| {
        let t = m.types.iter_mut().find(|t| t.name == "ToyAccum").unwrap();
        t.fields = vec!["count".into(), "v".into()];
        t.version = "inline:0".into();
    });
    let v = manifest::check_with(&dir, TOY_TYPES, TOY_CONSTS);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].msg.contains("version bump seen"), "{}", v[0].msg);
}

#[test]
fn missing_manifest_is_fatal() {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("detlint_wire_missing");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::copy(wire_fixture_root().join("wire_types.rs"), dir.join("wire_types.rs")).unwrap();
    let v = manifest::check_with(&dir, TOY_TYPES, TOY_CONSTS);
    assert_eq!(v.len(), 1);
    assert!(v[0].msg.contains("missing"), "{}", v[0].msg);
}
