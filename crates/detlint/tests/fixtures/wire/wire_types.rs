//! Fixture: a miniature wire surface for manifest-extraction tests —
//! one derived struct, one derived enum, one hand-written impl, one
//! version constant. The integration tests extract this with custom
//! specs and seed drifted goldens against it.

/// Governing version for the derived toy types.
pub const TOY_WIRE_VERSION: u32 = 2;

#[derive(Serialize, Deserialize)]
pub struct ToyCounters {
    /// Packets offered.
    pub sent: u64,
    /// Packets that arrived.
    pub received: u64,
}

#[derive(Serialize, Deserialize)]
pub enum ToyMsg {
    Hello { proto: u32, build: String },
    Ping,
    Data(u64, u32),
}

pub struct ToyAccum {
    count: u64,
    sum: f64,
}

impl serde::Serialize for ToyAccum {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("v".into(), serde::Value::Int(1)),
            ("count".into(), self.count.to_value()),
            ("sum".into(), self.sum.to_value()),
        ])
    }
}
