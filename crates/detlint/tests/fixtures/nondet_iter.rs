//! Fixture: seeded `nondet-iter` violations. Excluded from the real
//! workspace walk; the integration tests lint it as deterministic code.
use std::collections::{HashMap, HashSet}; // import: never a violation

pub fn construct() -> usize {
    let m: HashMap<u32, u32> = HashMap::new(); // lines 6: two hits
    m.len()
}

pub fn collect_and_iterate(xs: &[u32]) -> Vec<u32> {
    let s: HashSet<u32> = xs.iter().copied().collect(); // line 11: one hit
    s.into_iter().collect()
}

// detlint: allow(nondet-iter) — justified: summed, order-insensitive
pub fn annotated_ok(xs: &[u32]) -> u32 {
    let s: std::collections::HashSet<u32> = xs.iter().copied().collect(); // line 17: suppressed? no — allow covers line 16
    s.into_iter().sum()
}

pub fn annotated_inline(xs: &[u32]) -> u32 {
    // detlint: allow(nondet-iter) — membership only, never iterated
    let s: std::collections::HashSet<u32> = xs.iter().copied().collect(); // suppressed
    s.contains(&1) as u32
}

// detlint: allow(nondet-iter)
pub fn reasonless(xs: &[u32]) -> usize {
    let s: std::collections::HashSet<u32> = xs.iter().copied().collect(); // line 29: hit (bad annotation)
    s.len()
}
