//! Fixture: seeded `wall-clock` violations.
use std::time::{Duration, Instant, SystemTime};

pub fn reads_monotonic_clock() -> Instant {
    Instant::now() // line 5: hit
}

pub fn reads_wall_clock() -> Duration {
    SystemTime::now() // line 9: hit
        .duration_since(SystemTime::UNIX_EPOCH) // line 10: hit
        .unwrap_or_default()
}

pub fn takes_time_as_argument(now: Instant, deadline: Instant) -> bool {
    now >= deadline // Instant in type position: never a violation
}

pub fn annotated(start: Instant) -> Duration {
    // detlint: allow(wall-clock) — diagnostic timing only, not fed to sim
    start.elapsed().max(Instant::now().elapsed()) // suppressed
}
