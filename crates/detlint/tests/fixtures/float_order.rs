//! Fixture: seeded `float-total-order` violations.
use std::cmp::Ordering;

pub fn panicky_sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // line 5: hit
}

pub fn panicky_unstable_sort(v: &mut [f64]) {
    v.sort_unstable_by(|a, b| b.partial_cmp(a).expect("NaN")); // line 9: hit (expect counts)
}

pub fn panicky_max(v: &[f64]) -> Option<&f64> {
    v.iter().max_by(|a, b| a.partial_cmp(b).unwrap()) // line 13: hit
}

pub fn safe_sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.total_cmp(b)); // fine
}

pub fn graceful_sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal)); // fine: no unwrap/expect
}

pub struct Wrapped(pub f64);

impl PartialEq for Wrapped {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl PartialOrd for Wrapped {
    // Defining partial_cmp is fine; only unwrapping it in a comparator is not.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.0.partial_cmp(&other.0)
    }
}
