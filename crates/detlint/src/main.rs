//! CLI entry point: `cargo run -p detlint [-- --root DIR]
//! [--update-manifest]`.
//!
//! Exit codes: 0 clean, 1 violations or manifest drift, 2 usage/IO
//! error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut update = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--update-manifest" => update = true,
            "--help" | "-h" => {
                println!(
                    "detlint — determinism & wire-invariant linter\n\n\
                     USAGE: detlint [--root DIR] [--update-manifest]\n\n\
                     Checks every workspace source file for the nondet-iter, wall-clock and\n\
                     float-total-order rules, and the wire-type field sets against\n\
                     WIRE_MANIFEST.json. --update-manifest regenerates the manifest (refused\n\
                     when a field set changed without its governing version bump)."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    // `cargo run -p detlint` runs from the invocation directory; demand
    // the workspace root so relative paths in diagnostics are stable.
    let marker = root.join("Cargo.toml");
    let is_root = std::fs::read_to_string(&marker)
        .map(|s| s.contains("[workspace]"))
        .unwrap_or(false);
    if !is_root {
        eprintln!(
            "{} is not a workspace root (no Cargo.toml with [workspace]); pass --root",
            root.display()
        );
        return ExitCode::from(2);
    }

    if update {
        return match detlint::manifest::update(&root) {
            Ok(summary) => {
                println!("detlint: wrote {summary}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("detlint: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let violations = detlint::lint_workspace(&root);
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!(
            "detlint: clean ({} files scanned, {} wire types pinned)",
            detlint::workspace_files(&root).len(),
            detlint::manifest::WIRE_TYPES.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("detlint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
