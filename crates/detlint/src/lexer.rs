//! A minimal Rust token scanner.
//!
//! detlint cannot use `syn` (crates.io is unreachable; see
//! `vendor/README.md`), so — in the same spirit as the vendored
//! `serde_derive` proc macro — it hand-rolls the one part of parsing the
//! rules actually need: a lossless-enough token stream with line
//! numbers, where comments and string/char literals are recognized and
//! set aside. Rules then match identifier/punct *sequences* instead of
//! an AST, which is exactly as precise as the invariants they enforce
//! ("no `HashMap` identifier in a deterministic crate") require.
//!
//! The scanner understands: line and (nested) block comments, string
//! literals with escapes, raw strings `r#"…"#`, byte strings, char
//! literals vs. lifetimes, numbers, and identifiers. Everything else is
//! emitted as single-character punctuation tokens.

/// What a token is; rules mostly care about `Ident`, `Str` and `Punct`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// String literal (cooked, raw, or byte); text excludes the quotes.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Numeric literal.
    Num,
    /// A single punctuation character.
    Punct,
}

/// One scanned token.
#[derive(Debug, Clone)]
pub struct Token {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Token class.
    pub kind: Kind,
    /// Token text (for `Str`, the unquoted body; escapes are kept raw).
    pub text: String,
}

impl Token {
    /// True when this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// True when this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// A `// detlint: allow(<rule>) — <reason>` annotation found in a
/// comment. A well-formed annotation suppresses violations of `rule` on
/// its own line and the next source line.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Rule name inside `allow(…)`.
    pub rule: String,
    /// Justification text after the closing paren (may be empty — the
    /// rules reject reason-less annotations instead of honoring them).
    pub reason: String,
}

/// Scanner output: the token stream plus any allow-annotations.
#[derive(Debug, Default)]
pub struct Scan {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Annotations in source order.
    pub allows: Vec<Allow>,
}

impl Scan {
    /// True when a well-formed (reason-carrying) allow for `rule` covers
    /// `line`: the annotation's own line (trailing comment) or the next
    /// line holding any token — so a multi-line comment explaining the
    /// reason keeps the annotation attached to the code below it.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            if a.rule != rule || a.reason.is_empty() {
                return false;
            }
            if a.line == line {
                return true;
            }
            let next_code_line =
                self.tokens.iter().map(|t| t.line).filter(|&l| l > a.line).min();
            next_code_line == Some(line)
        })
    }
}

/// Tokenizes `src`, collecting detlint annotations from comments.
pub fn scan(src: &str) -> Scan {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Scan::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                collect_allow(&text, line, &mut out.allows);
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let start_line = line;
                let start = i;
                i += 2;
                let mut depth = 1;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text: String = chars[start..i.min(chars.len())].iter().collect();
                collect_allow(&text, start_line, &mut out.allows);
            }
            '"' => {
                let (tok, ni, nl) = cooked_string(&chars, i, line);
                out.tokens.push(tok);
                i = ni;
                line = nl;
            }
            'r' | 'b' if raw_or_byte_prefix(&chars, i).is_some() => {
                let (tok, ni, nl) = raw_or_byte(&chars, i, line);
                out.tokens.push(tok);
                i = ni;
                line = nl;
            }
            '\'' => {
                let (tok, ni) = quote_token(&chars, i, line);
                out.tokens.push(tok);
                i = ni;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    line,
                    kind: Kind::Ident,
                    text: chars[start..i].iter().collect(),
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < chars.len() {
                    let d = chars[i];
                    if d.is_alphanumeric() || d == '_' {
                        i += 1;
                    } else if d == '.'
                        && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                        && chars.get(i - 1).is_some_and(|p| p.is_ascii_digit())
                    {
                        // Decimal point, not a `..` range or method call.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    line,
                    kind: Kind::Num,
                    text: chars[start..i].iter().collect(),
                });
            }
            other => {
                out.tokens.push(Token { line, kind: Kind::Punct, text: other.to_string() });
                i += 1;
            }
        }
    }
    out
}

/// Parses `// detlint: allow(rule) — reason` out of a comment's text.
///
/// The marker must open the comment (after the `//`/`/*` sigils): prose
/// that merely *mentions* the convention — like this doc comment — is
/// not an annotation.
fn collect_allow(comment: &str, line: u32, allows: &mut Vec<Allow>) {
    const MARKER: &str = "detlint: allow(";
    let content = comment.trim_start_matches(['/', '*', '!']).trim_start();
    let Some(rest) = content.strip_prefix(MARKER) else { return };
    let Some(close) = rest.find(')') else { return };
    let rule = rest[..close].trim().to_string();
    // The reason is whatever follows the closing paren, minus separator
    // punctuation (em dash, hyphen, colon) and any block-comment close.
    let reason = rest[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':')
        .trim_end_matches(|c: char| c.is_whitespace() || c == '*' || c == '/')
        .trim()
        .to_string();
    allows.push(Allow { line, rule, reason });
}

/// Scans a cooked string starting at the opening quote. Returns the
/// token, the index after the closing quote, and the updated line.
fn cooked_string(chars: &[char], mut i: usize, mut line: u32) -> (Token, usize, u32) {
    let start_line = line;
    i += 1; // opening quote
    let body_start = i;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => break,
            '\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    let body: String = chars[body_start..i.min(chars.len())].iter().collect();
    (Token { line: start_line, kind: Kind::Str, text: body }, (i + 1).min(chars.len()), line)
}

/// If `r…`/`b…` at `i` introduces a raw/byte literal, returns the
/// number of prefix chars before the `#`s or quote.
fn raw_or_byte_prefix(chars: &[char], i: usize) -> Option<usize> {
    let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
    match chars[i] {
        'r' => match chars.get(i + 1) {
            Some('"') | Some('#') => Some(1),
            _ => None,
        },
        'b' => match (chars.get(i + 1), chars.get(i + 2)) {
            (Some('"'), _) | (Some('\''), _) => Some(1),
            (Some('r'), Some('"')) | (Some('r'), Some('#')) if two == "br" => Some(2),
            _ => None,
        },
        _ => None,
    }
}

/// Scans a raw string, byte string, or byte char starting at its
/// prefix. Returns the token, next index, and updated line.
fn raw_or_byte(chars: &[char], i: usize, mut line: u32) -> (Token, usize, u32) {
    let start_line = line;
    let prefix = raw_or_byte_prefix(chars, i).expect("caller checked prefix");
    let mut j = i + prefix;
    if chars.get(j) == Some(&'\'') {
        // b'x' byte char: scan like a char literal.
        let (tok, nj) = quote_token(chars, j, line);
        return (tok, nj, line);
    }
    let raw = chars[i] == 'r' || (prefix == 2);
    if !raw {
        // b"…": cooked semantics.
        let (tok, ni, nl) = cooked_string(chars, j, line);
        return (tok, ni, nl);
    }
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let body_start = j;
    'outer: while j < chars.len() {
        if chars[j] == '\n' {
            line += 1;
        }
        if chars[j] == '"' {
            let mut k = 0;
            while k < hashes {
                if chars.get(j + 1 + k) != Some(&'#') {
                    j += 1;
                    continue 'outer;
                }
                k += 1;
            }
            let body: String = chars[body_start..j].iter().collect();
            return (
                Token { line: start_line, kind: Kind::Str, text: body },
                j + 1 + hashes,
                line,
            );
        }
        j += 1;
    }
    let body: String = chars[body_start..].iter().collect();
    (Token { line: start_line, kind: Kind::Str, text: body }, chars.len(), line)
}

/// Disambiguates `'a'` (char) from `'a` (lifetime) at a `'`.
fn quote_token(chars: &[char], i: usize, line: u32) -> (Token, usize) {
    let next = chars.get(i + 1).copied();
    match next {
        Some('\\') => {
            // Escaped char literal: the backslash and the escaped char
            // are consumed unconditionally (handles '\'' and '\\'), then
            // scan to the closing quote (handles '\u{…}').
            let mut j = i + 3;
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            let text: String = chars[i + 1..j.min(chars.len())].iter().collect();
            (Token { line, kind: Kind::Char, text }, (j + 1).min(chars.len()))
        }
        Some(c) if c.is_alphabetic() || c == '_' => {
            if chars.get(i + 2) == Some(&'\'') {
                // 'a' — single-char literal.
                (Token { line, kind: Kind::Char, text: c.to_string() }, i + 3)
            } else {
                // Lifetime: consume the identifier.
                let mut j = i + 2;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let text: String = chars[i + 1..j].iter().collect();
                (Token { line, kind: Kind::Lifetime, text }, j)
            }
        }
        Some(c) => {
            // Non-alphabetic char literal like '(' or '0'.
            let end = if chars.get(i + 2) == Some(&'\'') { i + 3 } else { i + 2 };
            (Token { line, kind: Kind::Char, text: c.to_string() }, end)
        }
        None => (Token { line, kind: Kind::Punct, text: "'".into() }, i + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_hide_identifiers() {
        let src = "// HashMap here\n/* HashSet\n nested /* HashMap */ */\nlet x = 1;";
        assert_eq!(idents(src), ["let", "x"]);
    }

    #[test]
    fn strings_hide_identifiers() {
        let src = r####"let s = "HashMap"; let r = r#"HashSet "quoted" body"#; let b = b"HashMap";"####;
        assert_eq!(idents(src), ["let", "s", "let", "r", "let", "b"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let s = scan(src);
        let lifetimes: Vec<_> =
            s.tokens.iter().filter(|t| t.kind == Kind::Lifetime).map(|t| &t.text).collect();
        assert_eq!(lifetimes, ["a", "a"]);
        let chars: Vec<_> =
            s.tokens.iter().filter(|t| t.kind == Kind::Char).map(|t| &t.text).collect();
        assert_eq!(chars, ["x"]);
    }

    #[test]
    fn lines_survive_multiline_strings() {
        let src = "let a = \"one\ntwo\";\nlet b = 9;";
        let s = scan(src);
        let b = s.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn allow_annotations_are_collected() {
        let src = "// detlint: allow(nondet-iter) — membership only\nlet m = 1;\n// detlint: allow(wall-clock)\nlet n = 2;";
        let s = scan(src);
        assert_eq!(s.allows.len(), 2);
        assert_eq!(s.allows[0].rule, "nondet-iter");
        assert_eq!(s.allows[0].reason, "membership only");
        assert!(s.allows[1].reason.is_empty(), "reason-less annotation keeps empty reason");
        assert!(s.allowed("nondet-iter", 2), "annotation covers the next line");
        assert!(!s.allowed("nondet-iter", 4));
        assert!(!s.allowed("wall-clock", 4), "reason-less annotation never suppresses");
    }

    #[test]
    fn numbers_and_ranges() {
        let src = "let x = 1.5; for i in 0..10 { a.0 }";
        let s = scan(src);
        let nums: Vec<_> = s.tokens.iter().filter(|t| t.kind == Kind::Num).map(|t| &t.text).collect();
        assert_eq!(nums, ["1.5", "0", "10", "0"]);
    }
}
