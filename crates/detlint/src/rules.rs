//! The three token-level rule families.
//!
//! Rule names (used in `// detlint: allow(<rule>) — <reason>`
//! annotations and in diagnostics):
//!
//! - `nondet-iter` — a `HashMap`/`HashSet` identifier in a deterministic
//!   crate. Std hash collections iterate in `RandomState` order, which
//!   is exactly how PR 4's `finish()`-drain bug reached a golden
//!   fingerprint; any appearance must either be replaced (`BTreeMap`,
//!   `Vec`, a sorted drain) or annotated with a reason explaining why
//!   the order cannot leak into output.
//! - `wall-clock` — `Instant::now` / `SystemTime` in a deterministic
//!   crate. Simulated components take time as an argument; reading the
//!   host clock forks the timeline.
//! - `float-total-order` — `partial_cmp(..).unwrap()` (or `.expect`)
//!   inside a sort/min/max comparator. One NaN panics the campaign;
//!   `f64::total_cmp` is the drop-in fix.
//!
//! An annotation suppresses a rule on its own line and the next code
//! line (comment continuation lines in between are fine), and **must**
//! carry a reason — a bare `detlint: allow(rule)` is itself
//! reported (as `bad-annotation`) rather than honored, so the paper
//! trail the annotation exists for cannot be skipped.

use crate::lexer::{scan, Kind, Scan};

/// One rule hit.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule family name (`nondet-iter`, `wall-clock`,
    /// `float-total-order`, `bad-annotation`, or `wire-manifest`).
    pub rule: &'static str,
    /// Path as reported (workspace-relative for real files).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description with the suggested fix.
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "error[{}]: {}:{}: {}", self.rule, self.file, self.line, self.msg)
    }
}

/// How a file is classified for rule selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// Deterministic code: `nondet-iter` and `wall-clock` apply.
    /// (`float-total-order` applies everywhere — a NaN panic is a bug
    /// in benches and live tools too.)
    pub deterministic: bool,
}

/// Known rule names (what `allow(...)` may name).
const RULES: [&str; 3] = ["nondet-iter", "wall-clock", "float-total-order"];

/// Comparator-taking methods whose closure argument must not unwrap
/// `partial_cmp`.
const COMPARATOR_METHODS: [&str; 5] =
    ["sort_by", "sort_unstable_by", "binary_search_by", "max_by", "min_by"];

/// Lints one file's source text. `file` is used verbatim in
/// diagnostics.
pub fn lint_source(file: &str, src: &str, class: FileClass) -> Vec<Violation> {
    let s = scan(src);
    let mut out = Vec::new();
    check_annotations(file, &s, &mut out);
    if class.deterministic {
        nondet_iter(file, &s, &mut out);
        wall_clock(file, &s, &mut out);
    }
    float_total_order(file, &s, &mut out);
    out.sort_by_key(|v| v.line);
    // One report per (rule, line): `let m: HashMap<_, _> = HashMap::new()`
    // is one finding, not two.
    out.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    out
}

/// Marks which token indices sit inside a `use …;` declaration, where
/// naming a type is importing it, not using it — every *use* site still
/// gets flagged, so one import never needs two annotations.
fn use_decl_mask(s: &Scan) -> Vec<bool> {
    let mut mask = vec![false; s.tokens.len()];
    let mut i = 0;
    while i < s.tokens.len() {
        if s.tokens[i].is_ident("use") {
            while i < s.tokens.len() && !s.tokens[i].is_punct(';') {
                mask[i] = true;
                i += 1;
            }
        }
        i += 1;
    }
    mask
}

/// Reports malformed or unknown annotations; a bad annotation is a
/// violation in its own right because it *looks* like a suppression.
fn check_annotations(file: &str, s: &Scan, out: &mut Vec<Violation>) {
    for a in &s.allows {
        if !RULES.contains(&a.rule.as_str()) {
            out.push(Violation {
                rule: "bad-annotation",
                file: file.into(),
                line: a.line,
                msg: format!(
                    "`allow({})` names no detlint rule (known: {})",
                    a.rule,
                    RULES.join(", ")
                ),
            });
        } else if a.reason.is_empty() {
            out.push(Violation {
                rule: "bad-annotation",
                file: file.into(),
                line: a.line,
                msg: format!(
                    "`allow({})` has no reason; write `// detlint: allow({}) — <why the \
                     suppression is sound>`",
                    a.rule, a.rule
                ),
            });
        }
    }
}

/// Rule `nondet-iter`: std hash-collection identifiers in deterministic
/// code.
fn nondet_iter(file: &str, s: &Scan, out: &mut Vec<Violation>) {
    let in_use = use_decl_mask(s);
    for (i, t) in s.tokens.iter().enumerate() {
        if t.kind != Kind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        if in_use[i] || s.allowed("nondet-iter", t.line) {
            continue;
        }
        out.push(Violation {
            rule: "nondet-iter",
            file: file.into(),
            line: t.line,
            msg: format!(
                "std `{}` in a deterministic crate: iteration/drain order is per-process \
                 random. Use `BTree{}`/`Vec`, or annotate `// detlint: allow(nondet-iter) — \
                 <why order cannot leak>`",
                t.text,
                &t.text[4..]
            ),
        });
    }
}

/// Rule `wall-clock`: host-clock reads in deterministic code.
fn wall_clock(file: &str, s: &Scan, out: &mut Vec<Violation>) {
    let in_use = use_decl_mask(s);
    for (i, t) in s.tokens.iter().enumerate() {
        if in_use[i] {
            continue;
        }
        let hit = if t.is_ident("SystemTime") {
            true
        } else if t.is_ident("Instant") {
            // Only `Instant::now` forks the timeline; an `Instant` in a
            // type position is caught where it is produced.
            s.tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && s.tokens.get(i + 2).is_some_and(|b| b.is_punct(':'))
                && s.tokens.get(i + 3).is_some_and(|c| c.is_ident("now"))
        } else {
            false
        };
        if !hit || s.allowed("wall-clock", t.line) {
            continue;
        }
        out.push(Violation {
            rule: "wall-clock",
            file: file.into(),
            line: t.line,
            msg: format!(
                "`{}` in a deterministic crate: simulated components take time as an \
                 argument (`SimTime`), never read the host clock",
                if t.text == "SystemTime" { "SystemTime" } else { "Instant::now" }
            ),
        });
    }
}

/// Rule `float-total-order`: `partial_cmp` + `unwrap`/`expect` inside a
/// comparator argument list.
fn float_total_order(file: &str, s: &Scan, out: &mut Vec<Violation>) {
    for (i, t) in s.tokens.iter().enumerate() {
        if t.kind != Kind::Ident || !COMPARATOR_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        let Some(open) = s.tokens.get(i + 1) else { continue };
        if !open.is_punct('(') {
            continue;
        }
        // Walk the argument list to its matching close paren.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut partial: Option<u32> = None;
        let mut unwrapped = false;
        while j < s.tokens.len() {
            let u = &s.tokens[j];
            if u.is_punct('(') {
                depth += 1;
            } else if u.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if u.is_ident("partial_cmp") {
                partial = Some(u.line);
            } else if u.is_ident("unwrap") || u.is_ident("expect") {
                unwrapped = true;
            }
            j += 1;
        }
        if let (Some(line), true) = (partial, unwrapped) {
            if s.allowed("float-total-order", line) {
                continue;
            }
            out.push(Violation {
                rule: "float-total-order",
                file: file.into(),
                line,
                msg: format!(
                    "`partial_cmp(..).unwrap()` inside `{}`: one NaN panics the run. Use \
                     `f64::total_cmp` (or filter NaNs and annotate)",
                    t.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DET: FileClass = FileClass { deterministic: true };
    const FREE: FileClass = FileClass { deterministic: false };

    #[test]
    fn hash_collections_flagged_only_in_deterministic_code() {
        let src = "fn f() { let m = std::collections::HashMap::new(); m }";
        let v = lint_source("x.rs", src, DET);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "nondet-iter");
        assert!(lint_source("x.rs", src, FREE).is_empty());
    }

    #[test]
    fn use_declaration_is_not_a_use_site() {
        let src = "use std::collections::{HashMap, HashSet};\nfn f() {}";
        assert!(lint_source("x.rs", src, DET).is_empty());
        let src2 = "use std::collections::HashMap;\nfn f() { HashMap::<u32, u32>::new(); }";
        let v = lint_source("x.rs", src2, DET);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn annotation_with_reason_suppresses_next_line() {
        let src = "// detlint: allow(nondet-iter) — membership only, never iterated\n\
                   fn f() { let s: std::collections::HashSet<u32> = Default::default(); s }";
        assert!(lint_source("x.rs", src, DET).is_empty());
    }

    #[test]
    fn reasonless_annotation_is_itself_flagged_and_suppresses_nothing() {
        let src = "// detlint: allow(nondet-iter)\n\
                   fn f() { let s: std::collections::HashSet<u32> = Default::default(); s }";
        let v = lint_source("x.rs", src, DET);
        let rules: Vec<_> = v.iter().map(|x| x.rule).collect();
        assert_eq!(rules, ["bad-annotation", "nondet-iter"]);
    }

    #[test]
    fn unknown_rule_annotation_flagged() {
        let v = lint_source("x.rs", "// detlint: allow(no-such-rule) — hm\n", DET);
        assert_eq!(v[0].rule, "bad-annotation");
    }

    #[test]
    fn instant_now_flagged_but_instant_type_is_not() {
        let src = "fn f(deadline: Instant) -> Instant { deadline }";
        assert!(lint_source("x.rs", src, DET).is_empty());
        let src2 = "fn f() { let t = Instant::now(); t }";
        let v = lint_source("x.rs", src2, DET);
        assert_eq!(v[0].rule, "wall-clock");
        let src3 = "fn f() { let t = SystemTime::now(); t }";
        assert_eq!(lint_source("x.rs", src3, DET)[0].rule, "wall-clock");
    }

    #[test]
    fn partial_cmp_unwrap_in_sort_flagged_everywhere() {
        let src = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        for class in [DET, FREE] {
            let v = lint_source("x.rs", src, class);
            assert_eq!(v.len(), 1, "{class:?}");
            assert_eq!(v[0].rule, "float-total-order");
        }
    }

    #[test]
    fn total_cmp_and_partial_ord_impls_pass() {
        let src = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.total_cmp(b)); }\n\
                   impl PartialOrd for X { fn partial_cmp(&self, o: &X) -> Option<Ordering> { None } }";
        assert!(lint_source("x.rs", src, FREE).is_empty());
    }

    #[test]
    fn partial_cmp_outside_comparator_is_not_flagged() {
        // Unwrapping a lone partial_cmp is still a panic hazard, but the
        // rule scopes itself to comparators where the blast radius is a
        // whole sort; keep the signal precise.
        let src = "fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b).unwrap(); }";
        assert!(lint_source("x.rs", src, FREE).is_empty());
    }

    #[test]
    fn string_and_comment_mentions_do_not_trip_rules() {
        let src = "// HashMap would be wrong here\nfn f() { let s = \"HashMap Instant::now\"; s }";
        assert!(lint_source("x.rs", src, DET).is_empty());
    }
}
