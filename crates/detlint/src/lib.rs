//! `detlint` — workspace determinism & wire-invariant linter.
//!
//! The repo's two hardest-won invariants are (a) campaign reports are
//! byte-identical across shard counts, worker fleets, and injected
//! faults, and (b) wire-type layout changes always ride with a version
//! bump. Both were defended only by runtime equivalence suites — which
//! catch a violation *after* a golden fingerprint moves. This crate
//! checks them statically, before anything runs:
//!
//! - [`rules`] — token-level rule families over every workspace source
//!   file: `nondet-iter`, `wall-clock`, `float-total-order`.
//! - [`manifest`] — the `wire-manifest` family: wire-type field sets
//!   extracted from source and pinned in `WIRE_MANIFEST.json`.
//! - [`lexer`] — the hand-rolled token scanner underneath (crates.io /
//!   `syn` is unreachable here; see `vendor/README.md`).
//!
//! Run it with `cargo run -p detlint` (CI gates on it); suppress a
//! finding with `// detlint: allow(<rule>) — <reason>` on the offending
//! line or the line above. The reason is mandatory.

pub mod lexer;
pub mod manifest;
pub mod rules;

use rules::{FileClass, Violation};
use std::path::{Path, PathBuf};

/// Crates whose code must be deterministic: everything that runs inside
/// a simulated campaign or merges its results. `live` and `bench` drive
/// real sockets and wall-clock benchmarks; `core::distrib` coordinates
/// real workers with real lease deadlines — those are allowlisted, as
/// is `detlint` itself (a build tool).
const DETERMINISTIC_CRATES: [&str; 6] = ["netsim", "trace", "analysis", "overlay", "fec", "core"];

/// Files inside deterministic crates that are nevertheless free to read
/// the host clock / use hash collections: the distributed coordinator
/// runs against real TCP peers, not the simulator.
const DETERMINISTIC_EXCEPTIONS: [&str; 1] = ["crates/core/src/distrib.rs"];

/// Classifies a workspace-relative path for rule selection.
pub fn classify(rel: &str) -> FileClass {
    let deterministic = DETERMINISTIC_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/")))
        && !DETERMINISTIC_EXCEPTIONS.contains(&rel);
    FileClass { deterministic }
}

/// Collects the `.rs` files detlint scans: workspace crates plus the
/// facade, examples and integration tests. `vendor/` (API stand-ins,
/// not our invariants), `target/`, and detlint's own violation fixtures
/// are excluded.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "src", "examples", "tests"] {
        collect_rs(&root.join(top), root, &mut out);
    }
    out.sort();
    out
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for e in entries.flatten() {
        let path = e.path();
        let rel = rel_str(&path, root);
        if rel.starts_with("vendor/")
            || rel.starts_with("target/")
            || rel.starts_with("crates/detlint/tests/fixtures")
        {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, root, out);
        } else if rel.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn rel_str(path: &Path, root: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

/// Lints the whole workspace: every scanned file through the token
/// rules, plus the wire-manifest check. Violations are sorted by file
/// then line.
pub fn lint_workspace(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    for path in workspace_files(root) {
        let rel = rel_str(&path, root);
        let Ok(src) = std::fs::read_to_string(&path) else {
            out.push(Violation {
                rule: "wire-manifest",
                file: rel,
                line: 1,
                msg: "unreadable file".into(),
            });
            continue;
        };
        out.extend(rules::lint_source(&rel, &src, classify(&rel)));
    }
    out.extend(manifest::check(root));
    out.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_the_design() {
        assert!(classify("crates/netsim/src/rng.rs").deterministic);
        assert!(classify("crates/fec/src/interleave.rs").deterministic);
        assert!(classify("crates/overlay/tests/proptest_dissem.rs").deterministic);
        assert!(!classify("crates/core/src/distrib.rs").deterministic, "distrib exception");
        assert!(classify("crates/core/src/report.rs").deterministic);
        assert!(!classify("crates/live/src/driver.rs").deterministic);
        assert!(!classify("crates/bench/src/bin/repro.rs").deterministic);
        assert!(!classify("tests/distributed_equivalence.rs").deterministic);
        assert!(!classify("examples/quickstart.rs").deterministic);
        assert!(!classify("crates/detlint/src/rules.rs").deterministic);
    }
}
