//! Rule family `wire-manifest`: the checked-in wire-shape golden.
//!
//! Every type that crosses the distributed-campaign wire (or is merged
//! from a shard) has its field set extracted *from source* — derive'd
//! structs/enums by their declaration, hand-written serde impls by the
//! string keys their `to_value` emits — and compared against the
//! checked-in [`MANIFEST_FILE`]. The rule CHANGES.md stated but nobody
//! enforced ("bump `OUTPUT_WIRE_VERSION` when an accumulator's serde
//! layout changes") becomes mechanical: a field-set drift with an
//! unchanged governing version fails `detlint`, and `--update-manifest`
//! refuses to regenerate over it.
//!
//! The manifest is rendered deterministically (types and fields sorted,
//! fixed 2-space indentation) so its diffs review like any other
//! golden.

use crate::lexer::{scan, Kind, Token};
use crate::rules::Violation;
use std::fmt::Write as _;
use std::path::Path;

/// The golden's filename at the workspace root.
pub const MANIFEST_FILE: &str = "WIRE_MANIFEST.json";

/// How a wire type's field set is declared in source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeShape {
    /// `#[derive(Serialize, Deserialize)] struct` — wire keys are the
    /// field names.
    DeriveStruct,
    /// Derived enum (externally tagged) — wire keys are
    /// `Variant.field` / bare `Variant` for unit variants.
    DeriveEnum,
    /// Hand-written `impl serde::Serialize` — wire keys are the string
    /// literals fed to `.into()` in `to_value`.
    Handwritten,
}

impl TypeShape {
    fn label(self) -> &'static str {
        match self {
            TypeShape::DeriveStruct => "derive-struct",
            TypeShape::DeriveEnum => "derive-enum",
            TypeShape::Handwritten => "handwritten",
        }
    }
}

/// Which version pin governs a wire type's compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionTag {
    /// A named workspace constant (its value is recorded in the
    /// manifest's `versions` map).
    Const(&'static str),
    /// The integer literal the type's own `to_value` writes under `"v"`.
    Inline,
}

/// One type the manifest tracks.
#[derive(Debug, Clone, Copy)]
pub struct WireTypeSpec {
    /// Type name as written in source.
    pub name: &'static str,
    /// Workspace-relative file holding the declaration/impl.
    pub file: &'static str,
    /// How to extract its field set.
    pub shape: TypeShape,
    /// Its governing version pin.
    pub version: VersionTag,
}

/// A version constant the manifest records.
#[derive(Debug, Clone, Copy)]
pub struct VersionConstSpec {
    /// Constant name.
    pub name: &'static str,
    /// Workspace-relative file declaring it.
    pub file: &'static str,
}

/// The workspace's wire surface: every type whose serde layout is load-
/// bearing for cross-host byte-identity.
pub const WIRE_TYPES: &[WireTypeSpec] = &[
    WireTypeSpec {
        name: "ExperimentOutput",
        file: "crates/core/src/experiment.rs",
        shape: TypeShape::Handwritten,
        version: VersionTag::Const("OUTPUT_WIRE_VERSION"),
    },
    WireTypeSpec {
        name: "LossAccum",
        file: "crates/analysis/src/loss.rs",
        shape: TypeShape::Handwritten,
        version: VersionTag::Inline,
    },
    WireTypeSpec {
        name: "WindowAccum",
        file: "crates/analysis/src/windows.rs",
        shape: TypeShape::Handwritten,
        version: VersionTag::Inline,
    },
    WireTypeSpec {
        name: "Histogram",
        file: "crates/analysis/src/cdf.rs",
        shape: TypeShape::Handwritten,
        version: VersionTag::Inline,
    },
    WireTypeSpec {
        name: "NetCounters",
        file: "crates/netsim/src/net.rs",
        shape: TypeShape::DeriveStruct,
        version: VersionTag::Const("OUTPUT_WIRE_VERSION"),
    },
    WireTypeSpec {
        name: "CollectorStats",
        file: "crates/trace/src/collect.rs",
        shape: TypeShape::DeriveStruct,
        version: VersionTag::Const("OUTPUT_WIRE_VERSION"),
    },
    WireTypeSpec {
        name: "Msg",
        file: "crates/core/src/distrib.rs",
        shape: TypeShape::DeriveEnum,
        version: VersionTag::Const("PROTO_VERSION"),
    },
];

/// The version constants backing [`VersionTag::Const`] pins.
pub const VERSION_CONSTS: &[VersionConstSpec] = &[
    VersionConstSpec { name: "OUTPUT_WIRE_VERSION", file: "crates/core/src/experiment.rs" },
    VersionConstSpec { name: "PROTO_VERSION", file: "crates/core/src/distrib.rs" },
];

/// One extracted type entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeEntry {
    /// Type name.
    pub name: String,
    /// Workspace-relative source file.
    pub file: String,
    /// Shape label (`derive-struct` / `derive-enum` / `handwritten`).
    pub kind: &'static str,
    /// Governing version: a constant name, or `inline:<n>`.
    pub version: String,
    /// Sorted wire field names.
    pub fields: Vec<String>,
}

/// The full extracted manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// `(constant name, value)`, sorted by name.
    pub versions: Vec<(String, u64)>,
    /// Type entries, sorted by name.
    pub types: Vec<TypeEntry>,
}

impl Manifest {
    /// Renders the manifest to its canonical on-disk JSON form. Two
    /// extractions of the same source produce byte-identical output.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(
            "  \"_readme\": \"Machine-maintained wire-shape golden: regenerate with `cargo run \
             -p detlint -- --update-manifest`. Changing any listed type's field set requires \
             bumping its governing version in the same PR; detlint fails the build (and refuses \
             to regenerate) otherwise.\",\n",
        );
        s.push_str("  \"manifest_version\": 1,\n");
        s.push_str("  \"versions\": {\n");
        for (i, (name, val)) in self.versions.iter().enumerate() {
            let comma = if i + 1 < self.versions.len() { "," } else { "" };
            let _ = writeln!(s, "    \"{name}\": {val}{comma}");
        }
        s.push_str("  },\n");
        s.push_str("  \"types\": {\n");
        for (i, t) in self.types.iter().enumerate() {
            let _ = writeln!(s, "    \"{}\": {{", t.name);
            let _ = writeln!(s, "      \"file\": \"{}\",", t.file);
            let _ = writeln!(s, "      \"kind\": \"{}\",", t.kind);
            let _ = writeln!(s, "      \"version\": \"{}\",", t.version);
            s.push_str("      \"fields\": [\n");
            for (j, f) in t.fields.iter().enumerate() {
                let comma = if j + 1 < t.fields.len() { "," } else { "" };
                let _ = writeln!(s, "        \"{f}\"{comma}");
            }
            s.push_str("      ]\n");
            let comma = if i + 1 < self.types.len() { "," } else { "" };
            let _ = writeln!(s, "    }}{comma}");
        }
        s.push_str("  }\n}\n");
        s
    }
}

/// Extracts the manifest for the given specs, reading sources under
/// `root`. Errors name the type or constant that failed to extract.
pub fn extract(
    root: &Path,
    types: &[WireTypeSpec],
    consts: &[VersionConstSpec],
) -> Result<Manifest, String> {
    let mut versions = Vec::new();
    for c in consts {
        let toks = scan_file(root, c.file)?;
        let val = extract_const(&toks, c.name)
            .ok_or_else(|| format!("{}: const `{}` not found", c.file, c.name))?;
        versions.push((c.name.to_string(), val));
    }
    versions.sort();
    let mut entries = Vec::new();
    for t in types {
        let toks = scan_file(root, t.file)?;
        let (mut fields, inline) = match t.shape {
            TypeShape::DeriveStruct => (
                extract_struct_fields(&toks, t.name)
                    .ok_or_else(|| format!("{}: struct `{}` not found", t.file, t.name))?,
                None,
            ),
            TypeShape::DeriveEnum => (
                extract_enum_fields(&toks, t.name)
                    .ok_or_else(|| format!("{}: enum `{}` not found", t.file, t.name))?,
                None,
            ),
            TypeShape::Handwritten => {
                let (f, v) = extract_handwritten(&toks, t.name, consts).ok_or_else(|| {
                    format!("{}: `impl serde::Serialize for {}` not found", t.file, t.name)
                })?;
                (f, Some(v))
            }
        };
        fields.sort();
        fields.dedup();
        let version = match (t.version, inline) {
            (VersionTag::Const(c), Some(HandwrittenVersion::Const(found))) if found == c => {
                c.to_string()
            }
            (VersionTag::Const(c), None) => c.to_string(),
            (VersionTag::Inline, Some(HandwrittenVersion::Inline(n))) => format!("inline:{n}"),
            (tag, found) => {
                return Err(format!(
                    "{}: `{}` version pin mismatch: spec says {tag:?}, source says {found:?}",
                    t.file, t.name
                ))
            }
        };
        entries.push(TypeEntry {
            name: t.name.to_string(),
            file: t.file.to_string(),
            kind: t.shape.label(),
            version,
            fields,
        });
    }
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(Manifest { versions, types: entries })
}

fn scan_file(root: &Path, rel: &str) -> Result<Vec<Token>, String> {
    let path = root.join(rel);
    let src = std::fs::read_to_string(&path).map_err(|e| format!("{rel}: {e}"))?;
    Ok(scan(&src).tokens)
}

/// Finds `const <name> … = <int>`.
fn extract_const(toks: &[Token], name: &str) -> Option<u64> {
    for i in 0..toks.len() {
        if toks[i].is_ident("const") && toks.get(i + 1).is_some_and(|t| t.is_ident(name)) {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('=') {
                j += 1;
            }
            while j < toks.len() {
                if toks[j].kind == Kind::Num {
                    return parse_int(&toks[j].text);
                }
                j += 1;
            }
        }
    }
    None
}

/// Parses the leading digits of a numeric literal (`3`, `3u32`,
/// `1_000`).
fn parse_int(text: &str) -> Option<u64> {
    let digits: String = text.chars().take_while(|c| c.is_ascii_digit() || *c == '_').collect();
    digits.replace('_', "").parse().ok()
}

/// Collects named fields (`ident:` at top depth) between `open` and its
/// matching close brace; returns `(fields, index after the close)`.
fn braced_fields(toks: &[Token], open: usize) -> (Vec<String>, usize) {
    let mut fields = Vec::new();
    let mut bd = 1i32; // brace depth relative to `open`
    let mut pd = 0i32; // paren/bracket/angle-free: parens and squares only
    let mut i = open + 1;
    while i < toks.len() && bd > 0 {
        let t = &toks[i];
        if t.is_punct('{') {
            bd += 1;
        } else if t.is_punct('}') {
            bd -= 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            pd += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            pd -= 1;
        } else if bd == 1
            && pd == 0
            && t.kind == Kind::Ident
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|b| b.is_punct(':'))
        {
            // `name:` but not `path::` — a field declaration.
            fields.push(t.text.clone());
        }
        i += 1;
    }
    (fields, i)
}

/// Field names of `#[derive(Serialize…)] struct <name> { … }`.
fn extract_struct_fields(toks: &[Token], name: &str) -> Option<Vec<String>> {
    for i in 0..toks.len() {
        if toks[i].is_ident("struct") && toks.get(i + 1).is_some_and(|t| t.is_ident(name)) {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                if toks[j].is_punct(';') || toks[j].is_punct('(') {
                    // Unit or tuple struct: no named wire fields to track.
                    return None;
                }
                j += 1;
            }
            if j == toks.len() {
                return None;
            }
            return Some(braced_fields(toks, j).0);
        }
    }
    None
}

/// Wire keys of a derived enum: `Variant.field` per struct-variant
/// field, `Variant.<k>` per tuple-variant slot, bare `Variant` for unit
/// variants.
fn extract_enum_fields(toks: &[Token], name: &str) -> Option<Vec<String>> {
    let start = (0..toks.len()).find(|&i| {
        toks[i].is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.is_ident(name))
    })?;
    let mut j = start + 2;
    while j < toks.len() && !toks[j].is_punct('{') {
        j += 1;
    }
    if j == toks.len() {
        return None;
    }
    let mut out = Vec::new();
    let mut i = j + 1;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('}') {
            break;
        }
        if t.is_punct('#') {
            // Skip an attribute: `#[…]` with balanced brackets.
            i += 1;
            if toks.get(i).is_some_and(|a| a.is_punct('[')) {
                let mut sd = 1i32;
                i += 1;
                while i < toks.len() && sd > 0 {
                    if toks[i].is_punct('[') {
                        sd += 1;
                    } else if toks[i].is_punct(']') {
                        sd -= 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        if t.is_punct(',') {
            i += 1;
            continue;
        }
        if t.kind != Kind::Ident {
            i += 1;
            continue;
        }
        let variant = t.text.clone();
        match toks.get(i + 1) {
            Some(n) if n.is_punct('{') => {
                let (fields, next) = braced_fields(toks, i + 1);
                for f in fields {
                    out.push(format!("{variant}.{f}"));
                }
                i = next;
            }
            Some(n) if n.is_punct('(') => {
                // Tuple variant: count top-level slots.
                let mut pd = 1i32;
                let mut slots = 0usize;
                let mut saw_any = false;
                let mut k = i + 2;
                while k < toks.len() && pd > 0 {
                    let u = &toks[k];
                    if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                        pd += 1;
                    } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
                        pd -= 1;
                    } else if pd == 1 && u.is_punct(',') {
                        slots += 1;
                    } else {
                        saw_any = true;
                    }
                    k += 1;
                }
                if saw_any {
                    slots += 1;
                }
                for s in 0..slots {
                    out.push(format!("{variant}.{s}"));
                }
                i = k;
            }
            _ => {
                out.push(variant);
                i += 1;
            }
        }
    }
    Some(out)
}

/// What a hand-written impl declares as its wire version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandwrittenVersion {
    /// `("v".into(), Value::Int(<n>))`.
    Inline(u64),
    /// `("v".into(), Value::Int(<CONST> as i64))`.
    Const(String),
}

/// Wire keys and version of `impl serde::Serialize for <name>`: every
/// string literal fed to `.into()` inside the impl block is a key; the
/// expression paired with the `"v"` key yields the version.
fn extract_handwritten(
    toks: &[Token],
    name: &str,
    consts: &[VersionConstSpec],
) -> Option<(Vec<String>, HandwrittenVersion)> {
    let at = (0..toks.len()).find(|&i| {
        toks[i].is_ident("Serialize")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("for"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident(name))
    })?;
    let mut open = at + 3;
    while open < toks.len() && !toks[open].is_punct('{') {
        open += 1;
    }
    if open == toks.len() {
        return None;
    }
    let mut bd = 1i32;
    let mut i = open + 1;
    let mut keys = Vec::new();
    let mut key_positions = Vec::new();
    while i < toks.len() && bd > 0 {
        let t = &toks[i];
        if t.is_punct('{') {
            bd += 1;
        } else if t.is_punct('}') {
            bd -= 1;
        } else if t.kind == Kind::Str
            && toks.get(i + 1).is_some_and(|a| a.is_punct('.'))
            && toks.get(i + 2).is_some_and(|b| b.is_ident("into"))
            && toks.get(i + 3).is_some_and(|c| c.is_punct('('))
            && toks.get(i + 4).is_some_and(|d| d.is_punct(')'))
        {
            keys.push(t.text.clone());
            key_positions.push(i);
        }
        i += 1;
    }
    let end = i;
    // Version: scan the value expression after the `"v"` key, up to the
    // next key (or the end of the impl), for the first integer literal
    // or known version constant.
    let vk = key_positions.get(keys.iter().position(|k| k == "v")?)?;
    let next_key =
        key_positions.iter().find(|&&p| p > *vk).copied().unwrap_or(end);
    let mut version = None;
    for t in &toks[vk + 5..next_key] {
        if t.kind == Kind::Num {
            version = parse_int(&t.text).map(HandwrittenVersion::Inline);
            break;
        }
        if t.kind == Kind::Ident && consts.iter().any(|c| c.name == t.text) {
            version = Some(HandwrittenVersion::Const(t.text.clone()));
            break;
        }
    }
    Some((keys, version?))
}

/// Checks the workspace's extracted wire surface against the checked-in
/// manifest; returns `wire-manifest` violations on any drift.
pub fn check(root: &Path) -> Vec<Violation> {
    check_with(root, WIRE_TYPES, VERSION_CONSTS)
}

/// [`check`] with explicit specs (fixture tests use this).
pub fn check_with(
    root: &Path,
    types: &[WireTypeSpec],
    consts: &[VersionConstSpec],
) -> Vec<Violation> {
    let mf = |line: u32, msg: String| Violation {
        rule: "wire-manifest",
        file: MANIFEST_FILE.into(),
        line,
        msg,
    };
    let current = match extract(root, types, consts) {
        Ok(m) => m,
        Err(e) => return vec![mf(1, format!("extraction failed: {e}"))],
    };
    let path = root.join(MANIFEST_FILE);
    let golden = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(_) => {
            return vec![mf(
                1,
                format!("{MANIFEST_FILE} missing — run `cargo run -p detlint -- --update-manifest`"),
            )]
        }
    };
    if golden == current.render() {
        return Vec::new();
    }
    // Drift. Classify per type against the parsed golden so the message
    // says whether a version bump is missing.
    let mut out = Vec::new();
    match parse_manifest(&golden) {
        Ok(old) => {
            for t in &current.types {
                let Some(prev) = old.types.iter().find(|p| p.name == t.name) else {
                    out.push(mf(1, format!("`{}` is new — regenerate the manifest", t.name)));
                    continue;
                };
                if prev.fields != t.fields {
                    let bumped = version_bumped(&old, &current, prev, t);
                    if bumped {
                        out.push(mf(
                            1,
                            format!(
                                "`{}` field set changed (version bump seen) — regenerate with \
                                 `cargo run -p detlint -- --update-manifest`",
                                t.name
                            ),
                        ));
                    } else {
                        out.push(mf(
                            1,
                            format!(
                                "`{}` field set drifted without a `{}` bump: was [{}], now [{}]. \
                                 Bump the version, then regenerate the manifest",
                                t.name,
                                t.version,
                                prev.fields.join(", "),
                                t.fields.join(", ")
                            ),
                        ));
                    }
                }
            }
            for p in &old.types {
                if !current.types.iter().any(|t| t.name == p.name) {
                    out.push(mf(1, format!("`{}` vanished from source — regenerate", p.name)));
                }
            }
            if out.is_empty() {
                // Same fields, different bytes: version values or
                // formatting moved.
                out.push(mf(
                    1,
                    "stale (version values or formatting changed) — regenerate with \
                     `cargo run -p detlint -- --update-manifest`"
                        .into(),
                ));
            }
        }
        Err(e) => out.push(mf(1, format!("unparseable ({e}) — regenerate"))),
    }
    out
}

/// True when `t`'s governing version moved between `old` and `new`.
fn version_bumped(old: &Manifest, new: &Manifest, prev: &TypeEntry, t: &TypeEntry) -> bool {
    if prev.version != t.version {
        return true; // inline:N moved, or the pin itself was renamed
    }
    // Same pin name: compare the recorded constant values.
    let ov = old.versions.iter().find(|(n, _)| *n == t.version).map(|(_, v)| *v);
    let nv = new.versions.iter().find(|(n, _)| *n == t.version).map(|(_, v)| *v);
    match (ov, nv) {
        (Some(a), Some(b)) => a != b,
        _ => !t.version.starts_with("inline:"),
    }
}

/// Regenerates the manifest, refusing when a field set changed without
/// its governing version moving. Returns a human-readable summary.
pub fn update(root: &Path) -> Result<String, String> {
    update_with(root, WIRE_TYPES, VERSION_CONSTS)
}

/// [`update`] with explicit specs (fixture tests use this).
pub fn update_with(
    root: &Path,
    types: &[WireTypeSpec],
    consts: &[VersionConstSpec],
) -> Result<String, String> {
    let current = extract(root, types, consts)?;
    let path = root.join(MANIFEST_FILE);
    if let Ok(golden) = std::fs::read_to_string(&path) {
        let old = parse_manifest(&golden)
            .map_err(|e| format!("existing {MANIFEST_FILE} is unparseable: {e}"))?;
        let mut refusals = Vec::new();
        for t in &current.types {
            if let Some(prev) = old.types.iter().find(|p| p.name == t.name) {
                if prev.fields != t.fields && !version_bumped(&old, &current, prev, t) {
                    refusals.push(format!(
                        "`{}` field set changed ([{}] -> [{}]) but `{}` did not move",
                        t.name,
                        prev.fields.join(", "),
                        t.fields.join(", "),
                        t.version
                    ));
                }
            }
        }
        if !refusals.is_empty() {
            return Err(format!(
                "refusing to regenerate: wire drift without a version bump\n  {}",
                refusals.join("\n  ")
            ));
        }
    }
    let rendered = current.render();
    std::fs::write(&path, &rendered).map_err(|e| format!("writing {MANIFEST_FILE}: {e}"))?;
    Ok(format!(
        "{MANIFEST_FILE}: {} types, {} version pins",
        current.types.len(),
        current.versions.len()
    ))
}

/// Parses a rendered manifest back into the in-memory form (the inverse
/// of [`Manifest::render`], modulo the `_readme` text).
pub fn parse_manifest(text: &str) -> Result<Manifest, String> {
    let v = serde_json::parse(text).map_err(|e| e.to_string())?;
    let as_u64 = |x: &serde::Value| -> Result<u64, String> {
        match x {
            serde::Value::Int(i) if *i >= 0 => Ok(*i as u64),
            serde::Value::UInt(u) => Ok(*u),
            other => Err(format!("expected integer, found {}", other.kind())),
        }
    };
    let as_str = |x: &serde::Value| -> Result<String, String> {
        match x {
            serde::Value::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, found {}", other.kind())),
        }
    };
    let serde::Value::Map(versions) = v.field("versions").map_err(|e| e.to_string())? else {
        return Err("`versions` is not a map".into());
    };
    let mut vs = Vec::new();
    for (name, val) in versions {
        vs.push((name.clone(), as_u64(val)?));
    }
    vs.sort();
    let serde::Value::Map(types) = v.field("types").map_err(|e| e.to_string())? else {
        return Err("`types` is not a map".into());
    };
    let mut ts = Vec::new();
    for (name, body) in types {
        let serde::Value::Seq(fields) = body.field("fields").map_err(|e| e.to_string())? else {
            return Err(format!("`{name}.fields` is not a list"));
        };
        let kind_s = as_str(body.field("kind").map_err(|e| e.to_string())?)?;
        let kind = [TypeShape::DeriveStruct, TypeShape::DeriveEnum, TypeShape::Handwritten]
            .into_iter()
            .map(TypeShape::label)
            .find(|l| *l == kind_s)
            .ok_or_else(|| format!("`{name}.kind` unknown: {kind_s}"))?;
        ts.push(TypeEntry {
            name: name.clone(),
            file: as_str(body.field("file").map_err(|e| e.to_string())?)?,
            kind,
            version: as_str(body.field("version").map_err(|e| e.to_string())?)?,
            fields: fields.iter().map(as_str).collect::<Result<_, _>>()?,
        });
    }
    ts.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(Manifest { versions: vs, types: ts })
}
