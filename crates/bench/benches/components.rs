//! Microbenches of the performance-critical building blocks: the event
//! queue, the lazily-advanced loss chain, the wire codec, route
//! selection and the collector.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netsim::{EventQueue, GeParams, GilbertElliott, Rng, SimDuration, SimTime};
use overlay::{LinkStateTable, MetricEntry, Packet, Policy};
use std::hint::black_box;
use trace::record::MAX_PROBE_LEGS;
use trace::{Collector, CollectorConfig, LegOutcome, PairOutcome, RecvEvent, SendEvent};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/event_queue");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("push_pop_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = Rng::new(1);
            for i in 0..100_000u64 {
                q.push(SimTime::from_micros(rng.next_u64() % 1_000_000_000), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                last = t;
            }
            black_box(last)
        })
    });
    g.finish();
}

fn bench_loss_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/gilbert_elliott");
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("observe_1M", |b| {
        b.iter(|| {
            let mut ge = GilbertElliott::new(GeParams::from_stationary_loss(0.01));
            let mut rng = Rng::new(2);
            let mut t = SimTime::ZERO;
            let mut lost = 0u64;
            for _ in 0..1_000_000 {
                if ge.observe(t, 1.0, &mut rng).1 {
                    lost += 1;
                }
                t += SimDuration::from_millis(100);
            }
            black_box(lost)
        })
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let pkt = Packet::ProbeReq {
        id: 0xFEED,
        from: netsim::HostId(3),
        sent_local_us: 123_456_789,
        metrics: (0..29)
            .map(|i| MetricEntry {
                peer: netsim::HostId(i),
                loss_e4: i * 13,
                lat_us: 54_000 + i as u32,
                alive: true,
            })
            .collect(),
    };
    let encoded = pkt.encode();
    let mut g = c.benchmark_group("components/wire");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_probe_29_metrics", |b| {
        b.iter(|| black_box(pkt.encode().len()))
    });
    g.bench_function("decode_probe_29_metrics", |b| {
        b.iter(|| black_box(Packet::decode(&encoded).unwrap()))
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    // A fully populated 30-node table: the inner loop of every lat/loss
    // route query in the experiment.
    let n = 30;
    let mut table = LinkStateTable::new(
        netsim::HostId(0),
        n,
        100,
        0.1,
        5,
        SimDuration::from_secs(90),
        0.01,
        0.05,
    );
    let now = SimTime::from_secs(100);
    for peer in 1..n as u16 {
        for i in 0..50 {
            table.direct_mut(netsim::HostId(peer)).record_success(
                now,
                SimDuration::from_millis(20 + (peer as u64 * 7 + i) % 60),
            );
        }
        let entries: Vec<MetricEntry> = (0..n as u16)
            .filter(|&j| j != peer)
            .map(|j| MetricEntry {
                peer: netsim::HostId(j),
                loss_e4: (j * 11) % 300,
                lat_us: 10_000 + (j as u32 * 997) % 80_000,
                alive: true,
            })
            .collect();
        table.on_metrics(netsim::HostId(peer), &entries, now);
    }
    let mut g = c.benchmark_group("components/routing");
    g.throughput(Throughput::Elements(1));
    let mut rng = Rng::new(3);
    g.bench_function("min_loss_route_30_nodes", |b| {
        b.iter(|| black_box(table.route(netsim::HostId(17), Policy::MinLoss, now, &mut rng)))
    });
    g.bench_function("min_lat_route_30_nodes", |b| {
        b.iter(|| black_box(table.route(netsim::HostId(17), Policy::MinLat, now, &mut rng)))
    });
    g.bench_function("random_route_30_nodes", |b| {
        b.iter(|| black_box(table.route(netsim::HostId(17), Policy::Random, now, &mut rng)))
    });
    g.finish();
}

fn bench_dissem(c: &mut Criterion) {
    use overlay::{DisseminationMode, Disseminator};
    // A fully populated 30-node table, as in the routing bench: every
    // probe send reads the node's own snapshot, so the cache (rebuilt
    // only after a direct-path mutation) is on the hot path of all
    // dissemination modes.
    let n = 30;
    let mut table = LinkStateTable::new(
        netsim::HostId(0),
        n,
        100,
        0.1,
        5,
        SimDuration::from_secs(90),
        0.01,
        0.05,
    );
    let now = SimTime::from_secs(100);
    for peer in 1..n as u16 {
        for i in 0..50 {
            table.direct_mut(netsim::HostId(peer)).record_success(
                now,
                SimDuration::from_millis(20 + (peer as u64 * 7 + i) % 60),
            );
        }
    }
    let mut g = c.benchmark_group("components/dissem");
    g.throughput(Throughput::Elements(1));
    g.bench_function("snapshot_cached_30_nodes", |b| {
        // Steady state: no mutation between calls, the cache hits.
        b.iter(|| black_box(table.snapshot().len()))
    });
    g.bench_function("snapshot_rebuild_30_nodes", |b| {
        // Worst case: every call is preceded by a direct-path update,
        // so the cache rebuilds from all 29 peer stats each time.
        b.iter(|| {
            table.direct_mut(netsim::HostId(5)).record_success(now, SimDuration::from_millis(21));
            black_box(table.snapshot().len())
        })
    });
    let mut delta = Disseminator::new(
        DisseminationMode::Delta { max_age_probes: 16 },
        netsim::HostId(0),
        n,
        Rng::new(9),
        SimTime::ZERO,
    );
    let mut probe_id = 0u64;
    g.bench_function("delta_probe_send_quiescent_30_nodes", |b| {
        // The per-probe cost of delta mode once the mesh has converged:
        // change detection over the snapshot, then (usually) nothing.
        b.iter(|| {
            probe_id += 1;
            let (metrics, lsa) = delta.on_probe_send(netsim::HostId(1), probe_id, &mut table);
            black_box((metrics.len(), lsa.is_some()))
        })
    });
    g.finish();
}

fn bench_collector(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/collector");
    g.throughput(Throughput::Elements(100_000));
    g.sample_size(20);
    g.bench_function("resolve_100k_pairs", |b| {
        // The experiment's sweep loop hands the same buffer back every
        // drain; the bench mirrors that so buffer reuse is measured.
        let mut buf = Vec::new();
        b.iter(|| {
            let mut col = Collector::new(30, CollectorConfig::default());
            for i in 0..100_000u64 {
                let t = SimTime::from_millis(i);
                col.on_send(SendEvent {
                    id: i,
                    method: (i % 6) as u8,
                    leg: 0,
                    src: netsim::HostId((i % 30) as u16),
                    dst: netsim::HostId(((i + 7) % 30) as u16),
                    route: 0,
                    sent: t,
                    sent_local_us: t.as_micros() as i64,
                });
                if i % 50 != 0 {
                    col.on_recv(RecvEvent {
                        id: i,
                        leg: 0,
                        recv: t + SimDuration::from_millis(40),
                        recv_local_us: (t + SimDuration::from_millis(40)).as_micros() as i64,
                    });
                }
                if i % 1000 == 0 {
                    col.advance(t);
                    col.drain_into(&mut buf);
                    black_box(buf.len());
                }
            }
            col.finish(SimTime::from_secs(10_000));
            col.drain_into(&mut buf);
            black_box(buf.len())
        })
    });
    g.finish();
}

fn bench_record(c: &mut Criterion) {
    // The sentinel-coded compact layout: every resolved pair goes
    // through `from_legs` once and through the Option accessors many
    // times in the accumulators, so both directions of the packing are
    // on the campaign's hot path.
    let mut g = c.benchmark_group("components/record");
    g.throughput(Throughput::Elements(1_000_000));
    let mk = |i: u64| {
        let mut legs = [None; MAX_PROBE_LEGS];
        let present = 1 + (i % MAX_PROBE_LEGS as u64) as usize;
        for (j, slot) in legs.iter_mut().enumerate().take(present) {
            let lost = (i + j as u64).is_multiple_of(9);
            *slot = Some(LegOutcome {
                route: (j % 3) as u8,
                lost,
                one_way_us: if lost { None } else { Some(40_000 + (i % 5_000) as i64) },
            });
        }
        PairOutcome::from_legs(
            i,
            (i % 6) as u8,
            netsim::HostId((i % 30) as u16),
            netsim::HostId(((i + 7) % 30) as u16),
            SimTime::from_millis(i),
            legs,
            i.is_multiple_of(97),
        )
    };
    g.bench_function("from_legs_1M", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1_000_000u64 {
                acc = acc.wrapping_add(mk(i).id);
            }
            black_box(acc)
        })
    });
    let outcomes: Vec<PairOutcome> = (0..1_000_000u64).map(mk).collect();
    g.bench_function("accessors_1M", |b| {
        // The accumulators' read mix: first-packet loss, deep
        // best-of-first-j, and the per-slot Option view.
        b.iter(|| {
            let mut lost = 0u64;
            let mut best = 0i64;
            for o in &outcomes {
                if o.prefix_all_lost(1) {
                    lost += 1;
                }
                if let Some(us) = o.best_of_first_one_way_us(2) {
                    best = best.wrapping_add(us);
                }
                if let Some(l) = o.leg(0) {
                    lost += l.lost as u64;
                }
            }
            black_box((lost, best))
        })
    });
    g.finish();
}

fn bench_window_accum_soa(c: &mut Criterion) {
    // The SoA window accumulator's streaming hot path in isolation
    // (table6's variant runs it inside a full campaign): one million
    // near-time-ordered outcomes over a 30-host, 6-method cell grid,
    // mostly hitting the same open window — the branch the parallel
    // win/sent/lost arrays were laid out for.
    let mut g = c.benchmark_group("components/window_accum_soa");
    g.throughput(Throughput::Elements(1_000_000));
    g.sample_size(20);
    let mk = |i: u64| {
        let mut legs = [None; MAX_PROBE_LEGS];
        let lost = i.is_multiple_of(9);
        legs[0] = Some(LegOutcome {
            route: 0,
            lost,
            one_way_us: if lost { None } else { Some(40_000) },
        });
        PairOutcome::from_legs(
            i,
            (i % 6) as u8,
            netsim::HostId((i % 30) as u16),
            netsim::HostId(((i + 7) % 30) as u16),
            SimTime::from_millis(i * 3),
            legs,
            false,
        )
    };
    let outcomes: Vec<PairOutcome> = (0..1_000_000u64).map(mk).collect();
    g.bench_function("stream_1M_outcomes", |b| {
        b.iter(|| {
            let mut acc = analysis::WindowAccum::new(30, 6, SimDuration::from_mins(20));
            for o in &outcomes {
                acc.on_outcome(o);
            }
            acc.finish();
            black_box(acc.window_count(0))
        })
    });
    g.finish();
}

fn bench_table_sparse_lookup(c: &mut Criterion) {
    // Route selection over a 3000-host table populated the way a k=6
    // sparse mesh populates it: every peer advertises ~6 destinations,
    // so each stored vector is a short sorted vec and every remote
    // lookup is a binary search instead of a dense O(n) slot index.
    let n = 3000usize;
    let k = 6u16;
    let mut table = LinkStateTable::new(
        netsim::HostId(0),
        n,
        100,
        0.1,
        5,
        SimDuration::from_secs(90),
        0.01,
        0.05,
    );
    let now = SimTime::from_secs(100);
    for peer in 1..n as u16 {
        table
            .direct_mut(netsim::HostId(peer))
            .record_success(now, SimDuration::from_millis(20 + (peer as u64 * 7) % 60));
        // Ring-offset neighbors, so intermediates advertise distinct
        // destination sets (including some covering the probe target).
        let entries: Vec<MetricEntry> = (1..=k)
            .map(|j| {
                let dst = (peer as u32 + j as u32 * 499) % n as u32;
                MetricEntry {
                    peer: netsim::HostId(dst as u16),
                    loss_e4: (dst * 11 % 300) as u16,
                    lat_us: 10_000 + (dst * 997) % 80_000,
                    alive: true,
                }
            })
            .filter(|e| e.peer != netsim::HostId(peer))
            .collect();
        table.on_metrics(netsim::HostId(peer), &entries, now);
    }
    let mut g = c.benchmark_group("components/table_sparse_lookup");
    g.throughput(Throughput::Elements(1));
    let mut rng = Rng::new(7);
    g.bench_function("min_loss_route_3000_hosts_k6", |b| {
        b.iter(|| black_box(table.route(netsim::HostId(1700), Policy::MinLoss, now, &mut rng)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_loss_chain,
    bench_wire,
    bench_routing,
    bench_dissem,
    bench_collector,
    bench_record,
    bench_window_accum_soa,
    bench_table_sparse_lookup
);
criterion_main!(benches);
