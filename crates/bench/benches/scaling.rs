//! Scaling bench: throughput of the full simulation stack as the
//! synthetic testbed grows.
//!
//! The CLI companion (`repro --scale-sweep`) walks 30 → 3000 hosts and
//! is the tool for *finding* the knee; this bench pins the small end of
//! that curve (30/60/120 hosts on a sparse 6-regular probe mesh) under
//! criterion so `bench_delta` can flag a regression in the per-event
//! cost before it shows up as a sweep that suddenly takes minutes.
//!
//! Each measurement simulates a fixed 5 s of campaign with a single
//! `direct` method, one slice and a prober interval stretched
//! proportionally to the host count (constant per-host probe budget) —
//! the same shape the sweep uses, so the two stay comparable.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mpath_core::method::{Method, RouteTag};
use mpath_core::MethodSet;
use netsim::SimDuration;
use std::hint::black_box;

const MESH_K: usize = 6;
const SIM_SECS: f64 = 5.0;

fn build(n: usize) -> (netsim::Topology, mpath_core::ExperimentConfig) {
    let seed = 2003;
    let duration = SimDuration::from_secs_f64(SIM_SECS);
    let mut params = netsim::Topology::synthetic_params(0.02);
    params.horizon = duration + SimDuration::from_mins(2);
    let mut topo = netsim::Topology::synthetic_with(n, 0.02, params, seed);
    topo.set_probe_mesh(netsim::sparse_mesh(n, MESH_K, seed));
    let mut cfg = mpath_core::ExperimentConfig::new(MethodSet {
        methods: vec![Method::single("direct", RouteTag::Direct)],
        views: Vec::new(),
    });
    cfg.duration = duration;
    cfg.slice_width = duration;
    cfg.seed = seed;
    cfg.shards = 1;
    cfg.flat_load = true;
    cfg.node.prober.interval = SimDuration::from_secs_f64(15.0 * n as f64 / 30.0);
    cfg.collector.receive_window = SimDuration::from_secs(5);
    cfg.sweep_interval = SimDuration::from_secs(1);
    cfg.scenario = format!("scaling-bench-{n}");
    (topo, cfg)
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling/sparse_mesh");
    g.sample_size(10);
    for n in [30usize, 60, 120] {
        // Throughput in simulated pair outcomes: resolved count is a
        // pure function of (n, seed, duration), so the element count is
        // stable across machines and code changes that keep determinism.
        let probe = {
            let (topo, cfg) = build(n);
            mpath_core::shard::run_sharded(topo, cfg)
        };
        assert!(probe.collector.resolved > 0, "{n}-host run must resolve pairs");
        g.throughput(Throughput::Elements(probe.collector.resolved));
        g.bench_function(format!("sim_5s_{n}_hosts"), |b| {
            b.iter(|| {
                let (topo, cfg) = build(n);
                black_box(mpath_core::shard::run_sharded(topo, cfg).collector.resolved)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
