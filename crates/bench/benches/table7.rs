//! Bench: regenerating Table 7 — the RONwide 2002 round-trip dataset
//! with its twelve routing-method combinations.

use criterion::{criterion_group, criterion_main, Criterion};
use mpath_bench::builtin_scenario;
use mpath_core::report;
use netsim::SimDuration;
use std::hint::black_box;

fn bench_table7(c: &mut Criterion) {
    let mut g = c.benchmark_group("table7");
    g.sample_size(10);
    g.bench_function("ronwide_30min_roundtrip", |b| {
        b.iter(|| {
            let out = builtin_scenario("ron-wide").run(13, Some(SimDuration::from_mins(30)));
            let rows = report::table7(&out);
            black_box(rows.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table7);
criterion_main!(benches);
