//! Ablation benches for the design choices DESIGN.md calls out:
//! probing interval (reaction speed vs overhead), duplicate-delay sweep
//! (the Bolot CLP decay), and probed-vs-random intermediate selection
//! for mesh routing.

use criterion::{criterion_group, criterion_main, Criterion};
use mpath_core::{run_experiment, ExperimentConfig, MethodSet};
use netsim::{SimDuration, Topology};
use std::hint::black_box;

fn scaled(methods: MethodSet, seed: u64, probe_interval_s: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(methods);
    cfg.duration = SimDuration::from_mins(40);
    cfg.seed = seed;
    cfg.node.prober.interval = SimDuration::from_secs(probe_interval_s);
    cfg
}

fn bench_probe_interval(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/probe_interval");
    g.sample_size(10);
    for interval in [5u64, 15, 30] {
        g.bench_function(format!("ron2003_small_{interval}s"), |b| {
            b.iter(|| {
                let topo = Topology::synthetic(8, 0.01, 91);
                let out = run_experiment(topo, scaled(MethodSet::ron2003(), 91, interval));
                black_box(out.overlay_probes)
            })
        });
    }
    g.finish();
}

fn bench_duplicate_delay(c: &mut Criterion) {
    // The dd gap sweep exercises the burst-persistence machinery: larger
    // gaps mean more chain advances per pair.
    let mut g = c.benchmark_group("ablation/duplicate_delay");
    g.sample_size(10);
    for gap_ms in [0u64, 10, 20, 100] {
        g.bench_function(format!("dd_gap_{gap_ms}ms"), |b| {
            b.iter(|| {
                let mut methods = MethodSet::ron2003();
                // Repurpose the dd 10 ms slot with the swept gap.
                methods.methods[4].gap = SimDuration::from_millis(gap_ms);
                let topo = Topology::synthetic(8, 0.02, 92);
                let out = run_experiment(topo, scaled(methods, 92, 15));
                black_box(out.summary("dd 10 ms").map(|s| s.clp))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_probe_interval, bench_duplicate_delay);
criterion_main!(benches);
