//! Bench: regenerating Figures 2–5 from one shared scaled run (the
//! figure-assembly stage on top of accumulated state).

use criterion::{criterion_group, criterion_main, Criterion};
use mpath_bench::builtin_scenario;
use mpath_core::{report, ExperimentOutput};
use netsim::SimDuration;
use std::hint::black_box;

fn shared_run() -> ExperimentOutput {
    builtin_scenario("ron2003").run(17, Some(SimDuration::from_mins(45)))
}

fn bench_figures(c: &mut Criterion) {
    let out = shared_run();
    let mut g = c.benchmark_group("figures");
    g.bench_function("fig2_loss_cdf", |b| {
        b.iter(|| black_box(report::fig2(&[("2003", &out)]).series.len()))
    });
    g.bench_function("fig3_window_cdf", |b| {
        b.iter(|| black_box(report::fig3(&out).series.len()))
    });
    g.bench_function("fig4_clp_cdf", |b| {
        b.iter(|| black_box(report::fig4(&out).series.len()))
    });
    g.bench_function("fig5_latency_cdf", |b| {
        b.iter(|| black_box(report::fig5(&out).series.len()))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
