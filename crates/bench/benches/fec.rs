//! Bench: the §5.2 FEC experiment — Reed–Solomon throughput and the
//! interleaving-depth sweep over a bursty channel.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fec::ErasureCode;
use mpath_bench::{fec_sweep, FecSweepConfig};
use std::hint::black_box;

fn bench_fec(c: &mut Criterion) {
    let mut g = c.benchmark_group("fec");

    // Encoding throughput for the paper's 5+1 code on 1 KiB shards.
    let code = ErasureCode::new(5, 1).unwrap();
    let data: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8; 1024]).collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    g.throughput(Throughput::Bytes(5 * 1024));
    g.bench_function("rs_encode_5p1_1KiB", |b| {
        b.iter(|| black_box(code.encode(&refs).unwrap().len()))
    });

    // Decode with one data shard erased.
    g.bench_function("rs_decode_one_erasure", |b| {
        let parity = code.encode(&refs).unwrap();
        b.iter(|| {
            let mut shards: Vec<Option<Vec<u8>>> = data
                .iter()
                .cloned()
                .map(Some)
                .chain(parity.iter().cloned().map(Some))
                .collect();
            shards[2] = None;
            code.decode(&mut shards).unwrap();
            black_box(shards[2].is_some())
        })
    });

    // One sweep point of the §5.2 experiment.
    g.sample_size(10);
    g.bench_function("sweep_depth16_20k_packets", |b| {
        let cfg = FecSweepConfig { packets: 20_000, ..FecSweepConfig::default() };
        b.iter(|| black_box(fec_sweep(&cfg, &[16])[0].residual_loss))
    });
    g.finish();
}

criterion_group!(benches, bench_fec);
criterion_main!(benches);
