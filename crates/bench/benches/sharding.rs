//! Sharded-runner throughput: the RON2003 campaign cut into workload
//! slices, executed with 1 vs. 4 worker shards.
//!
//! The outputs of the two configurations are byte-identical (the
//! equivalence suite proves it); this bench measures the only thing
//! `shards` may change — wall-clock time. On a multi-core machine the
//! 4-shard run should approach a 4× speedup (slices are embarrassingly
//! parallel); on a single-core machine it degrades gracefully to ~1×.
//! The final line prints the measured speedup explicitly so CI logs and
//! `BENCH_BASELINE.json` deltas capture it.

use criterion::{criterion_group, Criterion};
use mpath_bench::builtin_scenario;
use mpath_core::{run_experiment, run_worker, serve_campaign, CampaignJob, WorkerOptions};
use netsim::SimDuration;
use std::hint::black_box;
use std::time::Instant;

/// RON2003, 40 simulated minutes cut into four 10-minute slices.
fn ron2003_sliced(shards: usize) -> mpath_core::ExperimentOutput {
    let sc = builtin_scenario("ron2003");
    let mut cfg = sc.config(2003, Some(SimDuration::from_mins(40)));
    cfg.slice_width = SimDuration::from_mins(10);
    cfg.shards = shards;
    run_experiment(sc.topology(2003), cfg)
}

fn bench_sharding(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharding");
    g.sample_size(5);
    g.bench_function("ron2003_40min_shards_1", |b| {
        b.iter(|| black_box(ron2003_sliced(1).measure_legs))
    });
    g.bench_function("ron2003_40min_shards_4", |b| {
        b.iter(|| black_box(ron2003_sliced(4).measure_legs))
    });
    g.finish();
}

criterion_group!(benches, bench_sharding);

/// The same campaign over loopback TCP: one coordinator, one worker
/// pipelining `jobs` slices at a time. Returns the merged output and
/// the wall-clock spent end to end (serve + worker + merge).
fn ron2003_distributed(jobs: usize) -> (mpath_core::ExperimentOutput, std::time::Duration) {
    let sc = builtin_scenario("ron2003");
    let job = CampaignJob {
        spec: sc,
        seed: 2003,
        duration_us: SimDuration::from_mins(40).as_micros(),
        slice_width_us: SimDuration::from_mins(10).as_micros(),
    };
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let t = Instant::now();
    let coord = std::thread::spawn(move || {
        serve_campaign(listener, job, Default::default()).expect("campaign serves")
    });
    let worker = std::thread::spawn(move || {
        run_worker(addr, WorkerOptions { jobs, ..Default::default() }).expect("worker runs")
    });
    let rep = coord.join().expect("coordinator thread");
    worker.join().expect("worker thread");
    (rep.output, t.elapsed())
}

fn main() {
    benches();
    // One timed head-to-head so the speedup is a single greppable line.
    let t = Instant::now();
    let seq = ron2003_sliced(1);
    let t_seq = t.elapsed();
    let t = Instant::now();
    let par = ron2003_sliced(4);
    let t_par = t.elapsed();
    assert_eq!(
        seq.fingerprint(),
        par.fingerprint(),
        "sharded and sequential runs must stay byte-identical"
    );
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "\nsharding speedup: {:.2}x at 4 shards ({} core(s) available; seq {:?}, 4-shard {:?})",
        t_seq.as_secs_f64() / t_par.as_secs_f64(),
        cores,
        t_seq,
        t_par
    );
    // Same head-to-head for the distributed path: a single worker
    // draining the campaign one slice at a time vs. pipelining four
    // concurrent leases. Informational on a 1-core box (expect ~1×);
    // the fingerprint asserts are the part that must always hold.
    let (out_j1, t_j1) = ron2003_distributed(1);
    let (out_j4, t_j4) = ron2003_distributed(4);
    assert_eq!(
        seq.fingerprint(),
        out_j1.fingerprint(),
        "distributed --jobs 1 run must stay byte-identical to sequential"
    );
    assert_eq!(
        seq.fingerprint(),
        out_j4.fingerprint(),
        "distributed --jobs 4 run must stay byte-identical to sequential"
    );
    println!(
        "worker --jobs speedup: {:.2}x at --jobs 4 ({} core(s) available; --jobs 1 {:?}, --jobs 4 {:?})",
        t_j1.as_secs_f64() / t_j4.as_secs_f64(),
        cores,
        t_j1,
        t_j4
    );
}
