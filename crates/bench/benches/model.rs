//! Bench: the Figure 6 analytic design-space model and the
//! bandwidth-budget advisor.

use criterion::{criterion_group, criterion_main, Criterion};
use mpath_core::model::DesignModel;
use std::hint::black_box;

fn bench_model(c: &mut Criterion) {
    let model = DesignModel::ron2003_defaults();
    let mut g = c.benchmark_group("fig6_model");
    g.bench_function("figure6_curves_1001pts", |b| {
        b.iter(|| black_box(model.figure6(64_000.0, 1001).len()))
    });
    g.bench_function("advisor_sweep", |b| {
        b.iter(|| {
            let mut picks = 0u32;
            for flow_exp in 10..28 {
                let flow = (1u64 << flow_exp) as f64;
                for d in [0.05, 0.15, 0.25, 0.35] {
                    if !matches!(
                        model.recommend(flow, 1e9, d),
                        mpath_core::Recommendation::Infeasible
                    ) {
                        picks += 1;
                    }
                }
            }
            black_box(picks)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
