//! Bench: the declarative scenario pipeline — spec digesting, topology
//! compilation (including the scripted impairment planners), and short
//! end-to-end runs of the synthetic stress scenarios.

use criterion::{criterion_group, criterion_main, Criterion};
use mpath_bench::builtin_scenario;
use netsim::SimDuration;
use std::hint::black_box;

fn bench_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenarios");
    g.sample_size(10);
    let correlated = builtin_scenario("correlated-outages");
    let waves = builtin_scenario("load-waves");
    let flash = builtin_scenario("flash-crowd");
    g.bench_function("digest_all_builtins", |b| {
        b.iter(|| {
            let sum: u64 = mpath_core::builtin_specs()
                .iter()
                .map(|s| s.digest())
                .fold(0, u64::wrapping_add);
            black_box(sum)
        })
    });
    g.bench_function("compile_correlated_outages_topology", |b| {
        b.iter(|| black_box(correlated.topology(3).specs().len()))
    });
    g.bench_function("compile_load_waves_topology", |b| {
        b.iter(|| black_box(waves.topology(3).specs().len()))
    });
    g.bench_function("run_correlated_outages_20min", |b| {
        b.iter(|| black_box(correlated.run(3, Some(SimDuration::from_mins(20))).measure_legs))
    });
    g.bench_function("run_flash_crowd_20min", |b| {
        b.iter(|| black_box(flash.run(3, Some(SimDuration::from_mins(20))).measure_legs))
    });
    g.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
