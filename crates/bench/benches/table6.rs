//! Bench: regenerating Table 6 (hour-long high-loss periods) — the
//! windowed-accumulation pipeline, plus a microbench of the window
//! accumulator itself at trace-replay speed.

use criterion::{criterion_group, criterion_main, Criterion};
use mpath_bench::builtin_scenario;
use mpath_core::report;
use netsim::{HostId, SimDuration, SimTime};
use std::hint::black_box;
use trace::{LegOutcome, PairOutcome};

fn bench_table6(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6");
    g.sample_size(10);
    g.bench_function("ron2003_1h_windows", |b| {
        b.iter(|| {
            let out = builtin_scenario("ron2003").run(11, Some(SimDuration::from_mins(40)));
            let t = report::table6(&out);
            black_box(t.counts.len())
        })
    });
    g.bench_function("window_accum_1M_outcomes", |b| {
        let outcomes: Vec<PairOutcome> = (0..1_000_000u64)
            .map(|i| {
                PairOutcome::from_legs(
                    i,
                    (i % 8) as u8,
                    HostId((i % 30) as u16),
                    HostId(((i / 30) % 30) as u16),
                    SimTime::from_millis(i * 37),
                    [
                        Some(LegOutcome { route: 0, lost: i % 97 == 0, one_way_us: Some(50_000) }),
                        None,
                        None,
                        None,
                    ],
                    false,
                )
            })
            .collect();
        b.iter(|| {
            let mut w = analysis::WindowAccum::new(30, 8, SimDuration::from_hours(1));
            for o in &outcomes {
                w.on_outcome(o);
            }
            w.finish();
            black_box(w.window_count(0))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table6);
criterion_main!(benches);
