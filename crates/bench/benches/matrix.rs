//! Bench: the scenarios × seeds matrix runner — cell fan-out through
//! the sharded runner, cross-seed pooling, and report rendering, plus
//! the k-leg probe pipeline a custom method set engages.

use criterion::{criterion_group, criterion_main, Criterion};
use mpath_bench::builtin_scenario;
use mpath_core::{
    render_matrix, run_matrix, MethodSetSpec, MethodSpec, MethodsSpec, ScenarioSpec, ViewSpec,
};
use netsim::SimDuration;
use overlay::RouteTag;
use std::hint::black_box;

/// A small synthetic scenario carrying a 4-redundant custom method set.
fn k_leg_scenario() -> ScenarioSpec {
    let mut spec = builtin_scenario("ron-narrow");
    spec.name = "bench-k-leg".to_string();
    spec.methods = MethodsSpec::Custom(MethodSetSpec {
        methods: vec![
            MethodSpec {
                name: "direct".into(),
                legs: vec![RouteTag::Direct],
                gap_ms: 0.0,
                distinct: false,
                all_prior: false,
            },
            MethodSpec {
                name: "quad".into(),
                legs: vec![RouteTag::Direct, RouteTag::Rand, RouteTag::Lat, RouteTag::Loss],
                gap_ms: 0.0,
                distinct: true,
                all_prior: false,
            },
        ],
        views: vec![ViewSpec { name: "quad*".into(), source: 1, leg: 0 }],
    });
    spec.validate().expect("bench spec is valid");
    spec
}

fn bench_matrix(c: &mut Criterion) {
    let mut g = c.benchmark_group("matrix");
    g.sample_size(10);
    let narrow = builtin_scenario("ron-narrow");
    let k_leg = k_leg_scenario();
    let duration = Some(SimDuration::from_mins(10));
    g.bench_function("pairs_1x2_cells_10min", |b| {
        b.iter(|| {
            let m = run_matrix(
                std::slice::from_ref(&narrow),
                &[1, 2],
                duration,
                1,
            );
            black_box(m.scenarios[0].pooled.measure_legs)
        })
    });
    g.bench_function("k_leg_1x2_cells_10min", |b| {
        b.iter(|| {
            let m = run_matrix(std::slice::from_ref(&k_leg), &[1, 2], duration, 1);
            black_box(m.scenarios[0].pooled.measure_legs)
        })
    });
    // Rendering alone (the pooled summaries, deltas and depth curves).
    let rendered = run_matrix(&[narrow.clone(), k_leg.clone()], &[1, 2], duration, 1);
    g.bench_function("render_2_scenarios", |b| {
        b.iter(|| black_box(render_matrix(&rendered).len()))
    });
    g.finish();
}

criterion_group!(benches, bench_matrix);
criterion_main!(benches);
