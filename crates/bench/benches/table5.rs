//! Bench: regenerating Table 5 (one-way loss percentages) end to end —
//! a scaled RON2003 run through the full simulator + overlay + collector
//! pipeline, finishing with the table rows.

use criterion::{criterion_group, criterion_main, Criterion};
use mpath_bench::builtin_scenario;
use mpath_core::report;
use netsim::SimDuration;
use std::hint::black_box;

fn bench_table5(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    g.bench_function("ron2003_30min_30hosts", |b| {
        b.iter(|| {
            let out = builtin_scenario("ron2003").run(7, Some(SimDuration::from_mins(30)));
            let rows = report::table5(&out);
            black_box(rows.len())
        })
    });
    g.bench_function("ronnarrow_30min_17hosts", |b| {
        b.iter(|| {
            let out = builtin_scenario("ron-narrow").run(7, Some(SimDuration::from_mins(30)));
            let rows = report::table5(&out);
            black_box(rows.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
