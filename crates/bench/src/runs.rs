//! Scaled dataset runs shared by benches, tests and the repro binary.

use mpath_core::{Dataset, ExperimentOutput};
use netsim::SimDuration;

/// Runs RON2003 for `hours` simulated hours.
pub fn quick_2003(hours: u64, seed: u64) -> ExperimentOutput {
    Dataset::Ron2003.run(seed, Some(SimDuration::from_hours(hours)))
}

/// Runs RONnarrow (2002, one-way) for `hours` simulated hours.
pub fn quick_narrow(hours: u64, seed: u64) -> ExperimentOutput {
    Dataset::RonNarrow.run(seed, Some(SimDuration::from_hours(hours)))
}

/// Runs RONwide (2002, round-trip) for `hours` simulated hours.
pub fn quick_wide(hours: u64, seed: u64) -> ExperimentOutput {
    Dataset::RonWide.run(seed, Some(SimDuration::from_hours(hours)))
}
