//! Scaled scenario runs shared by benches, tests and the repro binary.

use mpath_core::{ExperimentOutput, ScenarioRegistry, ScenarioSpec};
use netsim::SimDuration;

/// Resolves a built-in scenario by name.
pub fn builtin_scenario(name: &str) -> ScenarioSpec {
    ScenarioRegistry::builtin()
        .get(name)
        .unwrap_or_else(|| panic!("builtin scenario `{name}` missing"))
        .clone()
}

/// Runs a built-in scenario for `hours` simulated hours.
pub fn quick_scenario(name: &str, hours: u64, seed: u64) -> ExperimentOutput {
    builtin_scenario(name).run(seed, Some(SimDuration::from_hours(hours)))
}

/// Runs RON2003 for `hours` simulated hours.
pub fn quick_2003(hours: u64, seed: u64) -> ExperimentOutput {
    quick_scenario("ron2003", hours, seed)
}

/// Runs RONnarrow (2002, one-way) for `hours` simulated hours.
pub fn quick_narrow(hours: u64, seed: u64) -> ExperimentOutput {
    quick_scenario("ron-narrow", hours, seed)
}

/// Runs RONwide (2002, round-trip) for `hours` simulated hours.
pub fn quick_wide(hours: u64, seed: u64) -> ExperimentOutput {
    quick_scenario("ron-wide", hours, seed)
}
