//! The §5.2 FEC-over-correlated-loss experiment.
//!
//! A constant-rate packet stream (interactive-application style) crosses
//! a single bursty path modelled by the same Gilbert–Elliott process the
//! testbed segments use. A (k, r) Reed–Solomon code protects the stream;
//! a block interleaver of varying depth spreads each group over time.
//! The sweep shows the §5.2 trade-off: only once consecutive group
//! packets are ~0.5 s apart does the burst correlation die away — which
//! is exactly the latency an interactive flow cannot afford.

use fec::{BlockInterleaver, FecPacket, FecReceiver, FecSender};
use netsim::{GeParams, GilbertElliott, Rng, SimDuration, SimTime};

/// Sweep configuration.
#[derive(Debug, Clone, Copy)]
pub struct FecSweepConfig {
    /// Data shards per group (paper example: 5).
    pub k: usize,
    /// Parity shards per group (paper example: 1).
    pub r: usize,
    /// Time between transmitted packets.
    pub packet_interval: SimDuration,
    /// Path loss process.
    pub loss: GeParams,
    /// Number of data packets per depth point.
    pub packets: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for FecSweepConfig {
    fn default() -> Self {
        FecSweepConfig {
            k: 5,
            r: 1,
            // 50 packets/s — a voice-like interactive stream.
            packet_interval: SimDuration::from_millis(20),
            loss: GeParams::from_stationary_loss(0.02),
            packets: 200_000,
            seed: 42,
        }
    }
}

/// One point of the interleaving sweep.
#[derive(Debug, Clone, Copy)]
pub struct FecPoint {
    /// Interleaver depth (1 = none).
    pub depth: usize,
    /// Raw path loss observed (before FEC).
    pub raw_loss: f64,
    /// Residual data loss after FEC.
    pub residual_loss: f64,
    /// Spacing between a group's consecutive packets, milliseconds.
    pub spread_ms: f64,
    /// Worst-case buffering delay the interleaver adds, milliseconds.
    pub added_delay_ms: f64,
}

/// Runs the sweep over the given interleaver depths.
pub fn fec_sweep(cfg: &FecSweepConfig, depths: &[usize]) -> Vec<FecPoint> {
    depths.iter().map(|&d| run_depth(cfg, d)).collect()
}

fn run_depth(cfg: &FecSweepConfig, depth: usize) -> FecPoint {
    let group_len = cfg.k + cfg.r;
    let il = BlockInterleaver::new(group_len, depth);
    let block = il.len();
    let mut ge = GilbertElliott::new(cfg.loss);
    let mut rng = Rng::new(cfg.seed ^ depth as u64);
    let mut tx = FecSender::new(cfg.k, cfg.r).expect("valid geometry");
    let mut rx = FecReceiver::new(cfg.k, cfg.r, depth as u32 + 4).expect("valid geometry");

    let mut slot_buffer: Vec<Option<FecPacket>> = Vec::with_capacity(block);
    let mut slot_index: u64 = 0;
    let mut sent: u64 = 0;
    let mut dropped: u64 = 0;

    let flush =
        |buf: &mut Vec<Option<FecPacket>>, rx: &mut FecReceiver, slot_index: &mut u64,
         dropped: &mut u64, sent: &mut u64, ge: &mut GilbertElliott, rng: &mut Rng| {
            // Transmit one full interleaver block in permuted order.
            debug_assert_eq!(buf.len(), block);
            let mut wire: Vec<Option<FecPacket>> = vec![None; block];
            for (logical, pkt) in buf.drain(..).enumerate() {
                wire[il.permute(logical)] = pkt;
            }
            for pkt in wire {
                let t = SimTime::from_micros(*slot_index * cfg.packet_interval.as_micros());
                *slot_index += 1;
                *sent += 1;
                let (_, lost) = ge.observe(t, 1.0, rng);
                if lost {
                    *dropped += 1;
                    rx.on_slot(None);
                } else {
                    rx.on_slot(pkt);
                }
            }
        };

    for i in 0..cfg.packets {
        for pkt in tx.push(vec![(i % 251) as u8; 32]).expect("encode") {
            slot_buffer.push(Some(pkt));
            if slot_buffer.len() == block {
                flush(
                    &mut slot_buffer,
                    &mut rx,
                    &mut slot_index,
                    &mut dropped,
                    &mut sent,
                    &mut ge,
                    &mut rng,
                );
            }
        }
    }
    // Close the sender's open group, then pad the final partial
    // interleaver block so it still transmits.
    for pkt in tx.flush().expect("flush") {
        slot_buffer.push(Some(pkt));
        if slot_buffer.len() == block {
            flush(
                &mut slot_buffer,
                &mut rx,
                &mut slot_index,
                &mut dropped,
                &mut sent,
                &mut ge,
                &mut rng,
            );
        }
    }
    while !slot_buffer.is_empty() && slot_buffer.len() < block {
        slot_buffer.push(None);
        if slot_buffer.len() == block {
            flush(
                &mut slot_buffer,
                &mut rx,
                &mut slot_index,
                &mut dropped,
                &mut sent,
                &mut ge,
                &mut rng,
            );
        }
    }

    let stats = rx.finish();
    FecPoint {
        depth,
        raw_loss: dropped as f64 / sent as f64,
        residual_loss: stats.residual_loss(),
        spread_ms: depth as f64 * cfg.packet_interval.as_millis_f64(),
        added_delay_ms: il.max_delay_slots() as f64 * cfg.packet_interval.as_millis_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FecSweepConfig {
        FecSweepConfig { packets: 60_000, ..FecSweepConfig::default() }
    }

    #[test]
    fn deeper_interleaving_reduces_residual_loss() {
        let cfg = small_cfg();
        let pts = fec_sweep(&cfg, &[1, 4, 16, 32]);
        assert_eq!(pts.len(), 4);
        let shallow = pts[0].residual_loss;
        let deep = pts[3].residual_loss;
        assert!(
            deep < shallow * 0.55,
            "depth 32 ({deep:.5}) must beat depth 1 ({shallow:.5})"
        );
        // Raw loss is depth-independent (same channel statistics).
        for p in &pts {
            assert!((p.raw_loss - pts[0].raw_loss).abs() < 0.01, "raw {p:?}");
        }
    }

    #[test]
    fn delay_grows_linearly_with_depth() {
        let cfg = small_cfg();
        let pts = fec_sweep(&cfg, &[1, 8]);
        assert!(pts[1].added_delay_ms > 5.0 * pts[0].added_delay_ms);
        // §5.2: reaching ~0.5 s spread at 20 ms packets needs depth ~25.
        assert!((pts[1].spread_ms - 160.0).abs() < 1e-9);
    }

    #[test]
    fn fec_always_improves_on_raw() {
        let cfg = small_cfg();
        for p in fec_sweep(&cfg, &[1, 2, 8]) {
            assert!(p.residual_loss <= p.raw_loss, "{p:?}");
        }
    }
}
