//! Shared harness code for the benchmark suite and the `repro` binary:
//! paper reference values, scaled-run helpers, and the §5.2 FEC
//! experiment.

#![warn(missing_docs)]

pub mod fecx;
pub mod paper;
pub mod runs;

pub use fecx::{fec_sweep, FecPoint, FecSweepConfig};
pub use runs::{builtin_scenario, quick_2003, quick_narrow, quick_scenario, quick_wide};
