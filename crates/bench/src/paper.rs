//! The published numbers (for side-by-side comparison in the repro
//! output and the EXPERIMENTS.md shape checks).

/// One published Table 5 row: (name, 1lp, 2lp, totlp, clp, lat_ms);
/// `f64::NAN` marks a dash in the paper.
pub type PaperRow = (&'static str, f64, f64, f64, f64, f64);

/// Table 5, 2003 half.
pub const TABLE5_2003: &[PaperRow] = &[
    ("direct*", 0.42, f64::NAN, 0.42, f64::NAN, 54.13),
    ("lat*", 0.43, f64::NAN, 0.43, f64::NAN, 48.01),
    ("loss", 0.33, f64::NAN, 0.33, f64::NAN, 55.62),
    ("direct rand", 0.41, 2.66, 0.26, 62.47, 51.71),
    ("lat loss", 0.43, 1.95, 0.23, 55.08, 46.77),
    ("direct direct", 0.42, 0.43, 0.30, 72.15, 54.24),
    ("dd 10 ms", 0.41, 0.42, 0.27, 66.08, 54.28),
    ("dd 20 ms", 0.41, 0.41, 0.27, 65.28, 54.39),
];

/// Table 5, 2002 half (RONnarrow).
pub const TABLE5_2002: &[PaperRow] = &[
    ("direct*", 0.74, f64::NAN, 0.74, f64::NAN, 69.54),
    ("lat*", 0.75, f64::NAN, 0.75, f64::NAN, 69.43),
    ("loss", 0.67, f64::NAN, 0.67, f64::NAN, 76.07),
    ("direct rand", 0.74, 1.85, 0.38, 51.17, 68.33),
    ("lat loss", 0.75, 1.53, 0.37, 49.82, 66.73),
];

/// Table 7 (RONwide 2002, round-trip): (name, 1lp, 2lp, totlp, clp, RTT).
pub const TABLE7: &[PaperRow] = &[
    ("direct", 0.27, f64::NAN, 0.27, f64::NAN, 133.5),
    ("rand", 1.12, f64::NAN, 1.12, f64::NAN, 283.0),
    ("lat", 0.34, f64::NAN, 0.34, f64::NAN, 137.0),
    ("loss", 0.21, f64::NAN, 0.21, f64::NAN, 151.9),
    ("direct direct", 0.29, 0.49, 0.21, 72.7, 134.3),
    ("rand rand", 1.08, 1.12, 0.12, 11.2, 182.9),
    ("direct rand", 0.29, 1.20, 0.12, 39.2, 130.1),
    ("direct lat", 0.29, 0.95, 0.11, 39.3, 123.9),
    ("direct loss", 0.27, 1.06, 0.11, 40.0, 130.5),
    ("rand lat", 1.15, 0.41, 0.11, 9.3, 131.3),
    ("rand loss", 1.11, 0.28, 0.11, 9.9, 140.4),
    ("lat loss", 0.36, 0.79, 0.10, 29.0, 128.8),
];

/// Table 6 published counts: rows are thresholds >0..>90, columns in the
/// paper's order (direct, direct direct, dd 10, dd 20, lat, loss,
/// direct rand, lat loss).
pub const TABLE6: &[[u64; 8]] = &[
    [8817, 5183, 4024, 3832, 10695, 7066, 3846, 3353],
    [1999, 1361, 1291, 1275, 1716, 1362, 1236, 1134],
    [962, 799, 796, 783, 849, 791, 793, 757],
    [630, 585, 591, 575, 604, 573, 579, 563],
    [486, 480, 481, 465, 484, 468, 468, 451],
    [379, 377, 367, 359, 363, 359, 369, 334],
    [255, 251, 245, 249, 231, 219, 235, 215],
    [130, 130, 130, 128, 118, 106, 125, 114],
    [74, 73, 65, 64, 57, 59, 60, 56],
    [31, 31, 37, 30, 16, 31, 28, 16],
];

/// §4.2 headline figures.
pub mod headline {
    /// Overall direct loss rate, 2003.
    pub const DIRECT_LOSS_2003: f64 = 0.42;
    /// Overall direct loss rate, 2002.
    pub const DIRECT_LOSS_2002: f64 = 0.74;
    /// Worst one-hour average loss rate observed.
    pub const WORST_HOUR: f64 = 13.0;
    /// Fraction of paths with long-term loss under 1%.
    pub const PATHS_UNDER_1PCT: f64 = 0.80;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_expected_shapes() {
        assert_eq!(TABLE5_2003.len(), 8);
        assert_eq!(TABLE5_2002.len(), 5);
        assert_eq!(TABLE7.len(), 12);
        assert_eq!(TABLE6.len(), 10);
    }

    #[test]
    fn paper_orderings_hold_internally() {
        // The shape criteria of DESIGN.md §5, checked against the
        // published numbers themselves (a guard against typos here).
        let get = |n: &str| TABLE5_2003.iter().find(|r| r.0 == n).unwrap();
        assert!(get("direct*").4.is_nan(), "single-packet rows have no clp");
        let dd = get("direct direct").4;
        let dd10 = get("dd 10 ms").4;
        let dd20 = get("dd 20 ms").4;
        let dr = get("direct rand").4;
        let ll = get("lat loss").4;
        assert!(dd > dd10 && dd10 > dd20 && dd20 > dr && dr > ll);
        assert!(get("loss").3 < get("direct*").3);
        assert!(get("direct rand").3 < get("loss").3);
        assert!(get("lat loss").3 < get("direct rand").3);
    }
}
