//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [ARTIFACT] [--days F] [--seed N] [--shards N] [--out DIR]
//!
//! ARTIFACT: all | headline | table5 | table6 | table7
//!         | fig2 | fig3 | fig4 | fig5 | fig6 | fec
//! --days F    simulated days per dataset (default 1.0; paper scale: 14)
//! --seed N    master seed (default 2003)
//! --shards N  worker threads for the sliced campaign (default: the
//!             MPATH_SHARDS environment variable, else 1). Results are
//!             byte-identical for every value — only wall-clock changes.
//! --out DIR   directory for figure CSVs (default target/repro_out)
//! ```
//!
//! Output shows measured values next to the published ones. Absolute
//! agreement is not the goal (the substrate is a calibrated simulator,
//! not the 2003 Internet); the orderings and magnitudes are.

use analysis::{render_table5, render_table6, render_table7};
use mpath_bench::paper;
use mpath_bench::{fec_sweep, FecSweepConfig};
use mpath_core::model::DesignModel;
use mpath_core::{report, Dataset, ExperimentOutput};
use netsim::SimDuration;
use std::fs;
use std::path::PathBuf;

struct Args {
    artifact: String,
    days: f64,
    seed: u64,
    shards: usize,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut artifact = "all".to_string();
    let mut days = 1.0f64;
    let mut seed = 2003u64;
    let mut shards = 0usize; // auto: MPATH_SHARDS or 1
    let mut out = PathBuf::from("target/repro_out");
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--days" => {
                i += 1;
                days = argv[i].parse().expect("--days takes a number");
            }
            "--seed" => {
                i += 1;
                seed = argv[i].parse().expect("--seed takes an integer");
            }
            "--shards" => {
                i += 1;
                shards = argv[i].parse().expect("--shards takes an integer");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&argv[i]);
            }
            a if !a.starts_with('-') => artifact = a.to_string(),
            a => {
                eprintln!("unknown flag {a}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    Args { artifact, days, seed, shards, out }
}

/// Lazily-run datasets so `repro table5` does not pay for RONwide.
struct Lab {
    days: f64,
    seed: u64,
    shards: usize,
    ron2003: Option<ExperimentOutput>,
    narrow: Option<ExperimentOutput>,
    wide: Option<ExperimentOutput>,
}

impl Lab {
    fn duration(&self, ds: Dataset) -> SimDuration {
        // Scale each dataset's paper duration by days/14 so relative
        // coverage matches the paper's mix.
        let paper_days = ds.paper_duration().as_secs_f64() / 86_400.0;
        let scaled = (self.days * paper_days / 14.0).max(0.02);
        SimDuration::from_secs_f64(scaled * 86_400.0)
    }

    fn ron2003(&mut self) -> &ExperimentOutput {
        if self.ron2003.is_none() {
            let d = self.duration(Dataset::Ron2003);
            eprintln!("[repro] running RON2003 for {d} simulated...");
            self.ron2003 = Some(Dataset::Ron2003.run_sharded(self.seed, Some(d), self.shards));
        }
        self.ron2003.as_ref().unwrap()
    }

    fn narrow(&mut self) -> &ExperimentOutput {
        if self.narrow.is_none() {
            let d = self.duration(Dataset::RonNarrow);
            eprintln!("[repro] running RONnarrow for {d} simulated...");
            self.narrow =
                Some(Dataset::RonNarrow.run_sharded(self.seed ^ 0x2002, Some(d), self.shards));
        }
        self.narrow.as_ref().unwrap()
    }

    fn wide(&mut self) -> &ExperimentOutput {
        if self.wide.is_none() {
            let d = self.duration(Dataset::RonWide);
            eprintln!("[repro] running RONwide for {d} simulated...");
            self.wide =
                Some(Dataset::RonWide.run_sharded(self.seed ^ 0x2002_2002, Some(d), self.shards));
        }
        self.wide.as_ref().unwrap()
    }
}

fn fmt_paper(v: f64) -> String {
    if v.is_nan() {
        "-".into()
    } else {
        format!("{v:.2}")
    }
}

fn print_paper_rows(title: &str, rows: &[paper::PaperRow]) {
    println!("--- paper reference: {title}");
    println!(
        "{:<14} {:>7} {:>7} {:>7} {:>7} {:>9}",
        "Type", "1lp", "2lp", "totlp", "clp", "lat(ms)"
    );
    for (name, lp1, lp2, totlp, clp, lat) in rows {
        println!(
            "{:<14} {:>7} {:>7} {:>7} {:>7} {:>9}",
            name,
            fmt_paper(*lp1),
            fmt_paper(*lp2),
            fmt_paper(*totlp),
            fmt_paper(*clp),
            fmt_paper(*lat)
        );
    }
    println!();
}

fn do_table5(lab: &mut Lab) {
    println!("==== Table 5: one-way loss percentages ====\n");
    let rows = report::table5(lab.ron2003());
    println!("{}", render_table5("--- measured: 2003 (RON2003 dataset)", &rows));
    print_paper_rows("2003", paper::TABLE5_2003);
    let rows02 = report::table5(lab.narrow());
    println!("{}", render_table5("--- measured: 2002 (RONnarrow dataset)", &rows02));
    print_paper_rows("2002", paper::TABLE5_2002);
}

fn do_table6(lab: &mut Lab) {
    println!("==== Table 6: hour-long high loss periods ====\n");
    let t = report::table6(lab.ron2003());
    println!("--- measured\n{}", render_table6(&t));
    println!("--- paper reference (14 days, 30 hosts)");
    println!(
        "{:<8} {:>9} {:>13} {:>9} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "Loss %", "direct", "direct direct", "dd 10ms", "dd 20ms", "lat", "loss", "direct rand",
        "lat loss"
    );
    for (i, row) in paper::TABLE6.iter().enumerate() {
        print!("{:<8}", format!("> {}", i * 10));
        for v in row {
            print!(" {v:>9}");
        }
        println!();
    }
    println!();
}

fn do_table7(lab: &mut Lab) {
    println!("==== Table 7: expanded 2002 routing schemes (round-trip) ====\n");
    let rows = report::table7(lab.wide());
    println!("--- measured\n{}", render_table7(&rows));
    print_paper_rows("Table 7 (RTT column)", paper::TABLE7);
}

fn write_fig(out_dir: &PathBuf, name: &str, fig: &analysis::Figure) {
    fs::create_dir_all(out_dir).expect("create output dir");
    let path = out_dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create figure csv");
    fig.write_csv(&mut f).expect("write figure csv");
    println!("[repro] wrote {}", path.display());
}

fn do_fig2(lab: &mut Lab, out: &PathBuf) {
    println!("==== Figure 2: CDF of long-term per-path loss rates ====\n");
    // Run both datasets first (split borrows).
    lab.ron2003();
    lab.narrow();
    let fig = {
        let r3 = lab.ron2003.as_ref().unwrap();
        let r2 = lab.narrow.as_ref().unwrap();
        report::fig2(&[("2003 dataset", r3), ("2002 dataset", r2)])
    };
    println!("{}", fig.render_text(&[0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]));
    println!("paper: ~80% of paths under 1% loss; tail reaching ~6% (Korea↔DSL)\n");
    write_fig(out, "fig2", &fig);
}

fn do_fig3(lab: &mut Lab, out: &PathBuf) {
    println!("==== Figure 3: CDF of 20-minute loss rates ====\n");
    let fig = report::fig3(lab.ron2003());
    println!("{}", fig.render_text(&[0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0]));
    println!("paper: >95% of samples at 0% loss; reactive kills the high tail\n");
    write_fig(out, "fig3", &fig);
}

fn do_fig4(lab: &mut Lab, out: &PathBuf) {
    println!("==== Figure 4: CDF of per-path conditional loss probabilities ====\n");
    let fig = report::fig4(lab.ron2003());
    println!("{}", fig.render_text(&[0.0, 20.0, 40.0, 60.0, 80.0, 100.0]));
    println!("paper: back-to-back CLP ~72% (half the paths at 100%); random-hop lower\n");
    write_fig(out, "fig4", &fig);
}

fn do_fig5(lab: &mut Lab, out: &PathBuf) {
    println!("==== Figure 5: CDF of one-way latencies (paths > 50 ms) ====\n");
    let fig = report::fig5(lab.ron2003());
    println!("{}", fig.render_text(&[50.0, 75.0, 100.0, 150.0, 200.0, 250.0, 300.0]));
    println!("paper: lat/lat-loss shift the curve left; Cornell's 1 s episode in the tail\n");
    write_fig(out, "fig5", &fig);
}

fn do_fig6(out: &PathBuf) {
    println!("==== Figure 6: when to use reactive or redundant routing ====\n");
    let model = DesignModel::ron2003_defaults();
    let fig = report::fig6(&model, 64_000.0);
    println!("{}", fig.render_text(&[0.0, 0.1, 0.2, 0.3, 0.38, 0.5, 0.6]));
    println!(
        "model: reactive limit {:.2}, 2-copy redundant limit {:.2} (paper: ~40% of losses avoidable)\n",
        model.reactive_limit(),
        model.redundant_limit(2)
    );
    write_fig(out, "fig6", &fig);
}

fn do_fec() {
    println!("==== §5.2: FEC vs. burst correlation (5+1 code, 50 pkt/s) ====\n");
    let cfg = FecSweepConfig::default();
    let pts = fec_sweep(&cfg, &[1, 2, 4, 8, 16, 25, 32]);
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12}",
        "depth", "raw_loss", "residual", "spread(ms)", "delay(ms)"
    );
    for p in &pts {
        println!(
            "{:>6} {:>10.4} {:>10.5} {:>12.0} {:>12.0}",
            p.depth, p.raw_loss, p.residual_loss, p.spread_ms, p.added_delay_ms
        );
    }
    println!("\npaper: spreading must reach ~500 ms before burst losses decorrelate —");
    println!("an unacceptable delay for interactive flows (§5.2)\n");
}

fn do_headline(lab: &mut Lab) {
    println!("==== §4.2 headline statistics ====\n");
    lab.ron2003();
    lab.narrow();
    let r3 = lab.ron2003.as_ref().unwrap();
    let r2 = lab.narrow.as_ref().unwrap();
    let d3 = r3.summary("direct*").unwrap();
    let d2 = r2.summary("direct*").unwrap();
    println!(
        "overall direct loss 2003: measured {:.2}%  (paper {:.2}%)",
        d3.lp1,
        paper::headline::DIRECT_LOSS_2003
    );
    println!(
        "overall direct loss 2002: measured {:.2}%  (paper {:.2}%)",
        d2.lp1,
        paper::headline::DIRECT_LOSS_2002
    );
    let direct_idx = report::resolve(r3, "direct").unwrap().0;
    let losses = r3.loss.per_path_loss(direct_idx);
    let under1 = losses.iter().filter(|&&(_, _, l)| l < 0.01).count() as f64
        / losses.len().max(1) as f64;
    println!(
        "paths under 1% long-term loss: measured {:.0}%  (paper ~{:.0}%)",
        under1 * 100.0,
        paper::headline::PATHS_UNDER_1PCT * 100.0
    );
    let counts = r3.win60.threshold_counts(direct_idx);
    println!(
        "hour-windows with loss: {} of {} (paper: 8817 of ~292k; scales with run length)",
        counts[0],
        r3.win60.window_count(direct_idx)
    );
    println!(
        "probe traffic: {} overlay probes, {} measurement legs, {} discarded pairs",
        r3.overlay_probes, r3.measure_legs, r3.discarded()
    );
    for (tag, name) in ["direct", "rand", "lat", "loss"].iter().enumerate() {
        let (total, via) = r3.route_usage[tag];
        if total > 0 {
            println!(
                "route usage {name}: {via} of {total} legs took an intermediate ({:.2}%)",
                100.0 * via as f64 / total as f64
            );
        }
    }
    println!();
}

fn main() {
    let args = parse_args();
    let mut lab = Lab {
        days: args.days,
        seed: args.seed,
        shards: args.shards,
        ron2003: None,
        narrow: None,
        wide: None,
    };
    println!(
        "mpath repro — datasets scaled to {} day(s) of the paper's 14 (seed {})\n",
        args.days, args.seed
    );
    match args.artifact.as_str() {
        "table5" => do_table5(&mut lab),
        "table6" => do_table6(&mut lab),
        "table7" => do_table7(&mut lab),
        "fig2" => do_fig2(&mut lab, &args.out),
        "fig3" => do_fig3(&mut lab, &args.out),
        "fig4" => do_fig4(&mut lab, &args.out),
        "fig5" => do_fig5(&mut lab, &args.out),
        "fig6" => do_fig6(&args.out),
        "fec" => do_fec(),
        "headline" => do_headline(&mut lab),
        "all" => {
            do_headline(&mut lab);
            do_table5(&mut lab);
            do_table6(&mut lab);
            do_table7(&mut lab);
            do_fig2(&mut lab, &args.out);
            do_fig3(&mut lab, &args.out);
            do_fig4(&mut lab, &args.out);
            do_fig5(&mut lab, &args.out);
            do_fig6(&args.out);
            do_fec();
        }
        other => {
            eprintln!("unknown artifact {other}");
            std::process::exit(2);
        }
    }
}
