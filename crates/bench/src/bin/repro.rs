//! `repro` — regenerate every table and figure of the paper, and run
//! declarative scenarios from the open registry.
//!
//! ```text
//! repro [ARTIFACT] [--days F] [--seed N] [--shards N] [--out DIR]
//! repro --list-scenarios
//! repro --scenario NAME[,NAME...] [--days F] [--seed N] [--shards N]
//! repro --scenario-file PATH      [--days F] [--seed N] [--shards N]
//! repro --dump-scenario NAME
//! repro --matrix NAME[,NAME...] --seeds N [--days F] [--seed N] [--shards N]
//! repro --serve ADDR --scenario NAME [--days F] [--seed N] [--slice-mins F] [--lease-secs N]
//! repro --serve ADDR --scenario-file PATH [--days F] [--seed N] [--slice-mins F] [--lease-secs N]
//! repro --worker ADDR [--jobs N]
//! repro --scale-sweep [--max-hosts N] [--mesh-k K] [--sweep-secs F] [--dissem MODE] [--seed N]
//!
//! ARTIFACT: all | headline | table5 | table6 | table7
//!         | fig2 | fig3 | fig4 | fig5 | fig6 | fec
//! --days F    simulated days per dataset (default 1.0; paper scale: 14).
//!             In scenario mode: scales the run; without it the spec's
//!             full campaign length (`days` in the file) runs.
//! --seed N    master seed (default 2003)
//! --shards N  worker threads for the sliced campaign (default: the
//!             MPATH_SHARDS environment variable, else 1). Results are
//!             byte-identical for every value — only wall-clock changes.
//! --out DIR   directory for figure CSVs (default target/repro_out)
//!
//! --list-scenarios   print the registry catalog and exit
//! --scenario NAMES   run the named scenario(s) (comma-separated sweep)
//! --scenario-file P  load a JSON ScenarioSpec from P and run it
//! --dump-scenario N  print the named scenario's JSON spec to stdout
//!                    (edit it, then feed it back via --scenario-file)
//! --matrix NAMES     run a scenarios x seeds sweep: every named
//!                    scenario under every seed, one comparative report
//!                    (per-cell fingerprints, per-method deltas vs. the
//!                    direct row, best-of-first-j loss for j=1..k)
//! --seeds N          seed count for --matrix (cells use seeds
//!                    --seed, --seed+1, ..., --seed+N-1; default 3)
//!
//! --serve ADDR       run one scenario as a distributed campaign:
//!                    listen on ADDR, lease slices to workers, merge in
//!                    slice order. The printed report and fingerprint
//!                    are byte-identical to a local run of the same
//!                    scenario (any --shards value)
//! --worker ADDR      join the coordinator at ADDR, simulate leased
//!                    slices until the campaign is done
//! --jobs N           slices this worker leases and simulates
//!                    concurrently (default 1; worker mode only).
//!                    Results are byte-identical for every value
//! --lease-secs N     coordinator lease timeout in seconds (default
//!                    30; serve mode only, must be at least 1): a
//!                    lease not refreshed by heartbeat or result
//!                    within this span is re-issued to the next
//!                    asking worker
//!
//! --scale-sweep      grow a synthetic sparse-mesh topology from 30
//!                    hosts (doubling) up to --max-hosts and report,
//!                    at each step, simulated events/sec, bytes per
//!                    recorded outcome and the collector's peak open
//!                    pair count — the "find the knee" tool for
//!                    scaling the testbed beyond the paper's 30 hosts
//! --max-hosts N      largest mesh in the sweep (default 3000)
//! --mesh-k K         probe-mesh degree for the sweep (default 6;
//!                    bumped by one at any size where hosts x K is
//!                    odd, since a k-regular graph needs an even
//!                    product)
//! --sweep-secs F     simulated seconds per sweep step (default 10)
//! --dissem MODE      link-state dissemination for the sweep: full
//!                    (snapshot on every probe, the default), delta
//!                    (sequence-numbered delta LSAs, full refresh
//!                    every 16 probes) or gossip (fanout 3 every 15 s)
//!                    — the last column shows what each mode pays in
//!                    dissemination bytes per simulated second
//! --slice-mins F     override the scenario's slice width (minutes).
//!                    Applies to --serve and plain --scenario runs
//!                    alike; both sides of a fingerprint comparison
//!                    must use the same value, since the slice plan
//!                    shapes the RNG universes
//! ```
//!
//! Output shows measured values next to the published ones. Absolute
//! agreement is not the goal (the substrate is a calibrated simulator,
//! not the 2003 Internet); the orderings and magnitudes are.

use analysis::{render_table5, render_table6, render_table7, scenario_stamp, Table5Row, Table7Row};
use mpath_bench::paper;
use mpath_bench::{fec_sweep, FecSweepConfig};
use mpath_core::model::DesignModel;
use mpath_core::{
    report, serve_campaign, CampaignJob, ExperimentOutput, ScenarioRegistry, ScenarioSpec,
    ServeOptions, WorkerOptions,
};
use netsim::SimDuration;
use std::fs;
use std::path::PathBuf;

struct Args {
    artifact: String,
    artifact_explicit: bool,
    days: Option<f64>,
    seed: u64,
    shards: usize,
    out: PathBuf,
    list_scenarios: bool,
    scenarios: Vec<String>,
    scenario_file: Option<PathBuf>,
    dump_scenario: Option<String>,
    matrix: Vec<String>,
    seeds: usize,
    serve: Option<String>,
    worker: Option<String>,
    jobs: usize,
    lease_secs: Option<u64>,
    slice_mins: Option<f64>,
    scale_sweep: bool,
    max_hosts: usize,
    mesh_k: usize,
    sweep_secs: f64,
    dissem: overlay::DisseminationMode,
}

/// The value of a flag, or a usage error (never an index panic).
fn value_of<'a>(argv: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    match argv.get(*i) {
        Some(v) => v.as_str(),
        None => {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        artifact: "all".to_string(),
        artifact_explicit: false,
        days: None,
        seed: 2003,
        shards: 0, // auto: MPATH_SHARDS or 1
        out: PathBuf::from("target/repro_out"),
        list_scenarios: false,
        scenarios: Vec::new(),
        scenario_file: None,
        dump_scenario: None,
        matrix: Vec::new(),
        seeds: 3,
        serve: None,
        worker: None,
        jobs: 1,
        lease_secs: None,
        slice_mins: None,
        scale_sweep: false,
        max_hosts: 3000,
        mesh_k: 6,
        sweep_secs: 10.0,
        dissem: overlay::DisseminationMode::FullSnapshot,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut saw_scenario_flag = false;
    let mut saw_jobs_flag = false;
    let mut saw_matrix_flag = false;
    let mut saw_seeds_flag = false;
    let mut saw_sweep_knob = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--days" => {
                args.days = Some(value_of(&argv, &mut i, "--days").parse().expect("--days takes a number"));
            }
            "--seed" => {
                args.seed = value_of(&argv, &mut i, "--seed").parse().expect("--seed takes an integer");
            }
            "--shards" => {
                args.shards =
                    value_of(&argv, &mut i, "--shards").parse().expect("--shards takes an integer");
            }
            "--out" => {
                args.out = PathBuf::from(value_of(&argv, &mut i, "--out"));
            }
            "--list-scenarios" => args.list_scenarios = true,
            "--scenario" => {
                saw_scenario_flag = true;
                args.scenarios.extend(
                    value_of(&argv, &mut i, "--scenario")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty()),
                );
            }
            "--scenario-file" => {
                args.scenario_file = Some(PathBuf::from(value_of(&argv, &mut i, "--scenario-file")));
            }
            "--dump-scenario" => {
                args.dump_scenario = Some(value_of(&argv, &mut i, "--dump-scenario").to_string());
            }
            "--matrix" => {
                saw_matrix_flag = true;
                args.matrix.extend(
                    value_of(&argv, &mut i, "--matrix")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty()),
                );
            }
            "--seeds" => {
                saw_seeds_flag = true;
                args.seeds =
                    value_of(&argv, &mut i, "--seeds").parse().expect("--seeds takes an integer");
            }
            "--serve" => {
                args.serve = Some(value_of(&argv, &mut i, "--serve").to_string());
            }
            "--worker" => {
                args.worker = Some(value_of(&argv, &mut i, "--worker").to_string());
            }
            "--jobs" => {
                saw_jobs_flag = true;
                args.jobs =
                    value_of(&argv, &mut i, "--jobs").parse().expect("--jobs takes an integer");
            }
            "--lease-secs" => {
                args.lease_secs = Some(
                    value_of(&argv, &mut i, "--lease-secs")
                        .parse()
                        .expect("--lease-secs takes an integer"),
                );
            }
            "--slice-mins" => {
                args.slice_mins = Some(
                    value_of(&argv, &mut i, "--slice-mins")
                        .parse()
                        .expect("--slice-mins takes a number"),
                );
            }
            "--scale-sweep" => args.scale_sweep = true,
            "--max-hosts" => {
                saw_sweep_knob = true;
                args.max_hosts =
                    value_of(&argv, &mut i, "--max-hosts").parse().expect("--max-hosts takes an integer");
            }
            "--mesh-k" => {
                saw_sweep_knob = true;
                args.mesh_k =
                    value_of(&argv, &mut i, "--mesh-k").parse().expect("--mesh-k takes an integer");
            }
            "--sweep-secs" => {
                saw_sweep_knob = true;
                args.sweep_secs =
                    value_of(&argv, &mut i, "--sweep-secs").parse().expect("--sweep-secs takes a number");
            }
            "--dissem" => {
                saw_sweep_knob = true;
                args.dissem = match value_of(&argv, &mut i, "--dissem") {
                    "full" => overlay::DisseminationMode::FullSnapshot,
                    "delta" => overlay::DisseminationMode::Delta { max_age_probes: 16 },
                    "gossip" => overlay::DisseminationMode::Gossip { fanout: 3, interval_ms: 15_000 },
                    other => {
                        eprintln!("--dissem takes full, delta or gossip, got `{other}`");
                        std::process::exit(2);
                    }
                };
            }
            a if !a.starts_with('-') => {
                args.artifact = a.to_string();
                args.artifact_explicit = true;
            }
            a => {
                eprintln!("unknown flag {a}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if saw_scenario_flag && args.scenarios.is_empty() {
        // `--scenario ,` must not silently fall through to the full
        // artifact pipeline.
        eprintln!("--scenario requires at least one scenario name");
        std::process::exit(2);
    }
    if saw_matrix_flag && args.matrix.is_empty() {
        eprintln!("--matrix requires at least one scenario name");
        std::process::exit(2);
    }
    if args.seeds == 0 || args.seeds > 1_000 {
        eprintln!("--seeds must be in 1..=1000, got {}", args.seeds);
        std::process::exit(2);
    }
    if saw_seeds_flag && args.matrix.is_empty() {
        // Every other mode runs exactly one seed; silently ignoring
        // --seeds would let the user believe they swept N of them.
        eprintln!("--seeds only applies to --matrix");
        std::process::exit(2);
    }
    if saw_sweep_knob && !args.scale_sweep {
        // Same policy as --seeds: a knob that silently does nothing
        // would let the user believe it took effect.
        eprintln!("--max-hosts, --mesh-k, --sweep-secs and --dissem only apply to --scale-sweep");
        std::process::exit(2);
    }
    if args.scale_sweep {
        if args.max_hosts < 30 || args.max_hosts > 100_000 {
            eprintln!("--max-hosts must be in 30..=100000, got {}", args.max_hosts);
            std::process::exit(2);
        }
        if args.mesh_k == 0 || args.mesh_k >= 30 {
            // The sweep starts at 30 hosts, and a k-regular graph needs
            // k < hosts at every step.
            eprintln!("--mesh-k must be in 1..30 (the sweep's smallest mesh), got {}", args.mesh_k);
            std::process::exit(2);
        }
        if !(args.sweep_secs.is_finite() && (1.0..=3_600.0).contains(&args.sweep_secs)) {
            eprintln!("--sweep-secs must be in 1..=3600, got {}", args.sweep_secs);
            std::process::exit(2);
        }
    }
    if let Some(mins) = args.slice_mins {
        if !(mins.is_finite() && mins > 0.0) {
            eprintln!("--slice-mins must be a positive number, got {mins}");
            std::process::exit(2);
        }
        if args.serve.is_none() && args.scenarios.is_empty() && args.scenario_file.is_none() {
            // The override shapes the slice plan; outside scenario or
            // serve mode it would be silently ignored.
            eprintln!("--slice-mins only applies to --serve, --scenario, or --scenario-file");
            std::process::exit(2);
        }
    }
    if args.worker.is_some()
        && (!args.scenarios.is_empty()
            || args.scenario_file.is_some()
            || args.days.is_some()
            || args.slice_mins.is_some())
    {
        // A worker takes the whole campaign definition from the
        // coordinator's Job message; local overrides would be ignored.
        eprintln!("--worker takes the campaign from the coordinator; drop the scenario flags");
        std::process::exit(2);
    }
    if saw_jobs_flag {
        if args.worker.is_none() {
            // The flag is per-worker thread-pool width; everywhere else
            // it would be silently ignored (local runs shard with
            // --shards).
            eprintln!("--jobs only applies to --worker (local runs take --shards)");
            std::process::exit(2);
        }
        if args.jobs == 0 || args.jobs > 512 {
            eprintln!("--jobs must be in 1..=512, got {}", args.jobs);
            std::process::exit(2);
        }
    }
    if let Some(secs) = args.lease_secs {
        if args.serve.is_none() {
            eprintln!("--lease-secs only applies to --serve");
            std::process::exit(2);
        }
        if secs == 0 {
            // A zero timeout would re-lease every slice on every Ready,
            // thrashing the campaign forever.
            eprintln!("--lease-secs must be at least 1, got 0");
            std::process::exit(2);
        }
    }
    if args.serve.is_some() {
        let sources = usize::from(!args.scenarios.is_empty()) + usize::from(args.scenario_file.is_some());
        if sources != 1 || args.scenarios.len() > 1 {
            eprintln!("--serve needs exactly one campaign: --scenario NAME or --scenario-file PATH");
            std::process::exit(2);
        }
    }
    // Exactly one mode: a fixed precedence order would silently drop
    // half of a conflicting request. (`--serve` is the mode; its
    // scenario source rides along and is checked above.)
    let serving = args.serve.is_some();
    let modes = [
        args.artifact_explicit,
        args.list_scenarios,
        !serving && !args.scenarios.is_empty(),
        !serving && args.scenario_file.is_some(),
        args.dump_scenario.is_some(),
        !args.matrix.is_empty(),
        serving,
        args.worker.is_some(),
        args.scale_sweep,
    ];
    if modes.iter().filter(|m| **m).count() > 1 {
        eprintln!(
            "pick one mode: ARTIFACT, --list-scenarios, --scenario, --scenario-file, \
             --dump-scenario, --matrix, --serve, --worker, or --scale-sweep"
        );
        std::process::exit(2);
    }
    args
}

// ------------------------------------------------------------ scenarios

fn do_list_scenarios(registry: &ScenarioRegistry) {
    println!("{} registered scenarios:\n", registry.len());
    println!("{:<20} {:>5} {:>6} {:>8} {:>5}  summary", "name", "hosts", "days", "methods", "rt");
    for spec in registry.iter() {
        println!(
            "{:<20} {:>5} {:>6.1} {:>8} {:>5}  {}",
            spec.name,
            spec.topology.hosts(),
            spec.days,
            spec.methods().total(),
            if spec.round_trip { "yes" } else { "no" },
            spec.summary
        );
    }
    println!("\nrun one with:  repro --scenario NAME [--days F] [--seed N] [--shards N]");
    println!("write your own: repro --dump-scenario NAME > my.json && repro --scenario-file my.json");
}

fn do_dump_scenario(registry: &ScenarioRegistry, name: &str) {
    let Some(spec) = registry.get(name) else {
        eprintln!("unknown scenario `{name}`; try --list-scenarios");
        std::process::exit(2);
    };
    println!("{}", serde_json::to_string(spec).expect("specs always serialize"));
}

fn load_scenario_file(path: &PathBuf) -> ScenarioSpec {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    let spec = match serde_json::from_str::<ScenarioSpec>(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{} is not a valid scenario spec: {e}", path.display());
            std::process::exit(2);
        }
    };
    if let Err(e) = spec.validate() {
        eprintln!("{} is not a valid scenario spec: {e}", path.display());
        std::process::exit(2);
    }
    spec
}

/// Rejects a `--days` override that outlives the scenario's scripted
/// schedules. Checked *before* any scenario in a sweep runs, so a bad
/// override cannot abort a half-finished sweep.
fn check_days_within_horizon(spec: &ScenarioSpec, args: &Args) {
    if let Some(d) = args.days {
        if d.is_nan() || d <= 0.0 {
            // A non-positive (or NaN) override would clamp to a
            // zero-length campaign and print an empty stamped report.
            eprintln!("--days must be positive, got {d}");
            std::process::exit(2);
        }
        if d > spec.horizon_days {
            // The impairment and weather schedules only cover the
            // horizon; running past it would dilute the scenario while
            // still stamping its name on the report.
            eprintln!(
                "--days {d} exceeds scenario `{}`'s horizon of {} day(s); raise `days` and \
                 `horizon_days` in a scenario file instead",
                spec.name, spec.horizon_days
            );
            std::process::exit(2);
        }
    }
}

/// Runs one scenario and prints its stamped summary table, counters and
/// fingerprint. The fingerprint line is the byte-identity witness: it is
/// invariant under `--shards`.
///
/// Unlike the artifact pipeline (fixed paper row order via
/// `report::table5`/`table7`), scenario mode lists *every* measured
/// method in registry order — a custom spec may carry any method set,
/// and the paper renderers would silently drop the rows they don't
/// know.
/// The campaign a scenario run (local or distributed) pins down:
/// `--days` scales the run; without it the spec's own campaign length
/// runs in full. `--slice-mins` overrides the slice width on *both*
/// paths, so a distributed run and its local fingerprint witness share
/// one slice plan.
fn campaign_job(spec: &ScenarioSpec, args: &Args) -> CampaignJob {
    let duration = args
        .days
        .map(|d| SimDuration::from_secs_f64(d * 86_400.0))
        .unwrap_or_else(|| spec.paper_duration());
    let mut job = CampaignJob::new(spec.clone(), args.seed, duration);
    if let Some(mins) = args.slice_mins {
        job.slice_width_us = SimDuration::from_secs_f64(mins * 60.0).as_micros();
    }
    job
}

/// Runs the campaign as the distributed coordinator and returns the
/// merged output (byte-identical to the local path below).
fn serve_campaign_mode(addr: &str, job: CampaignJob, args: &Args) -> ExperimentOutput {
    let listener = std::net::TcpListener::bind(addr).unwrap_or_else(|e| {
        eprintln!("cannot listen on {addr}: {e}");
        std::process::exit(2);
    });
    let local = listener.local_addr().expect("bound listener has an address");
    eprintln!(
        "[repro] coordinator on {local}: {} slice(s); join with  repro --worker {local}",
        job.plan().len()
    );
    let mut opts = ServeOptions::default();
    if let Some(secs) = args.lease_secs {
        opts.lease_timeout = std::time::Duration::from_secs(secs);
    }
    match serve_campaign(listener, job, opts) {
        Ok(report) => {
            eprintln!(
                "[repro] campaign served: {} slice(s) over {} connection(s), {} re-lease(s), \
                 {} duplicate(s) ignored",
                report.slices, report.connections, report.releases, report.duplicates
            );
            report.output
        }
        Err(e) => {
            eprintln!("coordinator failed: {e}");
            std::process::exit(1);
        }
    }
}

fn run_scenario(spec: &ScenarioSpec, args: &Args) {
    // The caller has already checked `--days` against the spec horizon
    // (see `check_days_within_horizon`).
    let job = campaign_job(spec, args);
    let out = if let Some(addr) = &args.serve {
        serve_campaign_mode(addr, job, args)
    } else {
        eprintln!("[repro] running scenario `{}` for {} simulated...", spec.name, job.duration());
        let mut cfg = job.config();
        cfg.shards = args.shards;
        mpath_core::shard::run_sharded(job.spec.topology(job.seed), cfg)
    };
    let stamp = scenario_stamp(&out.scenario, out.spec_digest);
    if spec.round_trip {
        // Round-trip scenarios measure RTTs; use the Table 7 layout so
        // the latency column is labelled correctly.
        let rows: Vec<Table7Row> = out
            .names
            .iter()
            .map(|name| Table7Row {
                name: name.clone(),
                summary: out.summary(name).expect("every named method has a summary"),
            })
            .collect();
        println!("{stamp}\n{}", render_table7(&rows));
    } else {
        let rows: Vec<Table5Row> = out
            .names
            .iter()
            .map(|name| Table5Row {
                name: name.clone(),
                summary: out.summary(name).expect("every named method has a summary"),
            })
            .collect();
        println!("{}", render_table5(&stamp, &rows));
    }
    // A set with 3- or 4-redundant probes carries more than the pair
    // columns: print the best-of-first-j loss curve (j = 1..k) — the
    // marginal value of each extra copy.
    let depth = out.loss.depth();
    if depth > 2 {
        let mut header = format!("{:<16}", "best-of-first-j");
        for j in 1..=depth {
            header.push_str(&format!(" {:>7}", format!("L({j})")));
        }
        println!("{header}");
        for (idx, name) in out.names.iter().enumerate() {
            let mut row = format!("{name:<16}");
            let curve = out.loss.best_of_first_pct(idx as u8);
            for j in 1..=depth {
                let v = mpath_core::matrix::fmt_point(mpath_core::matrix::best_of_first_point(&curve, j));
                row.push_str(&format!(" {v:>7}"));
            }
            println!("{row}");
        }
        println!();
    }
    println!(
        "{} hosts, {} simulated, seed {}: {} legs, {} probes, {} discarded, net loss {:.3}%",
        out.n,
        out.duration,
        args.seed,
        out.measure_legs,
        out.overlay_probes,
        out.discarded(),
        100.0 * out.net.loss_rate()
    );
    println!("fingerprint: {:#018x}\n", out.fingerprint());
}

/// Runs the scenarios × seeds matrix and prints the comparative report.
/// Cells use seeds `--seed .. --seed + N - 1`; every cell's fingerprint
/// is shard-invariant, so the whole report is too.
fn run_matrix_mode(registry: &ScenarioRegistry, args: &Args) {
    let specs: Vec<ScenarioSpec> = args
        .matrix
        .iter()
        .map(|name| {
            let spec = registry.get(name).unwrap_or_else(|| {
                eprintln!("unknown scenario `{name}`; try --list-scenarios");
                std::process::exit(2);
            });
            check_days_within_horizon(spec, args);
            spec.clone()
        })
        .collect();
    let seeds: Vec<u64> = (0..args.seeds as u64).map(|k| args.seed + k).collect();
    let duration = args.days.map(|d| SimDuration::from_secs_f64(d * 86_400.0));
    eprintln!(
        "[repro] matrix: {} scenario(s) x {} seed(s) = {} cells...",
        specs.len(),
        seeds.len(),
        specs.len() * seeds.len()
    );
    let m = mpath_core::run_matrix(&specs, &seeds, duration, args.shards);
    print!("{}", mpath_core::render_matrix(&m));
}

// ------------------------------------------------------------ scale sweep

/// The sweep's mesh sizes: 30 doubling up to (and always including)
/// `max_hosts`.
fn sweep_sizes(max_hosts: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut s = 30;
    while s < max_hosts {
        sizes.push(s);
        s *= 2;
    }
    sizes.push(max_hosts);
    sizes
}

/// Grows a sparse-mesh synthetic topology and measures simulator
/// throughput at each size — the tool that finds the knee before a real
/// deployment does. Each step is an ordinary single-slice campaign over
/// a deterministic `sparse_mesh(n, k, seed)` probe mesh, with one
/// direct-probing method so the O(hosts²) accumulator grids (not the
/// method count) dominate the memory story.
///
/// The sweep deliberately bypasses `ScenarioSpec` and its 1000-host
/// validation cap: the cap protects scenario authors from accidentally
/// quadratic runs, while this mode exists precisely to measure them.
fn do_scale_sweep(args: &Args) {
    use mpath_core::method::{Method, RouteTag};
    use mpath_core::MethodSet;

    let sizes = sweep_sizes(args.max_hosts);
    let duration = SimDuration::from_secs_f64(args.sweep_secs);
    eprintln!(
        "[repro] scale sweep: {} mesh size(s), {} simulated each, mesh degree {}, \
         dissemination {} (seed {})",
        sizes.len(),
        duration,
        args.mesh_k,
        args.dissem.label(),
        args.seed
    );
    // `table_B/host` stays the LAST column: CI's awk checks address the
    // earlier columns positionally ($3 events/sec, $8 lsa_B/s).
    println!(
        "{:>7} {:>7} {:>12} {:>14} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "hosts",
        "mesh_k",
        "events/sec",
        "bytes/outcome",
        "peak_open",
        "resolved",
        "wall_s",
        "lsa_B/s",
        "table_B/host"
    );
    for &n in &sizes {
        // A k-regular graph needs hosts x k even; odd x odd sizes take
        // one extra neighbor rather than failing mid-sweep.
        let k = if (n * args.mesh_k) % 2 == 1 { args.mesh_k + 1 } else { args.mesh_k };
        let mut params = netsim::Topology::synthetic_params(0.02);
        params.horizon = duration + SimDuration::from_mins(2);
        let mut topo = netsim::Topology::synthetic_with(n, 0.02, params, args.seed);
        topo.set_probe_mesh(netsim::sparse_mesh(n, k, args.seed));
        let mut cfg = mpath_core::ExperimentConfig::new(MethodSet {
            methods: vec![Method::single("direct", RouteTag::Direct)],
            views: Vec::new(),
        });
        cfg.duration = duration;
        cfg.slice_width = duration; // one slice: timing without merge noise
        cfg.seed = args.seed;
        cfg.shards = 1;
        cfg.flat_load = true;
        // Hold each host's overlay probe budget constant as the mesh
        // grows (the knob a real deployment turns): the default 15 s
        // round over n-1 peers is O(n²) probes/sec mesh-wide, and every
        // probe carries an O(n) link-state vector — O(n³)/sec total,
        // which is exactly the wall RON-style dissemination hits. With
        // the interval stretched ∝ n the dissemination cost drops to
        // O(n²)/sec and the sweep can actually reach thousands of hosts
        // while still showing the superlinear climb.
        cfg.node.prober.interval = SimDuration::from_secs_f64(15.0 * n as f64 / 30.0);
        // Simulated path delays are bounded at a few seconds, so a short
        // receive window keeps the same outcomes while reporting a
        // steady-state occupancy instead of "everything ever sent".
        cfg.collector.receive_window = SimDuration::from_secs(5);
        // Sweep every simulated second (default: 10 s) so expired pairs
        // leave the pending set promptly and `peak_open` reports the
        // steady-state watermark, not "every pair the run ever opened".
        cfg.sweep_interval = SimDuration::from_secs(1);
        cfg.dissemination = args.dissem;
        cfg.scenario = format!("scale-sweep-{n}");
        let t0 = std::time::Instant::now();
        let (out, diag) = mpath_core::shard::run_sharded_diag(topo, cfg);
        let wall = t0.elapsed().as_secs_f64();
        // One discrete event per underlay send plus one per delivery;
        // timers and sweeps ride along free-ish.
        let events = out.net.sent + out.net.delivered;
        println!(
            "{:>7} {:>7} {:>12.0} {:>14} {:>10} {:>10} {:>8.2} {:>12.0} {:>12.0}",
            n,
            k,
            events as f64 / wall.max(1e-9),
            std::mem::size_of::<trace::PairOutcome>(),
            out.collector.peak_pending,
            out.collector.resolved,
            wall,
            out.net.lsa_bytes as f64 / args.sweep_secs,
            diag.peak_table_bytes as f64 / n as f64
        );
    }
    println!(
        "\nevents = underlay sends + deliveries; bytes/outcome = in-memory size of one \
         recorded probe-pair outcome; peak_open = collector high-water mark of open pairs; \
         lsa_B/s = dissemination payload bytes per simulated second ({} mode); \
         table_B/host = peak link-state table heap bytes averaged over hosts",
        args.dissem.label()
    );
}

// ------------------------------------------------------------- artifacts

/// Lazily-run paper campaigns so `repro table5` does not pay for RONwide.
struct Lab {
    days: f64,
    seed: u64,
    shards: usize,
    registry: ScenarioRegistry,
    ron2003: Option<ExperimentOutput>,
    narrow: Option<ExperimentOutput>,
    wide: Option<ExperimentOutput>,
}

impl Lab {
    fn spec(&self, name: &str) -> ScenarioSpec {
        self.registry.get(name).expect("paper scenarios are built in").clone()
    }

    fn duration(&self, spec: &ScenarioSpec) -> SimDuration {
        // Scale each campaign's paper duration by days/14 so relative
        // coverage matches the paper's mix.
        let scaled = (self.days * spec.days / 14.0).max(0.02);
        SimDuration::from_secs_f64(scaled * 86_400.0)
    }

    fn ron2003(&mut self) -> &ExperimentOutput {
        if self.ron2003.is_none() {
            let spec = self.spec("ron2003");
            let d = self.duration(&spec);
            eprintln!("[repro] running RON2003 for {d} simulated...");
            self.ron2003 = Some(spec.run_sharded(self.seed, Some(d), self.shards));
        }
        self.ron2003.as_ref().unwrap()
    }

    fn narrow(&mut self) -> &ExperimentOutput {
        if self.narrow.is_none() {
            let spec = self.spec("ron-narrow");
            let d = self.duration(&spec);
            eprintln!("[repro] running RONnarrow for {d} simulated...");
            self.narrow = Some(spec.run_sharded(self.seed ^ 0x2002, Some(d), self.shards));
        }
        self.narrow.as_ref().unwrap()
    }

    fn wide(&mut self) -> &ExperimentOutput {
        if self.wide.is_none() {
            let spec = self.spec("ron-wide");
            let d = self.duration(&spec);
            eprintln!("[repro] running RONwide for {d} simulated...");
            self.wide = Some(spec.run_sharded(self.seed ^ 0x2002_2002, Some(d), self.shards));
        }
        self.wide.as_ref().unwrap()
    }
}

fn fmt_paper(v: f64) -> String {
    if v.is_nan() {
        "-".into()
    } else {
        format!("{v:.2}")
    }
}

fn print_paper_rows(title: &str, rows: &[paper::PaperRow]) {
    println!("--- paper reference: {title}");
    println!(
        "{:<14} {:>7} {:>7} {:>7} {:>7} {:>9}",
        "Type", "1lp", "2lp", "totlp", "clp", "lat(ms)"
    );
    for (name, lp1, lp2, totlp, clp, lat) in rows {
        println!(
            "{:<14} {:>7} {:>7} {:>7} {:>7} {:>9}",
            name,
            fmt_paper(*lp1),
            fmt_paper(*lp2),
            fmt_paper(*totlp),
            fmt_paper(*clp),
            fmt_paper(*lat)
        );
    }
    println!();
}

fn measured_title(kind: &str, out: &ExperimentOutput) -> String {
    format!("--- measured: {kind} {}", scenario_stamp(&out.scenario, out.spec_digest))
}

fn do_table5(lab: &mut Lab) {
    println!("==== Table 5: one-way loss percentages ====\n");
    let rows = report::table5(lab.ron2003());
    let title = measured_title("2003", lab.ron2003());
    println!("{}", render_table5(&title, &rows));
    print_paper_rows("2003", paper::TABLE5_2003);
    let rows02 = report::table5(lab.narrow());
    let title02 = measured_title("2002", lab.narrow());
    println!("{}", render_table5(&title02, &rows02));
    print_paper_rows("2002", paper::TABLE5_2002);
}

fn do_table6(lab: &mut Lab) {
    println!("==== Table 6: hour-long high loss periods ====\n");
    let t = report::table6(lab.ron2003());
    println!("{}\n{}", measured_title("2003", lab.ron2003()), render_table6(&t));
    println!("--- paper reference (14 days, 30 hosts)");
    println!(
        "{:<8} {:>9} {:>13} {:>9} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "Loss %", "direct", "direct direct", "dd 10ms", "dd 20ms", "lat", "loss", "direct rand",
        "lat loss"
    );
    for (i, row) in paper::TABLE6.iter().enumerate() {
        print!("{:<8}", format!("> {}", i * 10));
        for v in row {
            print!(" {v:>9}");
        }
        println!();
    }
    println!();
}

fn do_table7(lab: &mut Lab) {
    println!("==== Table 7: expanded 2002 routing schemes (round-trip) ====\n");
    let rows = report::table7(lab.wide());
    println!("{}\n{}", measured_title("2002 wide", lab.wide()), render_table7(&rows));
    print_paper_rows("Table 7 (RTT column)", paper::TABLE7);
}

fn write_fig(out_dir: &PathBuf, name: &str, fig: &analysis::Figure) {
    fs::create_dir_all(out_dir).expect("create output dir");
    let path = out_dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create figure csv");
    fig.write_csv(&mut f).expect("write figure csv");
    println!("[repro] wrote {}", path.display());
}

fn do_fig2(lab: &mut Lab, out: &PathBuf) {
    println!("==== Figure 2: CDF of long-term per-path loss rates ====\n");
    // Run both datasets first (split borrows).
    lab.ron2003();
    lab.narrow();
    let fig = {
        let r3 = lab.ron2003.as_ref().unwrap();
        let r2 = lab.narrow.as_ref().unwrap();
        report::fig2(&[("2003 dataset", r3), ("2002 dataset", r2)])
    };
    println!("{}", fig.render_text(&[0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]));
    println!("paper: ~80% of paths under 1% loss; tail reaching ~6% (Korea↔DSL)\n");
    write_fig(out, "fig2", &fig);
}

fn do_fig3(lab: &mut Lab, out: &PathBuf) {
    println!("==== Figure 3: CDF of 20-minute loss rates ====\n");
    let fig = report::fig3(lab.ron2003());
    println!("{}", fig.render_text(&[0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0]));
    println!("paper: >95% of samples at 0% loss; reactive kills the high tail\n");
    write_fig(out, "fig3", &fig);
}

fn do_fig4(lab: &mut Lab, out: &PathBuf) {
    println!("==== Figure 4: CDF of per-path conditional loss probabilities ====\n");
    let fig = report::fig4(lab.ron2003());
    println!("{}", fig.render_text(&[0.0, 20.0, 40.0, 60.0, 80.0, 100.0]));
    println!("paper: back-to-back CLP ~72% (half the paths at 100%); random-hop lower\n");
    write_fig(out, "fig4", &fig);
}

fn do_fig5(lab: &mut Lab, out: &PathBuf) {
    println!("==== Figure 5: CDF of one-way latencies (paths > 50 ms) ====\n");
    let fig = report::fig5(lab.ron2003());
    println!("{}", fig.render_text(&[50.0, 75.0, 100.0, 150.0, 200.0, 250.0, 300.0]));
    println!("paper: lat/lat-loss shift the curve left; Cornell's 1 s episode in the tail\n");
    write_fig(out, "fig5", &fig);
}

fn do_fig6(out: &PathBuf) {
    println!("==== Figure 6: when to use reactive or redundant routing ====\n");
    let model = DesignModel::ron2003_defaults();
    let fig = report::fig6(&model, 64_000.0);
    println!("{}", fig.render_text(&[0.0, 0.1, 0.2, 0.3, 0.38, 0.5, 0.6]));
    println!(
        "model: reactive limit {:.2}, 2-copy redundant limit {:.2} (paper: ~40% of losses avoidable)\n",
        model.reactive_limit(),
        model.redundant_limit(2)
    );
    write_fig(out, "fig6", &fig);
}

fn do_fec() {
    println!("==== §5.2: FEC vs. burst correlation (5+1 code, 50 pkt/s) ====\n");
    let cfg = FecSweepConfig::default();
    let pts = fec_sweep(&cfg, &[1, 2, 4, 8, 16, 25, 32]);
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12}",
        "depth", "raw_loss", "residual", "spread(ms)", "delay(ms)"
    );
    for p in &pts {
        println!(
            "{:>6} {:>10.4} {:>10.5} {:>12.0} {:>12.0}",
            p.depth, p.raw_loss, p.residual_loss, p.spread_ms, p.added_delay_ms
        );
    }
    println!("\npaper: spreading must reach ~500 ms before burst losses decorrelate —");
    println!("an unacceptable delay for interactive flows (§5.2)\n");
}

fn do_headline(lab: &mut Lab) {
    println!("==== §4.2 headline statistics ====\n");
    lab.ron2003();
    lab.narrow();
    let r3 = lab.ron2003.as_ref().unwrap();
    let r2 = lab.narrow.as_ref().unwrap();
    let d3 = r3.summary("direct*").unwrap();
    let d2 = r2.summary("direct*").unwrap();
    println!(
        "overall direct loss 2003: measured {:.2}%  (paper {:.2}%)",
        d3.lp1,
        paper::headline::DIRECT_LOSS_2003
    );
    println!(
        "overall direct loss 2002: measured {:.2}%  (paper {:.2}%)",
        d2.lp1,
        paper::headline::DIRECT_LOSS_2002
    );
    let direct_idx = report::resolve(r3, "direct").unwrap().0;
    let losses = r3.loss.per_path_loss(direct_idx);
    let under1 = losses.iter().filter(|&&(_, _, l)| l < 0.01).count() as f64
        / losses.len().max(1) as f64;
    println!(
        "paths under 1% long-term loss: measured {:.0}%  (paper ~{:.0}%)",
        under1 * 100.0,
        paper::headline::PATHS_UNDER_1PCT * 100.0
    );
    let counts = r3.win60.threshold_counts(direct_idx);
    println!(
        "hour-windows with loss: {} of {} (paper: 8817 of ~292k; scales with run length)",
        counts[0],
        r3.win60.window_count(direct_idx)
    );
    println!(
        "probe traffic: {} overlay probes, {} measurement legs, {} discarded pairs",
        r3.overlay_probes, r3.measure_legs, r3.discarded()
    );
    for (tag, name) in ["direct", "rand", "lat", "loss"].iter().enumerate() {
        let (total, via) = r3.route_usage[tag];
        if total > 0 {
            println!(
                "route usage {name}: {via} of {total} legs took an intermediate ({:.2}%)",
                100.0 * via as f64 / total as f64
            );
        }
    }
    println!();
}

fn main() {
    let args = parse_args();
    let registry = ScenarioRegistry::builtin();

    if let Some(addr) = &args.worker {
        eprintln!(
            "[repro] worker joining coordinator at {addr} ({} concurrent slice(s))...",
            args.jobs
        );
        let opts = WorkerOptions { jobs: args.jobs, ..WorkerOptions::default() };
        match mpath_core::run_worker(addr.clone(), opts) {
            Ok(r) => {
                eprintln!(
                    "[repro] worker done: {} slice(s) simulated{}",
                    r.slices_run,
                    if r.coordinator_closed { " (coordinator closed; campaign finished)" } else { "" }
                );
            }
            Err(e) => {
                eprintln!("worker failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if args.scale_sweep {
        do_scale_sweep(&args);
        return;
    }
    if args.list_scenarios {
        do_list_scenarios(&registry);
        return;
    }
    if let Some(name) = &args.dump_scenario {
        do_dump_scenario(&registry, name);
        return;
    }
    if let Some(path) = &args.scenario_file {
        let spec = load_scenario_file(path);
        check_days_within_horizon(&spec, &args);
        println!(
            "mpath repro — scenario file {} (seed {})\n",
            path.display(),
            args.seed
        );
        run_scenario(&spec, &args);
        return;
    }
    if !args.matrix.is_empty() {
        run_matrix_mode(&registry, &args);
        return;
    }
    if !args.scenarios.is_empty() {
        // Resolve every name and check `--days` up front: a typo or bad
        // override late in the sweep must not discard minutes of
        // completed runs.
        let specs: Vec<&ScenarioSpec> = args
            .scenarios
            .iter()
            .map(|name| {
                let spec = registry.get(name).unwrap_or_else(|| {
                    eprintln!("unknown scenario `{name}`; try --list-scenarios");
                    std::process::exit(2);
                });
                check_days_within_horizon(spec, &args);
                spec
            })
            .collect();
        println!("mpath repro — {} scenario(s), seed {}\n", specs.len(), args.seed);
        for spec in specs {
            run_scenario(spec, &args);
        }
        return;
    }

    let days = args.days.unwrap_or(1.0);
    if days.is_nan() || days <= 0.0 || days > 14.0 {
        // The dataset campaigns are scaled fractions of the paper's 14
        // days; beyond that the scripted weather schedules run out.
        eprintln!("--days must be in (0, 14] for the artifact pipeline, got {days}");
        std::process::exit(2);
    }
    let mut lab = Lab {
        days,
        seed: args.seed,
        shards: args.shards,
        registry,
        ron2003: None,
        narrow: None,
        wide: None,
    };
    println!(
        "mpath repro — datasets scaled to {} day(s) of the paper's 14 (seed {})\n",
        lab.days, args.seed
    );
    match args.artifact.as_str() {
        "table5" => do_table5(&mut lab),
        "table6" => do_table6(&mut lab),
        "table7" => do_table7(&mut lab),
        "fig2" => do_fig2(&mut lab, &args.out),
        "fig3" => do_fig3(&mut lab, &args.out),
        "fig4" => do_fig4(&mut lab, &args.out),
        "fig5" => do_fig5(&mut lab, &args.out),
        "fig6" => do_fig6(&args.out),
        "fec" => do_fec(),
        "headline" => do_headline(&mut lab),
        "all" => {
            do_headline(&mut lab);
            do_table5(&mut lab);
            do_table6(&mut lab);
            do_table7(&mut lab);
            do_fig2(&mut lab, &args.out);
            do_fig3(&mut lab, &args.out);
            do_fig4(&mut lab, &args.out);
            do_fig5(&mut lab, &args.out);
            do_fig6(&args.out);
            do_fec();
        }
        other => {
            eprintln!("unknown artifact {other}");
            std::process::exit(2);
        }
    }
}
