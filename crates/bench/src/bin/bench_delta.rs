//! `bench_delta` — record and compare criterion baselines.
//!
//! The vendored criterion harness appends one JSON line per benchmark
//! to `$CRITERION_JSON`. This tool turns such a run log into the
//! checked-in `BENCH_BASELINE.json`, or prints the delta of a fresh run
//! against it:
//!
//! ```text
//! CRITERION_JSON=target/bench.jsonl cargo bench
//! bench_delta write   BENCH_BASELINE.json target/bench.jsonl
//! bench_delta compare BENCH_BASELINE.json target/bench.jsonl
//! bench_delta compare --only components BENCH_BASELINE.json target/bench.jsonl
//! ```
//!
//! `compare` is informational (exit code 0): benchmark machines differ,
//! so deltas are a trend signal for reviewers, not a gate. Entries only
//! present on one side are listed so added/removed targets are visible.
//! `--only PREFIX` restricts the table to benchmark ids starting with
//! `PREFIX` (CI uses `--only components` to print a focused hot-path
//! table from a quick components-only run without 30 "missing" rows).

use serde::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

#[derive(Debug, Clone, Copy)]
struct Stats {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::Float(x) => Some(*x),
        Value::Int(x) => Some(*x as f64),
        Value::UInt(x) => Some(*x as f64),
        _ => None,
    }
}

/// Parses one record (an object with id/mean_ns/min_ns/max_ns).
fn record(v: &Value) -> Option<(String, Stats)> {
    let Value::Str(id) = v.field("id").ok()? else { return None };
    Some((
        id.clone(),
        Stats {
            mean_ns: num(v.field("mean_ns").ok()?)?,
            min_ns: num(v.field("min_ns").ok()?)?,
            max_ns: num(v.field("max_ns").ok()?)?,
        },
    ))
}

/// Reads either a JSONL run log or a JSON-array baseline. Later
/// duplicates win (a re-run bench overwrites its earlier line).
fn load(path: &str) -> Result<BTreeMap<String, Stats>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = BTreeMap::new();
    let trimmed = text.trim_start();
    if trimmed.starts_with('[') {
        let v = serde_json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let Value::Seq(items) = v else { return Err(format!("{path}: expected a JSON array")) };
        for item in &items {
            let (id, s) = record(item).ok_or_else(|| format!("{path}: malformed record"))?;
            out.insert(id, s);
        }
    } else {
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let v = serde_json::parse(line).map_err(|e| format!("{path}: {e}"))?;
            let (id, s) = record(&v).ok_or_else(|| format!("{path}: malformed record"))?;
            out.insert(id, s);
        }
    }
    Ok(out)
}

/// Rounds to one decimal so the checked-in baseline stays compact.
fn ns(v: f64) -> Value {
    Value::Float((v * 10.0).round() / 10.0)
}

fn write_baseline(path: &str, benches: &BTreeMap<String, Stats>) -> Result<(), String> {
    // One record per line so baseline re-records produce reviewable
    // diffs; each record is serialized by serde_json (single source of
    // truth for escaping).
    let mut out = String::from("[\n");
    for (i, (id, s)) in benches.iter().enumerate() {
        let rec = Value::Map(vec![
            ("id".into(), Value::Str(id.clone())),
            ("mean_ns".into(), ns(s.mean_ns)),
            ("min_ns".into(), ns(s.min_ns)),
            ("max_ns".into(), ns(s.max_ns)),
        ]);
        let line = serde_json::to_string(&rec).map_err(|e| e.to_string())?;
        out.push_str("  ");
        out.push_str(&line);
        out.push_str(if i + 1 < benches.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    std::fs::write(path, out).map_err(|e| format!("{path}: {e}"))
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn compare(base: &BTreeMap<String, Stats>, cur: &BTreeMap<String, Stats>, only: Option<&str>) {
    let keep = |id: &str| only.is_none_or(|p| id.starts_with(p));
    println!(
        "{:<48} {:>12} {:>12} {:>9}",
        "benchmark", "baseline", "current", "delta"
    );
    for (id, c) in cur.iter().filter(|(id, _)| keep(id)) {
        match base.get(id) {
            Some(b) => {
                let delta = 100.0 * (c.mean_ns / b.mean_ns - 1.0);
                let flag = if delta.abs() >= 20.0 { "  <<" } else { "" };
                println!(
                    "{:<48} {:>12} {:>12} {:>+8.1}%{flag}",
                    id,
                    human_ns(b.mean_ns),
                    human_ns(c.mean_ns),
                    delta
                );
            }
            None => println!("{:<48} {:>12} {:>12}      new", id, "-", human_ns(c.mean_ns)),
        }
    }
    for id in base.keys().filter(|id| keep(id) && !cur.contains_key(*id)) {
        println!("{id:<48} {:>12} {:>12}  missing", human_ns(base[id].mean_ns), "-");
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: bench_delta <write|compare> <baseline.json> <run.jsonl>\n       bench_delta compare --only PREFIX <baseline.json> <run.jsonl>";
    let (cmd, only, baseline, run) = match args.as_slice() {
        [c, b, r] => (c.as_str(), None, b.as_str(), r.as_str()),
        [c, flag, p, b, r] if flag == "--only" => (c.as_str(), Some(p.as_str()), b.as_str(), r.as_str()),
        _ => {
            eprintln!("{usage}");
            return ExitCode::from(2);
        }
    };
    let result = match (cmd, only) {
        ("write", None) => load(run).and_then(|benches| {
            write_baseline(baseline, &benches).map(|()| {
                println!("wrote {} benchmark(s) to {baseline}", benches.len());
            })
        }),
        ("compare", _) => load(baseline).and_then(|base| {
            load(run).map(|cur| compare(&base, &cur, only))
        }),
        _ => {
            eprintln!("{usage}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_delta: {e}");
            ExitCode::FAILURE
        }
    }
}
