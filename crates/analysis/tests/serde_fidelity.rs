//! Serde-fidelity property tests: an accumulator that crossed the wire
//! must be indistinguishable — to the bit — from one that never left
//! the process.
//!
//! This is the invariant the distributed campaign runner leans on: a
//! worker streams random outcomes into a private accumulator, ships it
//! as JSON, and the coordinator merges the deserialized copy into a
//! sibling. If any counter, histogram bucket, open-window fragment or
//! f64 latency sum loses precision in transit, the merged digest here
//! diverges from the never-serialized path long before a campaign
//! fingerprint would.
//!
//! Every property runs the same shape: random outcomes → accumulate →
//! JSON round-trip → merge into a sibling → [`Fnv`] digest equals the
//! digest of merging the originals directly. Outcomes include 3- and
//! 4-leg probes so the `max_legs > 2` best-of-first-j extension (the
//! k-leg depth guard) crosses the wire too, not just the paper's pairs.

use analysis::loss::Cell;
use analysis::{Fnv, Histogram, LossAccum, WindowAccum};
use netsim::{HostId, NetCounters, SimDuration, SimTime};
use proptest::prelude::*;
use trace::record::MAX_PROBE_LEGS;
use trace::{CollectorStats, LegOutcome, PairOutcome};

const HOSTS: u16 = 4;
const METHODS: u8 = 3;

fn arb_leg() -> impl Strategy<Value = LegOutcome> {
    (0u8..4, any::<bool>(), any::<Option<i64>>()).prop_map(|(route, lost, one_way)| LegOutcome {
        route,
        lost,
        // Lost legs never observed a one-way time.
        one_way_us: if lost { None } else { one_way },
    })
}

fn arb_outcome() -> impl Strategy<Value = PairOutcome> {
    (
        any::<u64>(),
        0..METHODS,
        0..HOSTS,
        0..HOSTS,
        0u64..3_600_000_000, // send instants inside one hour
        1usize..=MAX_PROBE_LEGS,
        proptest::collection::vec(arb_leg(), MAX_PROBE_LEGS..MAX_PROBE_LEGS + 1),
    )
        .prop_map(|(id, method, src, dst_raw, sent_us, present, legs)| {
            let dst = if dst_raw == src { (src + 1) % HOSTS } else { dst_raw };
            let mut slots = [None; MAX_PROBE_LEGS];
            for (slot, leg) in slots.iter_mut().zip(&legs).take(present) {
                *slot = Some(*leg);
            }
            PairOutcome::from_legs(
                id,
                method,
                HostId(src),
                HostId(dst),
                SimTime::from_micros(sent_us),
                slots,
                // Deterministic-but-arbitrary sprinkling of §4.1 discards.
                id % 11 == 0,
            )
        })
}

fn digest(write: impl FnOnce(&mut Fnv)) -> u64 {
    let mut fnv = Fnv::new();
    write(&mut fnv);
    fnv.finish()
}

fn round_trip<T: serde::Serialize + serde::Deserialize>(v: &T) -> T {
    let json = serde_json::to_string(v).expect("accumulators always serialize");
    serde_json::from_str(&json).expect("own JSON must parse")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn loss_accum_merges_identically_after_the_wire(
        depth in 2usize..=MAX_PROBE_LEGS,
        a in proptest::collection::vec(arb_outcome(), 0..80),
        b in proptest::collection::vec(arb_outcome(), 0..80),
    ) {
        let feed = |outs: &[PairOutcome]| {
            let mut acc = LossAccum::with_depth(HOSTS as usize, METHODS as usize, depth);
            for o in outs {
                acc.on_outcome(o);
            }
            acc
        };
        // Never-serialized reference merge.
        let mut local = feed(&a);
        local.merge(&feed(&b));
        // The distributed path: both sides cross the wire first.
        let mut wired = round_trip(&feed(&a));
        wired.merge(&round_trip(&feed(&b)));
        prop_assert_eq!(
            digest(|f| local.digest(f)),
            digest(|f| wired.digest(f)),
            "depth {} merge diverged after JSON round-trip", depth
        );
        // The k-leg depth guard: the deep best-of-first-j curve itself
        // must survive, not just the digest fold.
        prop_assert_eq!(local.depth(), wired.depth());
        if depth > 2 {
            for m in 0..METHODS {
                prop_assert_eq!(
                    local.best_of_first_pct(m),
                    wired.best_of_first_pct(m)
                );
            }
        }
    }

    #[test]
    fn window_accum_round_trips_open_windows_exactly(
        a in proptest::collection::vec(arb_outcome(), 0..80),
        b in proptest::collection::vec(arb_outcome(), 0..80),
    ) {
        let feed = |outs: &[PairOutcome]| {
            let mut acc =
                WindowAccum::new(HOSTS as usize, METHODS as usize, SimDuration::from_mins(20));
            for o in outs {
                acc.on_outcome(o);
            }
            acc
        };
        // Round-trip *before* finish: the open-window fragments must
        // cross the wire with full fidelity, so closing them afterwards
        // lands on identical statistics.
        let mut direct = feed(&a);
        let mut wired = round_trip(&direct);
        direct.finish();
        wired.finish();
        prop_assert_eq!(
            digest(|f| direct.digest(f)),
            digest(|f| wired.digest(f)),
            "open windows lost fidelity in transit"
        );
        // And the slice-shaped merge (finished sides only).
        let mut other = feed(&b);
        other.finish();
        direct.merge(&other);
        wired.merge(&round_trip(&other));
        prop_assert_eq!(digest(|f| direct.digest(f)), digest(|f| wired.digest(f)));
    }

    #[test]
    fn histogram_round_trips_and_merges_exactly(
        a in proptest::collection::vec(-0.5f64..1.5, 0..200),
        b in proptest::collection::vec(-0.5f64..1.5, 0..200),
    ) {
        let feed = |vals: &[f64]| {
            let mut h = Histogram::new(50);
            for &v in vals {
                h.push(v);
            }
            h
        };
        let mut local = feed(&a);
        local.merge(&feed(&b));
        let mut wired = round_trip(&feed(&a));
        wired.merge(&round_trip(&feed(&b)));
        prop_assert_eq!(digest(|f| local.digest(f)), digest(|f| wired.digest(f)));
    }

    #[test]
    fn net_counters_round_trip_and_merge(
        a in proptest::collection::vec(any::<u32>(), 6..7),
        b in proptest::collection::vec(any::<u32>(), 6..7),
    ) {
        let mk = |v: &[u32]| NetCounters {
            sent: v[0] as u64,
            delivered: v[1] as u64,
            dropped_outage: v[2] as u64,
            dropped_congestion: v[3] as u64,
            lsa_bytes: v[4] as u64,
            lsa_entries: v[5] as u64,
        };
        let (ca, cb) = (mk(&a), mk(&b));
        prop_assert_eq!(round_trip(&ca), ca);
        let mut local = ca;
        local.merge(&cb);
        let mut wired = round_trip(&ca);
        wired.merge(&round_trip(&cb));
        prop_assert_eq!(local, wired);
    }

    #[test]
    fn window_accum_soa_matches_the_aos_reference(
        a in proptest::collection::vec(arb_outcome(), 0..80),
        b in proptest::collection::vec(arb_outcome(), 0..80),
    ) {
        let width = SimDuration::from_mins(20);
        let feed_soa = |outs: &[PairOutcome]| {
            let mut acc = WindowAccum::new(HOSTS as usize, METHODS as usize, width);
            for o in outs {
                acc.on_outcome(o);
            }
            acc
        };
        let feed_aos = |outs: &[PairOutcome]| {
            let mut acc = aos::WindowAccum::new(HOSTS as usize, METHODS as usize, width);
            for o in outs {
                acc.on_outcome(o);
            }
            acc
        };
        // Mid-stream, open windows and all: the SoA layout must emit
        // byte-identical wire JSON to the array-of-structs original.
        let (mut soa, mut aos) = (feed_soa(&a), feed_aos(&a));
        prop_assert_eq!(
            serde_json::to_string(&soa).unwrap(),
            serde_json::to_string(&aos).unwrap(),
            "open-window wire bytes diverged from the AoS layout"
        );
        // ... and the close/merge semantics must match too.
        soa.finish();
        aos.finish();
        let (mut soa_b, mut aos_b) = (feed_soa(&b), feed_aos(&b));
        soa_b.finish();
        aos_b.finish();
        soa.merge(&soa_b);
        aos.merge(&aos_b);
        prop_assert_eq!(
            serde_json::to_string(&soa).unwrap(),
            serde_json::to_string(&aos).unwrap()
        );
        prop_assert_eq!(digest(|f| soa.digest(f)), digest(|f| aos.digest(f)));
    }

    #[test]
    fn loss_accum_soa_matches_the_aos_reference(
        depth in 2usize..=MAX_PROBE_LEGS,
        a in proptest::collection::vec(arb_outcome(), 0..80),
        b in proptest::collection::vec(arb_outcome(), 0..80),
    ) {
        let feed_soa = |outs: &[PairOutcome]| {
            let mut acc = LossAccum::with_depth(HOSTS as usize, METHODS as usize, depth);
            for o in outs {
                acc.on_outcome(o);
            }
            acc
        };
        let feed_aos = |outs: &[PairOutcome]| {
            let mut acc = aos::LossAccum::with_depth(HOSTS as usize, METHODS as usize, depth);
            for o in outs {
                acc.on_outcome(o);
            }
            acc
        };
        let (mut soa, mut aos) = (feed_soa(&a), feed_aos(&a));
        prop_assert_eq!(
            serde_json::to_string(&soa).unwrap(),
            serde_json::to_string(&aos).unwrap(),
            "cell wire bytes diverged from the AoS layout at depth {}", depth
        );
        soa.merge(&feed_soa(&b));
        aos.merge(&feed_aos(&b));
        prop_assert_eq!(
            serde_json::to_string(&soa).unwrap(),
            serde_json::to_string(&aos).unwrap()
        );
        prop_assert_eq!(
            digest(|f| soa.digest(f)),
            digest(|f| aos.digest(f)),
            "depth {} merge digest diverged from the AoS reference", depth
        );
        // Spot the accessor too: every cell the public API exposes must
        // carry the AoS counters bit-for-bit.
        for m in 0..METHODS {
            for s in 0..HOSTS {
                for d in 0..HOSTS {
                    let got = soa.cell(m, HostId(s), HostId(d));
                    let want = &aos.cells[aos.idx(m, HostId(s), HostId(d))];
                    prop_assert_eq!(
                        serde_json::to_string(&got).unwrap(),
                        serde_json::to_string(want).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn collector_stats_round_trip_and_merge(
        a in proptest::collection::vec(any::<u32>(), 6..7),
        b in proptest::collection::vec(any::<u32>(), 6..7),
    ) {
        let mk = |v: &[u32]| CollectorStats {
            resolved: v[0] as u64,
            discarded: v[1] as u64,
            late_receives: v[2] as u64,
            malformed_receives: v[3] as u64,
            malformed_sends: v[4] as u64,
            peak_pending: v[5] as u64,
        };
        let (sa, sb) = (mk(&a), mk(&b));
        prop_assert_eq!(round_trip(&sa), sa);
        let mut local = sa;
        local.merge(&sb);
        let mut wired = round_trip(&sa);
        wired.merge(&round_trip(&sb));
        prop_assert_eq!(local, wired);
    }
}

/// The pre-SoA array-of-structs accumulators, kept verbatim as
/// reference models: the production code now stores parallel arrays for
/// cache density, and these originals pin both the wire bytes (the v1
/// serde shape *is* the AoS layout) and the merge/digest semantics the
/// rewrite must preserve.
mod aos {
    use super::{Cell, Fnv, Histogram};
    use netsim::{HostId, SimDuration};
    use trace::PairOutcome;

    #[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
    struct OpenWin {
        window_idx: u64,
        sent: u32,
        lost: u32,
        used: bool,
    }

    pub struct WindowAccum {
        width_us: u64,
        n: usize,
        open: Vec<OpenWin>,
        hist: Vec<Histogram>,
        thresholds: Vec<[u64; 10]>,
        windows: Vec<u64>,
    }

    impl WindowAccum {
        pub fn new(n: usize, methods: usize, width: SimDuration) -> Self {
            WindowAccum {
                width_us: width.as_micros(),
                n,
                open: vec![OpenWin::default(); n * n * methods],
                hist: (0..methods).map(|_| Histogram::new(200)).collect(),
                thresholds: vec![[0; 10]; methods],
                windows: vec![0; methods],
            }
        }

        fn close(&mut self, cell: usize) {
            let w = self.open[cell];
            if !w.used || w.sent == 0 {
                return;
            }
            let method = cell / (self.n * self.n);
            let rate = w.lost as f64 / w.sent as f64;
            self.hist[method].push(rate);
            self.windows[method] += 1;
            let th = &mut self.thresholds[method];
            if w.lost > 0 {
                th[0] += 1;
            }
            for (i, t) in th.iter_mut().enumerate().skip(1) {
                if rate > i as f64 / 10.0 {
                    *t += 1;
                }
            }
        }

        pub fn on_outcome(&mut self, o: &PairOutcome) {
            if o.discarded {
                return;
            }
            let cell =
                o.method as usize * self.n * self.n + o.src.idx() * self.n + o.dst.idx();
            let idx = o.sent.as_micros() / self.width_us;
            if self.open[cell].used && self.open[cell].window_idx != idx {
                self.close(cell);
                self.open[cell] = OpenWin::default();
            }
            let w = &mut self.open[cell];
            w.used = true;
            w.window_idx = idx;
            w.sent += 1;
            if o.all_lost() {
                w.lost += 1;
            }
        }

        pub fn finish(&mut self) {
            for cell in 0..self.open.len() {
                self.close(cell);
                self.open[cell] = OpenWin::default();
            }
        }

        pub fn merge(&mut self, other: &WindowAccum) {
            assert_eq!(self.width_us, other.width_us);
            assert_eq!(self.n, other.n);
            for (a, b) in self.hist.iter_mut().zip(&other.hist) {
                a.merge(b);
            }
            for (a, b) in self.thresholds.iter_mut().zip(&other.thresholds) {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            }
            for (a, b) in self.windows.iter_mut().zip(&other.windows) {
                *a += b;
            }
        }

        pub fn digest(&self, fnv: &mut Fnv) {
            fnv.write_u64(self.width_us);
            fnv.write_u64(self.n as u64);
            for h in &self.hist {
                h.digest(fnv);
            }
            for t in &self.thresholds {
                for &v in t {
                    fnv.write_u64(v);
                }
            }
            for &w in &self.windows {
                fnv.write_u64(w);
            }
        }
    }

    impl serde::Serialize for WindowAccum {
        fn to_value(&self) -> serde::Value {
            serde::Value::Map(vec![
                ("v".into(), serde::Value::Int(1)),
                ("width_us".into(), self.width_us.to_value()),
                ("n".into(), self.n.to_value()),
                ("open".into(), self.open.to_value()),
                ("hist".into(), self.hist.to_value()),
                ("thresholds".into(), self.thresholds.to_value()),
                ("windows".into(), self.windows.to_value()),
            ])
        }
    }

    pub struct LossAccum {
        n: usize,
        methods: usize,
        pub cells: Vec<Cell>,
        max_legs: usize,
        deep: Vec<u64>,
    }

    impl LossAccum {
        pub fn with_depth(n: usize, methods: usize, max_legs: usize) -> Self {
            let max_legs = max_legs.max(1);
            let deep =
                if max_legs > 2 { vec![0; n * n * methods * max_legs] } else { Vec::new() };
            LossAccum { n, methods, cells: vec![Cell::default(); n * n * methods], max_legs, deep }
        }

        pub fn idx(&self, method: u8, src: HostId, dst: HostId) -> usize {
            method as usize * self.n * self.n + src.idx() * self.n + dst.idx()
        }

        pub fn on_outcome(&mut self, o: &PairOutcome) {
            if o.discarded {
                return;
            }
            let i = self.idx(o.method, o.src, o.dst);
            let c = &mut self.cells[i];
            c.pairs += 1;
            if o.all_lost() {
                c.pairs_lost += 1;
            }
            if let Some(l1) = o.leg(0) {
                c.l1_sent += 1;
                if l1.lost {
                    c.l1_lost += 1;
                }
                if let Some(l2) = o.leg(1) {
                    if l1.lost {
                        c.first_lost_with_second += 1;
                        if l2.lost {
                            c.both_lost += 1;
                        }
                    }
                }
            }
            if let Some(l2) = o.leg(1) {
                c.l2_sent += 1;
                if l2.lost {
                    c.l2_lost += 1;
                }
            }
            if let Some(us) = o.best_one_way_us() {
                c.lat_sum_us += us as f64;
                c.lat_cnt += 1;
            }
            if !self.deep.is_empty() {
                let base = i * self.max_legs;
                for j in 1..=self.max_legs {
                    if o.prefix_all_lost(j) {
                        self.deep[base + j - 1] += 1;
                    }
                }
            }
        }

        pub fn merge(&mut self, other: &LossAccum) {
            assert_eq!(self.n, other.n);
            assert_eq!(self.methods, other.methods);
            assert_eq!(self.max_legs, other.max_legs);
            for (a, b) in self.deep.iter_mut().zip(&other.deep) {
                *a += b;
            }
            for (a, b) in self.cells.iter_mut().zip(&other.cells) {
                a.pairs += b.pairs;
                a.pairs_lost += b.pairs_lost;
                a.l1_sent += b.l1_sent;
                a.l1_lost += b.l1_lost;
                a.l2_sent += b.l2_sent;
                a.l2_lost += b.l2_lost;
                a.both_lost += b.both_lost;
                a.first_lost_with_second += b.first_lost_with_second;
                a.lat_sum_us += b.lat_sum_us;
                a.lat_cnt += b.lat_cnt;
            }
        }

        pub fn digest(&self, fnv: &mut Fnv) {
            fnv.write_u64(self.n as u64);
            fnv.write_u64(self.methods as u64);
            if !self.deep.is_empty() {
                fnv.write_u64(self.max_legs as u64);
                for &v in &self.deep {
                    fnv.write_u64(v);
                }
            }
            for c in &self.cells {
                fnv.write_u64(c.pairs);
                fnv.write_u64(c.pairs_lost);
                fnv.write_u64(c.l1_sent);
                fnv.write_u64(c.l1_lost);
                fnv.write_u64(c.l2_sent);
                fnv.write_u64(c.l2_lost);
                fnv.write_u64(c.both_lost);
                fnv.write_u64(c.first_lost_with_second);
                fnv.write_f64(c.lat_sum_us);
                fnv.write_u64(c.lat_cnt);
            }
        }
    }

    impl serde::Serialize for LossAccum {
        fn to_value(&self) -> serde::Value {
            serde::Value::Map(vec![
                ("v".into(), serde::Value::Int(1)),
                ("n".into(), self.n.to_value()),
                ("methods".into(), self.methods.to_value()),
                ("max_legs".into(), self.max_legs.to_value()),
                ("cells".into(), self.cells.to_value()),
                ("deep".into(), self.deep.to_value()),
            ])
        }
    }
}
