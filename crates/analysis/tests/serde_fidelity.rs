//! Serde-fidelity property tests: an accumulator that crossed the wire
//! must be indistinguishable — to the bit — from one that never left
//! the process.
//!
//! This is the invariant the distributed campaign runner leans on: a
//! worker streams random outcomes into a private accumulator, ships it
//! as JSON, and the coordinator merges the deserialized copy into a
//! sibling. If any counter, histogram bucket, open-window fragment or
//! f64 latency sum loses precision in transit, the merged digest here
//! diverges from the never-serialized path long before a campaign
//! fingerprint would.
//!
//! Every property runs the same shape: random outcomes → accumulate →
//! JSON round-trip → merge into a sibling → [`Fnv`] digest equals the
//! digest of merging the originals directly. Outcomes include 3- and
//! 4-leg probes so the `max_legs > 2` best-of-first-j extension (the
//! k-leg depth guard) crosses the wire too, not just the paper's pairs.

use analysis::{Fnv, Histogram, LossAccum, WindowAccum};
use netsim::{HostId, NetCounters, SimDuration, SimTime};
use proptest::prelude::*;
use trace::record::MAX_PROBE_LEGS;
use trace::{CollectorStats, LegOutcome, PairOutcome};

const HOSTS: u16 = 4;
const METHODS: u8 = 3;

fn arb_leg() -> impl Strategy<Value = LegOutcome> {
    (0u8..4, any::<bool>(), any::<Option<i64>>()).prop_map(|(route, lost, one_way)| LegOutcome {
        route,
        lost,
        // Lost legs never observed a one-way time.
        one_way_us: if lost { None } else { one_way },
    })
}

fn arb_outcome() -> impl Strategy<Value = PairOutcome> {
    (
        any::<u64>(),
        0..METHODS,
        0..HOSTS,
        0..HOSTS,
        0u64..3_600_000_000, // send instants inside one hour
        1usize..=MAX_PROBE_LEGS,
        proptest::collection::vec(arb_leg(), MAX_PROBE_LEGS..MAX_PROBE_LEGS + 1),
    )
        .prop_map(|(id, method, src, dst_raw, sent_us, present, legs)| {
            let dst = if dst_raw == src { (src + 1) % HOSTS } else { dst_raw };
            let mut slots = [None; MAX_PROBE_LEGS];
            for (slot, leg) in slots.iter_mut().zip(&legs).take(present) {
                *slot = Some(*leg);
            }
            PairOutcome::from_legs(
                id,
                method,
                HostId(src),
                HostId(dst),
                SimTime::from_micros(sent_us),
                slots,
                // Deterministic-but-arbitrary sprinkling of §4.1 discards.
                id % 11 == 0,
            )
        })
}

fn digest(write: impl FnOnce(&mut Fnv)) -> u64 {
    let mut fnv = Fnv::new();
    write(&mut fnv);
    fnv.finish()
}

fn round_trip<T: serde::Serialize + serde::Deserialize>(v: &T) -> T {
    let json = serde_json::to_string(v).expect("accumulators always serialize");
    serde_json::from_str(&json).expect("own JSON must parse")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn loss_accum_merges_identically_after_the_wire(
        depth in 2usize..=MAX_PROBE_LEGS,
        a in proptest::collection::vec(arb_outcome(), 0..80),
        b in proptest::collection::vec(arb_outcome(), 0..80),
    ) {
        let feed = |outs: &[PairOutcome]| {
            let mut acc = LossAccum::with_depth(HOSTS as usize, METHODS as usize, depth);
            for o in outs {
                acc.on_outcome(o);
            }
            acc
        };
        // Never-serialized reference merge.
        let mut local = feed(&a);
        local.merge(&feed(&b));
        // The distributed path: both sides cross the wire first.
        let mut wired = round_trip(&feed(&a));
        wired.merge(&round_trip(&feed(&b)));
        prop_assert_eq!(
            digest(|f| local.digest(f)),
            digest(|f| wired.digest(f)),
            "depth {} merge diverged after JSON round-trip", depth
        );
        // The k-leg depth guard: the deep best-of-first-j curve itself
        // must survive, not just the digest fold.
        prop_assert_eq!(local.depth(), wired.depth());
        if depth > 2 {
            for m in 0..METHODS {
                prop_assert_eq!(
                    local.best_of_first_pct(m),
                    wired.best_of_first_pct(m)
                );
            }
        }
    }

    #[test]
    fn window_accum_round_trips_open_windows_exactly(
        a in proptest::collection::vec(arb_outcome(), 0..80),
        b in proptest::collection::vec(arb_outcome(), 0..80),
    ) {
        let feed = |outs: &[PairOutcome]| {
            let mut acc =
                WindowAccum::new(HOSTS as usize, METHODS as usize, SimDuration::from_mins(20));
            for o in outs {
                acc.on_outcome(o);
            }
            acc
        };
        // Round-trip *before* finish: the open-window fragments must
        // cross the wire with full fidelity, so closing them afterwards
        // lands on identical statistics.
        let mut direct = feed(&a);
        let mut wired = round_trip(&direct);
        direct.finish();
        wired.finish();
        prop_assert_eq!(
            digest(|f| direct.digest(f)),
            digest(|f| wired.digest(f)),
            "open windows lost fidelity in transit"
        );
        // And the slice-shaped merge (finished sides only).
        let mut other = feed(&b);
        other.finish();
        direct.merge(&other);
        wired.merge(&round_trip(&other));
        prop_assert_eq!(digest(|f| direct.digest(f)), digest(|f| wired.digest(f)));
    }

    #[test]
    fn histogram_round_trips_and_merges_exactly(
        a in proptest::collection::vec(-0.5f64..1.5, 0..200),
        b in proptest::collection::vec(-0.5f64..1.5, 0..200),
    ) {
        let feed = |vals: &[f64]| {
            let mut h = Histogram::new(50);
            for &v in vals {
                h.push(v);
            }
            h
        };
        let mut local = feed(&a);
        local.merge(&feed(&b));
        let mut wired = round_trip(&feed(&a));
        wired.merge(&round_trip(&feed(&b)));
        prop_assert_eq!(digest(|f| local.digest(f)), digest(|f| wired.digest(f)));
    }

    #[test]
    fn net_counters_round_trip_and_merge(
        a in proptest::collection::vec(any::<u32>(), 6..7),
        b in proptest::collection::vec(any::<u32>(), 6..7),
    ) {
        let mk = |v: &[u32]| NetCounters {
            sent: v[0] as u64,
            delivered: v[1] as u64,
            dropped_outage: v[2] as u64,
            dropped_congestion: v[3] as u64,
            lsa_bytes: v[4] as u64,
            lsa_entries: v[5] as u64,
        };
        let (ca, cb) = (mk(&a), mk(&b));
        prop_assert_eq!(round_trip(&ca), ca);
        let mut local = ca;
        local.merge(&cb);
        let mut wired = round_trip(&ca);
        wired.merge(&round_trip(&cb));
        prop_assert_eq!(local, wired);
    }

    #[test]
    fn collector_stats_round_trip_and_merge(
        a in proptest::collection::vec(any::<u32>(), 6..7),
        b in proptest::collection::vec(any::<u32>(), 6..7),
    ) {
        let mk = |v: &[u32]| CollectorStats {
            resolved: v[0] as u64,
            discarded: v[1] as u64,
            late_receives: v[2] as u64,
            malformed_receives: v[3] as u64,
            malformed_sends: v[4] as u64,
            peak_pending: v[5] as u64,
        };
        let (sa, sb) = (mk(&a), mk(&b));
        prop_assert_eq!(round_trip(&sa), sa);
        let mut local = sa;
        local.merge(&sb);
        let mut wired = round_trip(&sa);
        wired.merge(&round_trip(&sb));
        prop_assert_eq!(local, wired);
    }
}
