//! A stable 64-bit fold over accumulator state.
//!
//! The sharding equivalence harness needs to assert that two experiment
//! runs produced **byte-identical** statistics, including the exact bit
//! patterns of floating-point sums (f64 addition is non-associative, so
//! merge order matters and must be proven fixed). `std::hash` offers no
//! cross-run stability guarantee, so this module carries a tiny FNV-1a
//! implementation whose output depends only on the bytes fed to it —
//! same state, same fingerprint, on every platform and in every process.

/// Incremental FNV-1a 64-bit fold.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a fresh fold.
    pub fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `f64` by exact bit pattern — `1.0 + 2.0` and
    /// `2.0 + 1.0` fold equal, but `(a + b) + c` and `a + (b + c)`
    /// generally do not, which is precisely what the equivalence
    /// harness must detect.
    pub fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// The folded value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins a composed fold (strings, u64s, f64 bit patterns) to a golden
    /// value. `ExperimentOutput::fingerprint` goldens across the repo
    /// (e.g. `tests/sharding_equivalence.rs`) assume this fold never
    /// changes; if this test moves, every recorded fingerprint moves with
    /// it — re-record deliberately or revert.
    #[test]
    fn composed_fold_is_stable() {
        let mut f = Fnv::new();
        f.write(b"scenario");
        f.write(&[0]);
        f.write_u64(0xDEAD_BEEF);
        f.write_f64(0.1 + 0.2);
        f.write_u64(42);
        assert_eq!(f.finish(), 0x0ae7_3278_ecc5_1cd2);
    }

    #[test]
    fn known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c — the published test vector.
        let mut f = Fnv::new();
        f.write(b"a");
        assert_eq!(f.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn order_sensitive() {
        let mut a = Fnv::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn f64_bit_exact() {
        let mut a = Fnv::new();
        a.write_f64(0.1 + 0.2);
        let mut b = Fnv::new();
        b.write_f64(0.3);
        // 0.1 + 0.2 != 0.3 in IEEE 754; the fold must see that.
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv::new();
        c.write_f64(0.1 + 0.2);
        assert_eq!(a.finish(), c.finish());
    }
}
