//! Clock-skew correction (§4.1).
//!
//! One-way latencies measured against two different host clocks absorb
//! the clock offset difference: `obs(s→d) = true(s→d) + skew(d) −
//! skew(s)`. Averaging a path's mean with the reverse path's mean cancels
//! the skew exactly (at the price of symmetrising genuine asymmetry —
//! the same trade the paper makes): "We average one-way latency
//! summaries and differences with those on the reverse path to average
//! out timekeeping errors."

use std::collections::HashMap;

/// Applies forward/reverse averaging to per-path means.
///
/// Input: `(src, dst, mean_us)` per directed path. Output: the same
/// paths with corrected means; a path whose reverse was never observed
/// keeps its raw mean.
pub fn corrected_path_means(raw: &[(u16, u16, f64)]) -> Vec<(u16, u16, f64)> {
    // detlint: allow(nondet-iter) — lookup-only reverse-path index; the
    // output order below is the caller's `raw` order, never the map's.
    let index: HashMap<(u16, u16), f64> =
        raw.iter().map(|&(s, d, m)| ((s, d), m)).collect();
    raw.iter()
        .map(|&(s, d, m)| {
            let corrected = match index.get(&(d, s)) {
                Some(rev) => (m + rev) / 2.0,
                None => m,
            };
            (s, d, corrected)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_pair_cancels_skew() {
        // true latency 50 ms each way, skew(d)-skew(s) = +20 ms.
        let raw = vec![(0, 1, 70_000.0), (1, 0, 30_000.0)];
        let c = corrected_path_means(&raw);
        assert_eq!(c[0], (0, 1, 50_000.0));
        assert_eq!(c[1], (1, 0, 50_000.0));
    }

    #[test]
    fn missing_reverse_keeps_raw() {
        let raw = vec![(0, 1, 42_000.0)];
        let c = corrected_path_means(&raw);
        assert_eq!(c, vec![(0, 1, 42_000.0)]);
    }

    #[test]
    fn asymmetry_is_symmetrised() {
        // Genuinely asymmetric 40/60: the method reports 50/50 — the
        // documented trade-off of the paper's approach.
        let raw = vec![(2, 3, 40_000.0), (3, 2, 60_000.0)];
        let c = corrected_path_means(&raw);
        assert_eq!(c[0].2, 50_000.0);
        assert_eq!(c[1].2, 50_000.0);
    }

    #[test]
    fn empty_input() {
        assert!(corrected_path_means(&[]).is_empty());
    }
}
