//! Per-(path, method) loss and latency accumulation.
//!
//! The vocabulary follows Table 5 of the paper:
//!
//! * **1lp** — probability the first packet of a probe was lost;
//! * **2lp** — probability the second packet was lost;
//! * **totlp** — probability the probe failed end-to-end (every copy
//!   lost); equals 1lp for single-packet methods;
//! * **clp** — conditional loss probability of the second packet given
//!   the first was lost;
//! * **lat** — mean one-way latency of the first copy to arrive.

use crate::latency::corrected_path_means;
use netsim::HostId;
use trace::PairOutcome;

/// Counters for one (method, src, dst) cell.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct Cell {
    /// Probe pairs observed.
    pub pairs: u64,
    /// Pairs where every copy was lost.
    pub pairs_lost: u64,
    /// First legs sent / lost.
    pub l1_sent: u64,
    /// First legs lost.
    pub l1_lost: u64,
    /// Second legs sent.
    pub l2_sent: u64,
    /// Second legs lost.
    pub l2_lost: u64,
    /// Pairs with both legs present where both were lost.
    pub both_lost: u64,
    /// Pairs with both legs present where the first was lost.
    pub first_lost_with_second: u64,
    /// Sum of best (min across received copies) one-way micros.
    pub lat_sum_us: f64,
    /// Count behind `lat_sum_us`.
    pub lat_cnt: u64,
}

/// Summary statistics for one method (the paper's table columns, in
/// percent and milliseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodSummary {
    /// First-packet loss, percent.
    pub lp1: f64,
    /// Second-packet loss, percent (`None` for single-packet methods).
    pub lp2: Option<f64>,
    /// End-to-end pair loss, percent.
    pub totlp: f64,
    /// Conditional loss of packet 2 given packet 1 lost, percent.
    pub clp: Option<f64>,
    /// Mean latency, milliseconds (skew-corrected; RTT for round-trip
    /// datasets).
    pub lat_ms: f64,
    /// Number of probe pairs behind the summary.
    pub pairs: u64,
}

/// The per-cell counters of [`Cell`], structure-of-arrays: summaries,
/// curves and merges scan one counter across every cell, so each scan
/// walks a dense array instead of striding 80-byte structs.
#[derive(Debug, Default)]
struct CellArrays {
    pairs: Vec<u64>,
    pairs_lost: Vec<u64>,
    l1_sent: Vec<u64>,
    l1_lost: Vec<u64>,
    l2_sent: Vec<u64>,
    l2_lost: Vec<u64>,
    both_lost: Vec<u64>,
    first_lost_with_second: Vec<u64>,
    lat_sum_us: Vec<f64>,
    lat_cnt: Vec<u64>,
}

impl CellArrays {
    fn with_len(len: usize) -> Self {
        CellArrays {
            pairs: vec![0; len],
            pairs_lost: vec![0; len],
            l1_sent: vec![0; len],
            l1_lost: vec![0; len],
            l2_sent: vec![0; len],
            l2_lost: vec![0; len],
            both_lost: vec![0; len],
            first_lost_with_second: vec![0; len],
            lat_sum_us: vec![0.0; len],
            lat_cnt: vec![0; len],
        }
    }

    fn len(&self) -> usize {
        self.pairs.len()
    }

    fn get(&self, i: usize) -> Cell {
        Cell {
            pairs: self.pairs[i],
            pairs_lost: self.pairs_lost[i],
            l1_sent: self.l1_sent[i],
            l1_lost: self.l1_lost[i],
            l2_sent: self.l2_sent[i],
            l2_lost: self.l2_lost[i],
            both_lost: self.both_lost[i],
            first_lost_with_second: self.first_lost_with_second[i],
            lat_sum_us: self.lat_sum_us[i],
            lat_cnt: self.lat_cnt[i],
        }
    }

    fn from_cells(cells: &[Cell]) -> Self {
        let mut a = CellArrays::with_len(cells.len());
        for (i, c) in cells.iter().enumerate() {
            a.pairs[i] = c.pairs;
            a.pairs_lost[i] = c.pairs_lost;
            a.l1_sent[i] = c.l1_sent;
            a.l1_lost[i] = c.l1_lost;
            a.l2_sent[i] = c.l2_sent;
            a.l2_lost[i] = c.l2_lost;
            a.both_lost[i] = c.both_lost;
            a.first_lost_with_second[i] = c.first_lost_with_second;
            a.lat_sum_us[i] = c.lat_sum_us;
            a.lat_cnt[i] = c.lat_cnt;
        }
        a
    }

    fn to_cells(&self) -> Vec<Cell> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

/// Streaming per-path loss/latency accumulator.
#[derive(Debug)]
pub struct LossAccum {
    n: usize,
    methods: usize,
    cells: CellArrays,
    /// Redundancy degree: the maximum legs any method sends. The base
    /// [`Cell`] counters cover the paper's pair shape (legs 1–2); when
    /// `max_legs > 2` the `deep` extension tracks the full
    /// best-of-first-j loss curve.
    max_legs: usize,
    /// Per (cell, j) count of probes whose first `j` legs were all lost,
    /// `j = 1..=max_legs`, laid out `cell * max_legs + (j - 1)`. Empty
    /// when `max_legs <= 2` — there the curve is derivable from the base
    /// cells (`j=1` ↔ `l1_lost`, `j=2` ↔ `pairs_lost`), and keeping the
    /// allocation (and the digest, see [`Self::digest`]) untouched
    /// preserves every recorded pair-era fingerprint golden.
    deep: Vec<u64>,
}

impl LossAccum {
    /// Creates an accumulator for `methods` methods over `n` hosts, for
    /// method sets of at most two legs (the paper's pairs).
    pub fn new(n: usize, methods: usize) -> Self {
        Self::with_depth(n, methods, 2)
    }

    /// Creates an accumulator tracking best-of-first-j loss for methods
    /// of up to `max_legs` redundant legs.
    pub fn with_depth(n: usize, methods: usize, max_legs: usize) -> Self {
        let max_legs = max_legs.max(1);
        let deep =
            if max_legs > 2 { vec![0; n * n * methods * max_legs] } else { Vec::new() };
        LossAccum { n, methods, cells: CellArrays::with_len(n * n * methods), max_legs, deep }
    }

    #[inline]
    fn idx(&self, method: u8, src: HostId, dst: HostId) -> usize {
        debug_assert!((method as usize) < self.methods);
        method as usize * self.n * self.n + src.idx() * self.n + dst.idx()
    }

    /// Ingests one resolved probe pair (discarded samples are skipped).
    pub fn on_outcome(&mut self, o: &PairOutcome) {
        if o.discarded {
            return;
        }
        let i = self.idx(o.method, o.src, o.dst);
        let c = &mut self.cells;
        c.pairs[i] += 1;
        if o.all_lost() {
            c.pairs_lost[i] += 1;
        }
        if let Some(l1) = o.leg(0) {
            c.l1_sent[i] += 1;
            if l1.lost {
                c.l1_lost[i] += 1;
            }
            if let Some(l2) = o.leg(1) {
                if l1.lost {
                    c.first_lost_with_second[i] += 1;
                    if l2.lost {
                        c.both_lost[i] += 1;
                    }
                }
            }
        }
        if let Some(l2) = o.leg(1) {
            c.l2_sent[i] += 1;
            if l2.lost {
                c.l2_lost[i] += 1;
            }
        }
        if let Some(us) = o.best_one_way_us() {
            c.lat_sum_us[i] += us as f64;
            c.lat_cnt[i] += 1;
        }
        if !self.deep.is_empty() {
            let base = i * self.max_legs;
            for j in 1..=self.max_legs {
                if o.prefix_all_lost(j) {
                    self.deep[base + j - 1] += 1;
                }
            }
        }
    }

    /// Folds another accumulator into this one, cell by cell.
    ///
    /// This is the sharded-run merge: each workload slice streams its
    /// outcomes into a private `LossAccum`, and the slices are merged in
    /// slice order. Counter sums are exact; the latency sums are f64, so
    /// the *order* of merging is part of the result's byte identity —
    /// callers must merge in a fixed order (the shard runner always
    /// merges ascending by slice index).
    ///
    /// Panics if the shapes (host count, method count) differ.
    pub fn merge(&mut self, other: &LossAccum) {
        assert_eq!(self.n, other.n, "host counts must match");
        assert_eq!(self.methods, other.methods, "method counts must match");
        assert_eq!(self.max_legs, other.max_legs, "redundancy depths must match");
        for (a, b) in self.deep.iter_mut().zip(&other.deep) {
            *a += b;
        }
        // Array-at-a-time instead of cell-at-a-time: every addition is
        // elementwise per cell, so the result (including the f64 latency
        // sums) is bit-identical to the struct-wise fold — what matters
        // for byte identity is the order *accumulators* merge in, which
        // is the caller's contract above.
        let (a, b) = (&mut self.cells, &other.cells);
        let sum = |x: &mut Vec<u64>, y: &Vec<u64>| {
            for (xa, yb) in x.iter_mut().zip(y) {
                *xa += yb;
            }
        };
        sum(&mut a.pairs, &b.pairs);
        sum(&mut a.pairs_lost, &b.pairs_lost);
        sum(&mut a.l1_sent, &b.l1_sent);
        sum(&mut a.l1_lost, &b.l1_lost);
        sum(&mut a.l2_sent, &b.l2_sent);
        sum(&mut a.l2_lost, &b.l2_lost);
        sum(&mut a.both_lost, &b.both_lost);
        sum(&mut a.first_lost_with_second, &b.first_lost_with_second);
        for (xa, yb) in a.lat_sum_us.iter_mut().zip(&b.lat_sum_us) {
            *xa += yb;
        }
        sum(&mut a.lat_cnt, &b.lat_cnt);
    }

    /// Feeds the accumulator's exact state (every counter and the bit
    /// patterns of every latency sum) into a fingerprint fold.
    ///
    /// The depth extension is folded only when it exists (`max_legs >
    /// 2`): pair-shaped accumulators must keep producing the exact
    /// digest stream they did before k-leg probes existed, so every
    /// recorded scenario fingerprint golden stays valid.
    pub fn digest(&self, fnv: &mut crate::fingerprint::Fnv) {
        fnv.write_u64(self.n as u64);
        fnv.write_u64(self.methods as u64);
        if !self.deep.is_empty() {
            fnv.write_u64(self.max_legs as u64);
            for &v in &self.deep {
                fnv.write_u64(v);
            }
        }
        // The fold order is the pair-era per-cell interleaving — every
        // recorded fingerprint golden depends on it — so this gathers
        // across the arrays rather than streaming each in turn.
        for i in 0..self.cells.len() {
            fnv.write_u64(self.cells.pairs[i]);
            fnv.write_u64(self.cells.pairs_lost[i]);
            fnv.write_u64(self.cells.l1_sent[i]);
            fnv.write_u64(self.cells.l1_lost[i]);
            fnv.write_u64(self.cells.l2_sent[i]);
            fnv.write_u64(self.cells.l2_lost[i]);
            fnv.write_u64(self.cells.both_lost[i]);
            fnv.write_u64(self.cells.first_lost_with_second[i]);
            fnv.write_f64(self.cells.lat_sum_us[i]);
            fnv.write_u64(self.cells.lat_cnt[i]);
        }
    }

    /// Read access to one cell (assembled from the per-counter arrays).
    pub fn cell(&self, method: u8, src: HostId, dst: HostId) -> Cell {
        self.cells.get(self.idx(method, src, dst))
    }

    /// Host count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The accumulator's redundancy degree (maximum legs any method
    /// sends; 2 for the paper's pair-shaped sets).
    pub fn depth(&self) -> usize {
        self.max_legs
    }

    /// The best-of-first-j loss curve for a method: element `j - 1` is
    /// the percentage of probes whose first `j` copies were *all* lost,
    /// for `j = 1..=depth()`.
    ///
    /// `j = 1` is the paper's first-packet loss over all probes and the
    /// last element is `totlp` — the curve's drop from j=1 to j=k is
    /// exactly what the k-th redundant copy buys. Single-packet methods
    /// yield a flat curve. Denominator: probes observed (the summary's
    /// `pairs`).
    pub fn best_of_first_pct(&self, method: u8) -> Vec<f64> {
        let base = method as usize * self.n * self.n;
        let range = base..base + self.n * self.n;
        let pairs: u64 = self.cells.pairs[range.clone()].iter().sum();
        let pct = |num: u64| if pairs == 0 { 0.0 } else { 100.0 * num as f64 / pairs as f64 };
        if self.deep.is_empty() {
            // Pair-shaped sets: the curve lives in the base counters.
            let l1: u64 = self.cells.l1_lost[range.clone()].iter().sum();
            let all: u64 = self.cells.pairs_lost[range].iter().sum();
            return match self.max_legs {
                1 => vec![pct(all)],
                _ => vec![pct(l1), pct(all)],
            };
        }
        (1..=self.max_legs)
            .map(|j| {
                let lost: u64 = (base..base + self.n * self.n)
                    .map(|cell| self.deep[cell * self.max_legs + j - 1])
                    .sum();
                pct(lost)
            })
            .collect()
    }

    /// Summary row for a method (the Table 5 / Table 7 columns).
    pub fn summary(&self, method: u8) -> MethodSummary {
        let base = method as usize * self.n * self.n;
        let range = base..base + self.n * self.n;
        let c = &self.cells;
        let t = Cell {
            pairs: c.pairs[range.clone()].iter().sum(),
            pairs_lost: c.pairs_lost[range.clone()].iter().sum(),
            l1_sent: c.l1_sent[range.clone()].iter().sum(),
            l1_lost: c.l1_lost[range.clone()].iter().sum(),
            l2_sent: c.l2_sent[range.clone()].iter().sum(),
            l2_lost: c.l2_lost[range.clone()].iter().sum(),
            both_lost: c.both_lost[range.clone()].iter().sum(),
            first_lost_with_second: c.first_lost_with_second[range].iter().sum(),
            ..Cell::default()
        };
        let pct = |num: u64, den: u64| if den == 0 { 0.0 } else { 100.0 * num as f64 / den as f64 };
        let lat_ms = {
            let means = self.per_path_latency_ms(method);
            if means.is_empty() {
                0.0
            } else {
                means.iter().map(|&(_, _, m)| m).sum::<f64>() / means.len() as f64
            }
        };
        MethodSummary {
            lp1: pct(t.l1_lost, t.l1_sent),
            lp2: if t.l2_sent > 0 { Some(pct(t.l2_lost, t.l2_sent)) } else { None },
            totlp: pct(t.pairs_lost, t.pairs),
            clp: if t.first_lost_with_second > 0 {
                Some(pct(t.both_lost, t.first_lost_with_second))
            } else {
                None
            },
            lat_ms,
            pairs: t.pairs,
        }
    }

    /// Per-path end-to-end loss rates (fraction), for Figure 2.
    pub fn per_path_loss(&self, method: u8) -> Vec<(HostId, HostId, f64)> {
        let mut v = Vec::new();
        for s in 0..self.n {
            for d in 0..self.n {
                if s == d {
                    continue;
                }
                let c = self.cell(method, HostId(s as u16), HostId(d as u16));
                if c.pairs > 0 {
                    v.push((
                        HostId(s as u16),
                        HostId(d as u16),
                        c.pairs_lost as f64 / c.pairs as f64,
                    ));
                }
            }
        }
        v
    }

    /// Per-path conditional loss probabilities (percent) for paths that
    /// observed at least `min_first_losses` first-packet losses — the
    /// population of Figure 4.
    pub fn per_path_clp(&self, method: u8, min_first_losses: u64) -> Vec<f64> {
        let mut v = Vec::new();
        for s in 0..self.n {
            for d in 0..self.n {
                if s == d {
                    continue;
                }
                let c = self.cell(method, HostId(s as u16), HostId(d as u16));
                if c.first_lost_with_second >= min_first_losses.max(1) {
                    v.push(100.0 * c.both_lost as f64 / c.first_lost_with_second as f64);
                }
            }
        }
        v
    }

    /// Per-path mean latency in milliseconds, clock-skew corrected by
    /// averaging with the reverse path (§4.1).
    pub fn per_path_latency_ms(&self, method: u8) -> Vec<(HostId, HostId, f64)> {
        let mut raw = Vec::new();
        for s in 0..self.n {
            for d in 0..self.n {
                if s == d {
                    continue;
                }
                let c = self.cell(method, HostId(s as u16), HostId(d as u16));
                if c.lat_cnt > 0 {
                    raw.push((s as u16, d as u16, c.lat_sum_us / c.lat_cnt as f64));
                }
            }
        }
        corrected_path_means(&raw)
            .into_iter()
            .map(|(s, d, us)| (HostId(s), HostId(d), us / 1_000.0))
            .collect()
    }
}

// Versioned wire format (v1): every private counter (and the exact f64
// bit pattern of each latency sum, via serde_json's shortest-round-trip
// float writer) crosses the wire, so a deserialized accumulator merges
// byte-identically to one that never left memory. Unknown fields and
// versions are rejected loudly.
impl serde::Serialize for LossAccum {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("v".into(), serde::Value::Int(1)),
            ("n".into(), self.n.to_value()),
            ("methods".into(), self.methods.to_value()),
            ("max_legs".into(), self.max_legs.to_value()),
            // In-memory the cells are SoA; the wire keeps the v1
            // `Vec<Cell>` shape.
            ("cells".into(), self.cells.to_cells().to_value()),
            ("deep".into(), self.deep.to_value()),
        ])
    }
}

impl serde::Deserialize for LossAccum {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Map(entries) = v else {
            return Err(serde::Error::new(format!("LossAccum: expected map, found {}", v.kind())));
        };
        for (k, _) in entries {
            if !matches!(k.as_str(), "v" | "n" | "methods" | "max_legs" | "cells" | "deep") {
                return Err(serde::Error::new(format!("LossAccum: unknown field `{k}`")));
            }
        }
        let version = u32::from_value(v.field("v")?)?;
        if version != 1 {
            return Err(serde::Error::new(format!(
                "LossAccum: unsupported wire version {version} (this build speaks 1)"
            )));
        }
        let wire_cells = Vec::<Cell>::from_value(v.field("cells")?)?;
        let a = LossAccum {
            n: usize::from_value(v.field("n")?)?,
            methods: usize::from_value(v.field("methods")?)?,
            cells: CellArrays::from_cells(&wire_cells),
            max_legs: usize::from_value(v.field("max_legs")?)?,
            deep: Vec::<u64>::from_value(v.field("deep")?)?,
        };
        if a.max_legs == 0 {
            return Err(serde::Error::new("LossAccum: max_legs must be >= 1"));
        }
        let cells = a.n * a.n * a.methods;
        if a.cells.len() != cells {
            return Err(serde::Error::new(format!(
                "LossAccum: {} cells for shape n={} methods={} (want {cells})",
                a.cells.len(),
                a.n,
                a.methods
            )));
        }
        // The depth extension exists exactly when max_legs > 2 (the
        // pair-era digest invariant depends on this).
        let deep = if a.max_legs > 2 { cells * a.max_legs } else { 0 };
        if a.deep.len() != deep {
            return Err(serde::Error::new(format!(
                "LossAccum: {} deep counters for max_legs={} (want {deep})",
                a.deep.len(),
                a.max_legs
            )));
        }
        for &s in &a.cells.lat_sum_us {
            if !s.is_finite() {
                return Err(serde::Error::new("LossAccum: non-finite latency sum"));
            }
        }
        Ok(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimTime;
    use trace::LegOutcome;

    fn outcome(
        method: u8,
        src: u16,
        dst: u16,
        legs: [Option<(bool, Option<i64>)>; 2],
        discarded: bool,
    ) -> PairOutcome {
        let mk = |x: Option<(bool, Option<i64>)>| {
            x.map(|(lost, ow)| LegOutcome { route: 0, lost, one_way_us: ow })
        };
        PairOutcome::from_legs(
            0,
            method,
            HostId(src),
            HostId(dst),
            SimTime::ZERO,
            [mk(legs[0]), mk(legs[1]), None, None],
            discarded,
        )
    }

    #[test]
    fn single_leg_method_totlp_equals_lp1() {
        let mut a = LossAccum::new(3, 2);
        for i in 0..100 {
            a.on_outcome(&outcome(
                0,
                0,
                1,
                [Some((i < 10, if i < 10 { None } else { Some(50_000) })), None],
                false,
            ));
        }
        let s = a.summary(0);
        assert_eq!(s.lp1, 10.0);
        assert_eq!(s.totlp, 10.0);
        assert_eq!(s.lp2, None);
        assert_eq!(s.clp, None);
        assert_eq!(s.pairs, 100);
    }

    #[test]
    fn pair_method_counts_clp_and_totlp() {
        let mut a = LossAccum::new(3, 1);
        // 10 pairs: 4 both-lost, 2 first-lost-only, 1 second-lost-only,
        // 3 clean.
        for _ in 0..4 {
            a.on_outcome(&outcome(0, 0, 1, [Some((true, None)), Some((true, None))], false));
        }
        for _ in 0..2 {
            a.on_outcome(&outcome(0, 0, 1, [Some((true, None)), Some((false, Some(70_000)))], false));
        }
        a.on_outcome(&outcome(0, 0, 1, [Some((false, Some(50_000))), Some((true, None))], false));
        for _ in 0..3 {
            a.on_outcome(&outcome(
                0,
                0,
                1,
                [Some((false, Some(50_000))), Some((false, Some(60_000)))],
                false,
            ));
        }
        let s = a.summary(0);
        assert_eq!(s.lp1, 60.0); // 6/10
        assert_eq!(s.lp2, Some(50.0)); // 5/10
        assert_eq!(s.totlp, 40.0); // 4/10
        assert_eq!(s.clp, Some(100.0 * 4.0 / 6.0));
    }

    #[test]
    fn latency_uses_first_arriving_copy() {
        let mut a = LossAccum::new(2, 1);
        a.on_outcome(&outcome(
            0,
            0,
            1,
            [Some((false, Some(80_000))), Some((false, Some(30_000)))],
            false,
        ));
        // Reverse direction so skew correction has both sides.
        a.on_outcome(&outcome(
            0,
            1,
            0,
            [Some((false, Some(40_000))), Some((false, Some(50_000)))],
            false,
        ));
        let s = a.summary(0);
        // Forward best = 30 ms, reverse best = 40 ms; corrected both to 35.
        assert!((s.lat_ms - 35.0).abs() < 1e-9, "lat={}", s.lat_ms);
    }

    #[test]
    fn discarded_samples_are_ignored() {
        let mut a = LossAccum::new(2, 1);
        a.on_outcome(&outcome(0, 0, 1, [Some((true, None)), None], true));
        let s = a.summary(0);
        assert_eq!(s.pairs, 0);
        assert_eq!(s.totlp, 0.0);
    }

    #[test]
    fn per_path_loss_lists_only_observed_paths() {
        let mut a = LossAccum::new(3, 1);
        a.on_outcome(&outcome(0, 0, 1, [Some((true, None)), None], false));
        a.on_outcome(&outcome(0, 0, 1, [Some((false, Some(1_000))), None], false));
        let v = a.per_path_loss(0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, HostId(0));
        assert_eq!(v[0].1, HostId(1));
        assert!((v[0].2 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_path_clp_requires_first_losses() {
        let mut a = LossAccum::new(3, 1);
        // Path 0→1: first losses present (CLP 50%).
        a.on_outcome(&outcome(0, 0, 1, [Some((true, None)), Some((true, None))], false));
        a.on_outcome(&outcome(0, 0, 1, [Some((true, None)), Some((false, Some(1_000)))], false));
        // Path 0→2: clean.
        a.on_outcome(&outcome(0, 0, 2, [Some((false, Some(1))), Some((false, Some(1)))], false));
        let v = a.per_path_clp(0, 1);
        assert_eq!(v, vec![50.0]);
    }

    fn deep_outcome(method: u8, lost: [bool; 4]) -> PairOutcome {
        let legs = lost.map(|l| {
            Some(LegOutcome { route: 0, lost: l, one_way_us: if l { None } else { Some(1_000) } })
        });
        PairOutcome::from_legs(0, method, HostId(0), HostId(1), SimTime::ZERO, legs, false)
    }

    #[test]
    fn best_of_first_curve_tracks_every_depth() {
        let mut a = LossAccum::with_depth(2, 1, 4);
        assert_eq!(a.depth(), 4);
        // 10 probes: 2 lose all 4 copies, 3 lose the first 2 only, 1
        // loses the first only, 4 lose nothing.
        for _ in 0..2 {
            a.on_outcome(&deep_outcome(0, [true, true, true, true]));
        }
        for _ in 0..3 {
            a.on_outcome(&deep_outcome(0, [true, true, false, false]));
        }
        a.on_outcome(&deep_outcome(0, [true, false, false, false]));
        for _ in 0..4 {
            a.on_outcome(&deep_outcome(0, [false, false, false, false]));
        }
        let curve = a.best_of_first_pct(0);
        assert_eq!(curve, vec![60.0, 50.0, 20.0, 20.0]);
        // The curve is monotone nonincreasing: extra copies never hurt.
        for w in curve.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert_eq!(a.summary(0).totlp, 20.0, "last point equals totlp");
    }

    #[test]
    fn pair_depth_curve_is_derived_from_the_base_cells() {
        let mut a = LossAccum::new(2, 1);
        a.on_outcome(&outcome(0, 0, 1, [Some((true, None)), Some((true, None))], false));
        a.on_outcome(&outcome(0, 0, 1, [Some((true, None)), Some((false, Some(1)))], false));
        a.on_outcome(&outcome(0, 0, 1, [Some((false, Some(1))), Some((false, Some(1)))], false));
        assert_eq!(a.depth(), 2);
        let curve = a.best_of_first_pct(0);
        assert!((curve[0] - 200.0 / 3.0).abs() < 1e-9, "j=1: 2 of 3 first copies lost");
        assert!((curve[1] - 100.0 / 3.0).abs() < 1e-9, "j=2: 1 of 3 probes fully lost");
    }

    #[test]
    fn deep_merge_equals_sequential_feed_and_moves_the_digest() {
        let feed = |a: &mut LossAccum, range: std::ops::Range<u64>| {
            for i in range {
                a.on_outcome(&deep_outcome(0, [i % 2 == 0, i % 3 == 0, i % 5 == 0, i % 7 == 0]));
            }
        };
        let mut whole = LossAccum::with_depth(2, 1, 4);
        feed(&mut whole, 0..30);
        let mut first = LossAccum::with_depth(2, 1, 4);
        let mut second = LossAccum::with_depth(2, 1, 4);
        feed(&mut first, 0..15);
        feed(&mut second, 15..30);
        first.merge(&second);
        assert_eq!(whole.best_of_first_pct(0), first.best_of_first_pct(0));
        let (mut fa, mut fb) = (crate::Fnv::new(), crate::Fnv::new());
        whole.digest(&mut fa);
        first.digest(&mut fb);
        assert_eq!(fa.finish(), fb.finish(), "deep merge must be exact");
        // And the deep counters are part of the digest.
        let mut tweaked = LossAccum::with_depth(2, 1, 4);
        feed(&mut tweaked, 0..29);
        let (mut fc, mut fd) = (crate::Fnv::new(), crate::Fnv::new());
        whole.digest(&mut fc);
        tweaked.digest(&mut fd);
        assert_ne!(fc.finish(), fd.finish());
    }

    #[test]
    #[should_panic(expected = "redundancy depths must match")]
    fn merge_rejects_depth_mismatch() {
        let mut a = LossAccum::with_depth(2, 1, 4);
        let b = LossAccum::with_depth(2, 1, 3);
        a.merge(&b);
    }

    #[test]
    fn merge_equals_sequential_feed() {
        // Outcomes split across two accumulators and merged must equal
        // one accumulator fed everything in the same order.
        let outcomes: Vec<PairOutcome> = (0..40)
            .map(|i| {
                outcome(
                    (i % 2) as u8,
                    (i % 3) as u16,
                    ((i + 1) % 3) as u16,
                    [
                        Some((i % 5 == 0, if i % 5 == 0 { None } else { Some(1_000 + i) })),
                        if i % 2 == 0 { Some((i % 7 == 0, Some(2_000 + i))) } else { None },
                    ],
                    i % 11 == 0,
                )
            })
            .collect();
        let mut whole = LossAccum::new(3, 2);
        for o in &outcomes {
            whole.on_outcome(o);
        }
        let mut first = LossAccum::new(3, 2);
        let mut second = LossAccum::new(3, 2);
        for (i, o) in outcomes.iter().enumerate() {
            if i < 20 {
                first.on_outcome(o);
            } else {
                second.on_outcome(o);
            }
        }
        first.merge(&second);
        let (mut fa, mut fb) = (crate::Fnv::new(), crate::Fnv::new());
        whole.digest(&mut fa);
        first.digest(&mut fb);
        assert_eq!(fa.finish(), fb.finish(), "merge must be exact");
    }

    #[test]
    fn digest_sees_every_counter() {
        let mut a = LossAccum::new(2, 1);
        let b = LossAccum::new(2, 1);
        a.on_outcome(&outcome(0, 0, 1, [Some((true, None)), None], false));
        let (mut fa, mut fb) = (crate::Fnv::new(), crate::Fnv::new());
        a.digest(&mut fa);
        b.digest(&mut fb);
        assert_ne!(fa.finish(), fb.finish());
    }

    #[test]
    #[should_panic(expected = "host counts must match")]
    fn merge_rejects_shape_mismatch() {
        let mut a = LossAccum::new(2, 1);
        let b = LossAccum::new(3, 1);
        a.merge(&b);
    }

    #[test]
    fn clock_skew_cancels_in_latency() {
        let mut a = LossAccum::new(2, 1);
        // True one-way 50 ms both directions; dst clock +20 ms.
        a.on_outcome(&outcome(0, 0, 1, [Some((false, Some(70_000))), None], false));
        a.on_outcome(&outcome(0, 1, 0, [Some((false, Some(30_000))), None], false));
        let v = a.per_path_latency_ms(0);
        for (_, _, ms) in v {
            assert!((ms - 50.0).abs() < 1e-9, "ms={ms}");
        }
    }
}
