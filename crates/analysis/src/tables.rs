//! Plain-text renderers for the paper's tables.

use crate::loss::MethodSummary;

/// One row of Table 5 / Table 7.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Method name as printed in the paper (e.g. `direct rand`).
    pub name: String,
    /// The summary statistics.
    pub summary: MethodSummary,
}

/// Renders the provenance stamp for scenario-driven reports: the
/// registry name plus the spec digest, so a rendered table names the
/// exact conditions (spec bytes) that produced it.
pub fn scenario_stamp(name: &str, digest: u64) -> String {
    format!("[scenario {name} \u{b7} spec {digest:#018x}]")
}

fn fmt_opt(v: Option<f64>, prec: usize) -> String {
    match v {
        Some(x) => format!("{x:.prec$}"),
        None => "-".to_string(),
    }
}

/// Renders Table 5 ("One-way loss percentages").
pub fn render_table5(title: &str, rows: &[Table5Row]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!(
        "{:<14} {:>7} {:>7} {:>7} {:>7} {:>9} {:>12}\n",
        "Type", "1lp", "2lp", "totlp", "clp", "lat(ms)", "samples"
    ));
    for r in rows {
        let m = &r.summary;
        s.push_str(&format!(
            "{:<14} {:>7.2} {:>7} {:>7.2} {:>7} {:>9.2} {:>12}\n",
            r.name,
            m.lp1,
            fmt_opt(m.lp2, 2),
            m.totlp,
            fmt_opt(m.clp, 2),
            m.lat_ms,
            m.pairs,
        ));
    }
    s
}

/// Table 6: hour-long high-loss periods by routing method.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// Method names, column order.
    pub methods: Vec<String>,
    /// `counts[m][i]` = windows of method `m` with loss > 10·i percent
    /// (`i = 0` is the "> 0" row).
    pub counts: Vec<[u64; 10]>,
    /// Total windows per method.
    pub totals: Vec<u64>,
}

/// Renders Table 6.
pub fn render_table6(t: &Table6) -> String {
    let mut s = String::new();
    s.push_str("Hour-long high loss periods, by routing method\n");
    s.push_str(&format!("{:<8}", "Loss %"));
    for m in &t.methods {
        s.push_str(&format!(" {m:>12}"));
    }
    s.push('\n');
    for i in 0..10 {
        s.push_str(&format!("{:<8}", format!("> {}", i * 10)));
        for counts in &t.counts {
            s.push_str(&format!(" {:>12}", counts[i]));
        }
        s.push('\n');
    }
    s.push_str(&format!("{:<8}", "windows"));
    for total in &t.totals {
        s.push_str(&format!(" {total:>12}"));
    }
    s.push('\n');
    s
}

/// One row of Table 7 (2002 RONwide, round-trip latency).
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// Method name.
    pub name: String,
    /// Summary; `lat_ms` holds the round-trip time.
    pub summary: MethodSummary,
}

/// Renders Table 7 ("expanded set of routing schemes", RTT column).
pub fn render_table7(rows: &[Table7Row]) -> String {
    let mut s = String::new();
    s.push_str("One-way loss percentages, 2002 RONwide (RTT latencies)\n");
    s.push_str(&format!(
        "{:<14} {:>7} {:>7} {:>7} {:>7} {:>9} {:>12}\n",
        "Type", "1lp", "2lp", "totlp", "clp", "RTT(ms)", "samples"
    ));
    for r in rows {
        let m = &r.summary;
        s.push_str(&format!(
            "{:<14} {:>7.2} {:>7} {:>7.2} {:>7} {:>9.1} {:>12}\n",
            r.name,
            m.lp1,
            fmt_opt(m.lp2, 2),
            m.totlp,
            fmt_opt(m.clp, 1),
            m.lat_ms,
            m.pairs,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> MethodSummary {
        MethodSummary {
            lp1: 0.42,
            lp2: Some(2.66),
            totlp: 0.26,
            clp: Some(62.47),
            lat_ms: 51.71,
            pairs: 1_000_000,
        }
    }

    #[test]
    fn table5_renders_all_columns() {
        let rows = vec![Table5Row { name: "direct rand".into(), summary: summary() }];
        let out = render_table5("2003", &rows);
        assert!(out.contains("direct rand"));
        assert!(out.contains("0.42"));
        assert!(out.contains("2.66"));
        assert!(out.contains("62.47"));
        assert!(out.contains("51.71"));
    }

    #[test]
    fn table5_dashes_for_single_packet_methods() {
        let mut s = summary();
        s.lp2 = None;
        s.clp = None;
        let rows = vec![Table5Row { name: "direct".into(), summary: s }];
        let out = render_table5("2003", &rows);
        let line = out.lines().find(|l| l.starts_with("direct")).unwrap();
        assert_eq!(line.matches('-').count(), 2);
    }

    #[test]
    fn table6_renders_thresholds() {
        let t = Table6 {
            methods: vec!["direct".into(), "loss".into()],
            counts: vec![
                [8817, 1999, 962, 630, 486, 379, 255, 130, 74, 31],
                [7066, 1362, 791, 573, 468, 359, 219, 106, 59, 31],
            ],
            totals: vec![290_000, 290_000],
        };
        let out = render_table6(&t);
        assert!(out.contains("> 0"));
        assert!(out.contains("> 90"));
        assert!(out.contains("8817"));
        assert!(out.contains("7066"));
        assert_eq!(out.lines().count(), 13);
    }

    #[test]
    fn scenario_stamp_names_conditions() {
        let s = scenario_stamp("flash-crowd", 0xDEAD_BEEF);
        assert!(s.contains("flash-crowd"));
        assert!(s.contains("0x00000000deadbeef"));
    }

    #[test]
    fn table7_renders_rtt() {
        let rows = vec![Table7Row { name: "rand rand".into(), summary: summary() }];
        let out = render_table7(&rows);
        assert!(out.contains("RTT(ms)"));
        assert!(out.contains("rand rand"));
    }
}
