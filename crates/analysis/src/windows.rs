//! Windowed loss-rate accumulation.
//!
//! Two consumers in the paper:
//!
//! * **Figure 3** — the CDF of 20-minute loss-rate samples per method;
//! * **Table 6** — counts of hour-long (path, window) periods whose loss
//!   rate exceeds 0%, 10%, …, 90%, per method.
//!
//! Windows are per (method, path) and aligned to absolute time; a window
//! closes when a later sample for the same cell arrives (or at
//! [`WindowAccum::finish`]) and its end-to-end pair loss rate feeds a
//! per-method histogram and the threshold counters.

use crate::cdf::Histogram;
use netsim::SimDuration;
use trace::PairOutcome;

#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
struct OpenWin {
    window_idx: u64,
    sent: u32,
    lost: u32,
    used: bool,
}

/// Streaming fixed-width window accumulator.
///
/// The open-window cells are stored structure-of-arrays: the hot
/// same-window path reads one `u64` per outcome and the close scan at a
/// window boundary (or [`finish`](Self::finish)) walks a dense 8-byte
/// array instead of 24-byte `OpenWin` structs. The wire format still
/// speaks `Vec<OpenWin>` — serialization reconstructs it, so the v1
/// shape is unchanged.
#[derive(Debug)]
pub struct WindowAccum {
    width_us: u64,
    /// Start (µs) and index of the most recently computed window — pure
    /// strength reduction: outcomes arrive in near-time-order, so a
    /// range check replaces the per-outcome u64 division almost always.
    /// Not serialized (it is derivable and never observable): a
    /// round-tripped accumulator starts at window 0, which is exactly
    /// what `(0, 0)` encodes.
    cached_start_us: u64,
    cached_idx: u64,
    n: usize,
    /// `0` = cell unused, else the open window's index plus one. The
    /// bias keeps "unused" and "open at window 0" distinct without a
    /// separate `used` array.
    win: Vec<u64>,
    sent: Vec<u32>,
    lost: Vec<u32>,
    hist: Vec<Histogram>,
    /// Per method: windows with loss > 0%, >10%, …, >90%.
    thresholds: Vec<[u64; 10]>,
    windows: Vec<u64>,
}

impl WindowAccum {
    /// Creates an accumulator with the given window width.
    pub fn new(n: usize, methods: usize, width: SimDuration) -> Self {
        assert!(width.as_micros() > 0);
        let cells = n * n * methods;
        WindowAccum {
            width_us: width.as_micros(),
            cached_start_us: 0,
            cached_idx: 0,
            n,
            win: vec![0; cells],
            sent: vec![0; cells],
            lost: vec![0; cells],
            hist: (0..methods).map(|_| Histogram::new(200)).collect(),
            thresholds: vec![[0; 10]; methods],
            windows: vec![0; methods],
        }
    }

    fn close(&mut self, cell: usize) {
        let (sent, lost) = (self.sent[cell], self.lost[cell]);
        if self.win[cell] == 0 || sent == 0 {
            return;
        }
        let method = cell / (self.n * self.n);
        let rate = lost as f64 / sent as f64;
        self.hist[method].push(rate);
        self.windows[method] += 1;
        let th = &mut self.thresholds[method];
        if lost > 0 {
            th[0] += 1;
        }
        for (i, t) in th.iter_mut().enumerate().skip(1) {
            if rate > i as f64 / 10.0 {
                *t += 1;
            }
        }
    }

    /// Ingests one resolved pair (discarded samples are skipped).
    pub fn on_outcome(&mut self, o: &PairOutcome) {
        if o.discarded {
            return;
        }
        let cell = o.method as usize * self.n * self.n
            + o.src.idx() * self.n
            + o.dst.idx();
        let sent_us = o.sent.as_micros();
        // Same-window fast path: a wrapping range check against the
        // cached window start. `wrapping_sub` sends out-of-order sends
        // (sent < cached start) far above `width_us`, into the slow
        // path, so the cache can never mis-assign a window.
        let idx = if sent_us.wrapping_sub(self.cached_start_us) < self.width_us {
            self.cached_idx
        } else {
            let idx = sent_us / self.width_us;
            self.cached_start_us = idx * self.width_us;
            self.cached_idx = idx;
            idx
        };
        // `idx + 1` cannot wrap: idx == sent_us / width_us with
        // width_us >= 1, and a simulated send time of u64::MAX µs is
        // half a million millennia in.
        let tag = idx + 1;
        if self.win[cell] != tag {
            // Covers both "unused" (close is a no-op on win == 0) and
            // "open at an older window" (close, then start fresh).
            self.close(cell);
            self.win[cell] = tag;
            self.sent[cell] = 0;
            self.lost[cell] = 0;
        }
        self.sent[cell] += 1;
        if o.all_lost() {
            self.lost[cell] += 1;
        }
    }

    /// Closes every open window (end of run).
    pub fn finish(&mut self) {
        for cell in 0..self.win.len() {
            self.close(cell);
        }
        self.win.fill(0);
        self.sent.fill(0);
        self.lost.fill(0);
    }

    /// True when no window is open (i.e. [`finish`](Self::finish) ran
    /// after the last outcome).
    pub fn is_finished(&self) -> bool {
        self.win.iter().all(|&w| w == 0)
    }

    /// Folds another *finished* accumulator into this one.
    ///
    /// Sharded runs close every window at their slice boundary (slices
    /// are independent sub-experiments), so merging is a plain sum of
    /// the per-method histograms, threshold counters and window counts.
    /// Panics if either side still has open windows or the shapes
    /// (width, host count, method count) differ.
    pub fn merge(&mut self, other: &WindowAccum) {
        assert_eq!(self.width_us, other.width_us, "window widths must match");
        assert_eq!(self.n, other.n, "host counts must match");
        assert_eq!(self.hist.len(), other.hist.len(), "method counts must match");
        assert!(
            self.is_finished() && other.is_finished(),
            "merge requires finished accumulators (no open windows)"
        );
        for (a, b) in self.hist.iter_mut().zip(&other.hist) {
            a.merge(b);
        }
        for (a, b) in self.thresholds.iter_mut().zip(&other.thresholds) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        for (a, b) in self.windows.iter_mut().zip(&other.windows) {
            *a += b;
        }
    }

    /// Feeds the accumulator's exact closed-window state into a
    /// fingerprint fold.
    pub fn digest(&self, fnv: &mut crate::fingerprint::Fnv) {
        fnv.write_u64(self.width_us);
        fnv.write_u64(self.n as u64);
        for h in &self.hist {
            h.digest(fnv);
        }
        for t in &self.thresholds {
            for &v in t {
                fnv.write_u64(v);
            }
        }
        for &w in &self.windows {
            fnv.write_u64(w);
        }
    }

    /// The per-method loss-rate histogram (Figure 3's raw material).
    pub fn histogram(&self, method: u8) -> &Histogram {
        &self.hist[method as usize]
    }

    /// Windows whose loss exceeded `10·i` percent, for i = 0..10
    /// (`i = 0` means "any loss at all": the paper's `> 0` row).
    pub fn threshold_counts(&self, method: u8) -> [u64; 10] {
        self.thresholds[method as usize]
    }

    /// Total closed windows for a method.
    pub fn window_count(&self, method: u8) -> u64 {
        self.windows[method as usize]
    }
}

// Versioned wire format (v1). The open windows cross the wire too —
// full fidelity, not just the closed statistics — even though slice
// results arrive finished (slices close every window at their boundary):
// a round-tripped accumulator must be indistinguishable from the
// original in *every* state, or the serde-fidelity proptests could not
// pin the wire format to the in-memory merge semantics.
impl serde::Serialize for WindowAccum {
    fn to_value(&self) -> serde::Value {
        // The in-memory layout is SoA; the wire still speaks the v1
        // `Vec<OpenWin>` shape, reconstructed cell by cell.
        let open: Vec<OpenWin> = (0..self.win.len())
            .map(|i| match self.win[i] {
                0 => OpenWin::default(),
                tag => OpenWin {
                    window_idx: tag - 1,
                    sent: self.sent[i],
                    lost: self.lost[i],
                    used: true,
                },
            })
            .collect();
        serde::Value::Map(vec![
            ("v".into(), serde::Value::Int(1)),
            ("width_us".into(), self.width_us.to_value()),
            ("n".into(), self.n.to_value()),
            ("open".into(), open.to_value()),
            ("hist".into(), self.hist.to_value()),
            ("thresholds".into(), self.thresholds.to_value()),
            ("windows".into(), self.windows.to_value()),
        ])
    }
}

impl serde::Deserialize for WindowAccum {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Map(entries) = v else {
            return Err(serde::Error::new(format!(
                "WindowAccum: expected map, found {}",
                v.kind()
            )));
        };
        for (k, _) in entries {
            if !matches!(
                k.as_str(),
                "v" | "width_us" | "n" | "open" | "hist" | "thresholds" | "windows"
            ) {
                return Err(serde::Error::new(format!("WindowAccum: unknown field `{k}`")));
            }
        }
        let version = u32::from_value(v.field("v")?)?;
        if version != 1 {
            return Err(serde::Error::new(format!(
                "WindowAccum: unsupported wire version {version} (this build speaks 1)"
            )));
        }
        let open = Vec::<OpenWin>::from_value(v.field("open")?)?;
        // Decompose the wire's AoS cells into the SoA arrays. A cell
        // with `used == false` is normalized to all-zero: the encoder
        // only ever writes default values there, so nothing real is
        // dropped.
        let mut win = vec![0u64; open.len()];
        let mut sent = vec![0u32; open.len()];
        let mut lost = vec![0u32; open.len()];
        for (i, o) in open.iter().enumerate() {
            if o.used {
                win[i] = o.window_idx + 1;
                sent[i] = o.sent;
                lost[i] = o.lost;
            }
        }
        let w = WindowAccum {
            width_us: u64::from_value(v.field("width_us")?)?,
            cached_start_us: 0,
            cached_idx: 0,
            n: usize::from_value(v.field("n")?)?,
            win,
            sent,
            lost,
            hist: Vec::<Histogram>::from_value(v.field("hist")?)?,
            thresholds: Vec::<[u64; 10]>::from_value(v.field("thresholds")?)?,
            windows: Vec::<u64>::from_value(v.field("windows")?)?,
        };
        if w.width_us == 0 {
            return Err(serde::Error::new("WindowAccum: width_us must be > 0"));
        }
        let methods = w.hist.len();
        if w.thresholds.len() != methods || w.windows.len() != methods {
            return Err(serde::Error::new(format!(
                "WindowAccum: per-method lengths disagree (hist {methods}, thresholds {}, windows {})",
                w.thresholds.len(),
                w.windows.len()
            )));
        }
        if w.win.len() != w.n * w.n * methods {
            return Err(serde::Error::new(format!(
                "WindowAccum: {} open cells for shape n={} methods={methods}",
                w.win.len(),
                w.n
            )));
        }
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{HostId, SimTime};
    use trace::LegOutcome;

    fn outcome(method: u8, src: u16, dst: u16, t_secs: u64, lost: bool) -> PairOutcome {
        PairOutcome::from_legs(
            0,
            method,
            HostId(src),
            HostId(dst),
            SimTime::from_secs(t_secs),
            [
                Some(LegOutcome { route: 0, lost, one_way_us: if lost { None } else { Some(1) } }),
                None,
                None,
                None,
            ],
            false,
        )
    }

    #[test]
    fn windows_split_on_boundaries() {
        let mut w = WindowAccum::new(2, 1, SimDuration::from_mins(20));
        // Window 1: 2 sent, 1 lost. Window 2: 1 sent, 0 lost.
        w.on_outcome(&outcome(0, 0, 1, 10, true));
        w.on_outcome(&outcome(0, 0, 1, 20, false));
        w.on_outcome(&outcome(0, 0, 1, 1_500, false));
        w.finish();
        assert_eq!(w.window_count(0), 2);
        assert_eq!(w.threshold_counts(0)[0], 1, "one window saw loss");
        // 50% loss > 40% threshold (index 4) but not > 50% (index 5).
        assert_eq!(w.threshold_counts(0)[4], 1);
        assert_eq!(w.threshold_counts(0)[5], 0);
    }

    #[test]
    fn separate_paths_do_not_mix() {
        let mut w = WindowAccum::new(3, 1, SimDuration::from_hours(1));
        w.on_outcome(&outcome(0, 0, 1, 10, true));
        w.on_outcome(&outcome(0, 0, 2, 10, false));
        w.finish();
        assert_eq!(w.window_count(0), 2, "two (path, window) cells");
        assert_eq!(w.threshold_counts(0)[0], 1);
    }

    #[test]
    fn separate_methods_do_not_mix() {
        let mut w = WindowAccum::new(2, 2, SimDuration::from_hours(1));
        w.on_outcome(&outcome(0, 0, 1, 10, true));
        w.on_outcome(&outcome(1, 0, 1, 10, false));
        w.finish();
        assert_eq!(w.threshold_counts(0)[0], 1);
        assert_eq!(w.threshold_counts(1)[0], 0);
    }

    #[test]
    fn discarded_outcomes_skip_windows() {
        let mut w = WindowAccum::new(2, 1, SimDuration::from_hours(1));
        let mut o = outcome(0, 0, 1, 10, true);
        o.discarded = true;
        w.on_outcome(&o);
        w.finish();
        assert_eq!(w.window_count(0), 0);
    }

    #[test]
    fn histogram_collects_rates() {
        let mut w = WindowAccum::new(2, 1, SimDuration::from_mins(20));
        // One fully lossy window, one clean window.
        w.on_outcome(&outcome(0, 0, 1, 10, true));
        w.on_outcome(&outcome(0, 0, 1, 2_000, false));
        w.finish();
        let h = w.histogram(0);
        assert_eq!(h.count(), 2);
        assert!((h.fraction_at_or_below(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_closed_windows() {
        // Two disjoint time ranges accumulated separately and merged
        // must equal one accumulator that saw both ranges.
        let mk = |range: std::ops::Range<u64>| {
            let mut w = WindowAccum::new(2, 1, SimDuration::from_mins(20));
            for t in range {
                w.on_outcome(&outcome(0, 0, 1, t * 700, t % 3 == 0));
            }
            w.finish();
            w
        };
        let mut whole = WindowAccum::new(2, 1, SimDuration::from_mins(20));
        for t in 0..12 {
            whole.on_outcome(&outcome(0, 0, 1, t * 700, t % 3 == 0));
        }
        whole.finish();
        let mut a = mk(0..6);
        let b = mk(6..12);
        a.merge(&b);
        // Window boundaries at 1200 s: samples at 0..4200 s in steps of
        // 700 s. The split at t=6 (4200 s) coincides with a window edge,
        // so the merged statistics are identical.
        let (mut fa, mut fb) = (crate::Fnv::new(), crate::Fnv::new());
        whole.digest(&mut fa);
        a.digest(&mut fb);
        assert_eq!(fa.finish(), fb.finish());
    }

    #[test]
    #[should_panic(expected = "finished accumulators")]
    fn merge_rejects_open_windows() {
        let mut a = WindowAccum::new(2, 1, SimDuration::from_mins(20));
        let mut b = WindowAccum::new(2, 1, SimDuration::from_mins(20));
        b.on_outcome(&outcome(0, 0, 1, 10, false));
        // b not finished: must panic.
        a.merge(&b);
    }

    #[test]
    fn empty_windows_are_not_counted() {
        let mut w = WindowAccum::new(2, 1, SimDuration::from_mins(20));
        w.finish();
        assert_eq!(w.window_count(0), 0);
        assert_eq!(w.histogram(0).count(), 0);
    }
}
