//! Windowed loss-rate accumulation.
//!
//! Two consumers in the paper:
//!
//! * **Figure 3** — the CDF of 20-minute loss-rate samples per method;
//! * **Table 6** — counts of hour-long (path, window) periods whose loss
//!   rate exceeds 0%, 10%, …, 90%, per method.
//!
//! Windows are per (method, path) and aligned to absolute time; a window
//! closes when a later sample for the same cell arrives (or at
//! [`WindowAccum::finish`]) and its end-to-end pair loss rate feeds a
//! per-method histogram and the threshold counters.

use crate::cdf::Histogram;
use netsim::SimDuration;
use trace::PairOutcome;

#[derive(Debug, Clone, Copy, Default)]
struct OpenWin {
    window_idx: u64,
    sent: u32,
    lost: u32,
    used: bool,
}

/// Streaming fixed-width window accumulator.
#[derive(Debug)]
pub struct WindowAccum {
    width_us: u64,
    n: usize,
    open: Vec<OpenWin>,
    hist: Vec<Histogram>,
    /// Per method: windows with loss > 0%, >10%, …, >90%.
    thresholds: Vec<[u64; 10]>,
    windows: Vec<u64>,
}

impl WindowAccum {
    /// Creates an accumulator with the given window width.
    pub fn new(n: usize, methods: usize, width: SimDuration) -> Self {
        assert!(width.as_micros() > 0);
        WindowAccum {
            width_us: width.as_micros(),
            n,
            open: vec![OpenWin::default(); n * n * methods],
            hist: (0..methods).map(|_| Histogram::new(200)).collect(),
            thresholds: vec![[0; 10]; methods],
            windows: vec![0; methods],
        }
    }

    fn close(&mut self, cell: usize) {
        let w = self.open[cell];
        if !w.used || w.sent == 0 {
            return;
        }
        let method = cell / (self.n * self.n);
        let rate = w.lost as f64 / w.sent as f64;
        self.hist[method].push(rate);
        self.windows[method] += 1;
        let th = &mut self.thresholds[method];
        if w.lost > 0 {
            th[0] += 1;
        }
        for (i, t) in th.iter_mut().enumerate().skip(1) {
            if rate > i as f64 / 10.0 {
                *t += 1;
            }
        }
    }

    /// Ingests one resolved pair (discarded samples are skipped).
    pub fn on_outcome(&mut self, o: &PairOutcome) {
        if o.discarded {
            return;
        }
        let cell = o.method as usize * self.n * self.n
            + o.src.idx() * self.n
            + o.dst.idx();
        let idx = o.sent.as_micros() / self.width_us;
        if self.open[cell].used && self.open[cell].window_idx != idx {
            self.close(cell);
            self.open[cell] = OpenWin::default();
        }
        let w = &mut self.open[cell];
        w.used = true;
        w.window_idx = idx;
        w.sent += 1;
        if o.all_lost() {
            w.lost += 1;
        }
    }

    /// Closes every open window (end of run).
    pub fn finish(&mut self) {
        for cell in 0..self.open.len() {
            self.close(cell);
            self.open[cell] = OpenWin::default();
        }
    }

    /// The per-method loss-rate histogram (Figure 3's raw material).
    pub fn histogram(&self, method: u8) -> &Histogram {
        &self.hist[method as usize]
    }

    /// Windows whose loss exceeded `10·i` percent, for i = 0..10
    /// (`i = 0` means "any loss at all": the paper's `> 0` row).
    pub fn threshold_counts(&self, method: u8) -> [u64; 10] {
        self.thresholds[method as usize]
    }

    /// Total closed windows for a method.
    pub fn window_count(&self, method: u8) -> u64 {
        self.windows[method as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{HostId, SimTime};
    use trace::LegOutcome;

    fn outcome(method: u8, src: u16, dst: u16, t_secs: u64, lost: bool) -> PairOutcome {
        PairOutcome {
            id: 0,
            method,
            src: HostId(src),
            dst: HostId(dst),
            sent: SimTime::from_secs(t_secs),
            legs: [
                Some(LegOutcome { route: 0, lost, one_way_us: if lost { None } else { Some(1) } }),
                None,
            ],
            discarded: false,
        }
    }

    #[test]
    fn windows_split_on_boundaries() {
        let mut w = WindowAccum::new(2, 1, SimDuration::from_mins(20));
        // Window 1: 2 sent, 1 lost. Window 2: 1 sent, 0 lost.
        w.on_outcome(&outcome(0, 0, 1, 10, true));
        w.on_outcome(&outcome(0, 0, 1, 20, false));
        w.on_outcome(&outcome(0, 0, 1, 1_500, false));
        w.finish();
        assert_eq!(w.window_count(0), 2);
        assert_eq!(w.threshold_counts(0)[0], 1, "one window saw loss");
        // 50% loss > 40% threshold (index 4) but not > 50% (index 5).
        assert_eq!(w.threshold_counts(0)[4], 1);
        assert_eq!(w.threshold_counts(0)[5], 0);
    }

    #[test]
    fn separate_paths_do_not_mix() {
        let mut w = WindowAccum::new(3, 1, SimDuration::from_hours(1));
        w.on_outcome(&outcome(0, 0, 1, 10, true));
        w.on_outcome(&outcome(0, 0, 2, 10, false));
        w.finish();
        assert_eq!(w.window_count(0), 2, "two (path, window) cells");
        assert_eq!(w.threshold_counts(0)[0], 1);
    }

    #[test]
    fn separate_methods_do_not_mix() {
        let mut w = WindowAccum::new(2, 2, SimDuration::from_hours(1));
        w.on_outcome(&outcome(0, 0, 1, 10, true));
        w.on_outcome(&outcome(1, 0, 1, 10, false));
        w.finish();
        assert_eq!(w.threshold_counts(0)[0], 1);
        assert_eq!(w.threshold_counts(1)[0], 0);
    }

    #[test]
    fn discarded_outcomes_skip_windows() {
        let mut w = WindowAccum::new(2, 1, SimDuration::from_hours(1));
        let mut o = outcome(0, 0, 1, 10, true);
        o.discarded = true;
        w.on_outcome(&o);
        w.finish();
        assert_eq!(w.window_count(0), 0);
    }

    #[test]
    fn histogram_collects_rates() {
        let mut w = WindowAccum::new(2, 1, SimDuration::from_mins(20));
        // One fully lossy window, one clean window.
        w.on_outcome(&outcome(0, 0, 1, 10, true));
        w.on_outcome(&outcome(0, 0, 1, 2_000, false));
        w.finish();
        let h = w.histogram(0);
        assert_eq!(h.count(), 2);
        assert!((h.fraction_at_or_below(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_windows_are_not_counted() {
        let mut w = WindowAccum::new(2, 1, SimDuration::from_mins(20));
        w.finish();
        assert_eq!(w.window_count(0), 0);
        assert_eq!(w.histogram(0).count(), 0);
    }
}
