//! Empirical cumulative distribution functions and fixed-bin histograms.

/// An empirical CDF over a finite sample.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples; NaNs are dropped.
    pub fn from_values(mut values: Vec<f64>) -> Self {
        values.retain(|v| !v.is_nan());
        // total_cmp, not partial_cmp().unwrap(): the retain above drops
        // NaNs, but a sort comparator must not be one upstream bug away
        // from panicking mid-campaign.
        values.sort_by(|a, b| a.total_cmp(b));
        Cdf { sorted: values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were provided.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x` (0.0 for an empty CDF).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let k = self.sorted.partition_point(|&v| v <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        Some(self.sorted[idx])
    }

    /// Sample mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Step points `(value, cumulative fraction)`, downsampled to at most
    /// `max_points` points for plotting.
    pub fn points(&self, max_points: usize) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        if n == 0 || max_points == 0 {
            return Vec::new();
        }
        let step = (n as f64 / max_points as f64).max(1.0);
        let mut pts = Vec::new();
        let mut i = 0.0;
        while (i as usize) < n {
            let idx = i as usize;
            pts.push((self.sorted[idx], (idx + 1) as f64 / n as f64));
            i += step;
        }
        if pts.last().map(|p| p.1) != Some(1.0) {
            pts.push((self.sorted[n - 1], 1.0));
        }
        pts
    }
}

/// A fixed-bin histogram over `[0, 1]` (loss rates).
///
/// Exact zeros are tracked separately: in the paper's data over 95% of
/// the 20-minute windows have a 0% loss rate, and that mass must not be
/// blurred into the first bin.
#[derive(Debug, Clone)]
pub struct Histogram {
    zeros: u64,
    bins: Vec<u64>,
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new(200)
    }
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `(0, 1]`
    /// plus a dedicated zero bucket.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0);
        Histogram { zeros: 0, bins: vec![0; bins], count: 0 }
    }

    /// Records a value (clamped into `[0, 1]`).
    pub fn push(&mut self, v: f64) {
        let v = if v.is_nan() { 0.0 } else { v.clamp(0.0, 1.0) };
        self.count += 1;
        if v == 0.0 {
            self.zeros += 1;
            return;
        }
        // Bin i covers (i/n, (i+1)/n].
        let n = self.bins.len();
        let idx = ((v * n as f64).ceil() as usize - 1).min(n - 1);
        self.bins[idx] += 1;
    }

    /// Folds another histogram into this one (sharded-run merge).
    ///
    /// Panics if the bin counts differ; since every value lands in
    /// exactly one bucket, merging is an exact bucket-wise sum.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "histogram shapes must match");
        self.zeros += other.zeros;
        self.count += other.count;
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
    }

    /// Feeds the histogram's exact state into a fingerprint fold.
    pub fn digest(&self, fnv: &mut crate::fingerprint::Fnv) {
        fnv.write_u64(self.zeros);
        fnv.write_u64(self.count);
        for &b in &self.bins {
            fnv.write_u64(b);
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact zeros recorded.
    pub fn zeros(&self) -> u64 {
        self.zeros
    }

    /// Fraction of values ≤ `x` (bin-resolution approximation; exact at
    /// zero and at bin edges).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if x < 0.0 {
            return 0.0;
        }
        let n = self.bins.len();
        let lim = ((x.min(1.0) * n as f64).ceil() as usize).min(n);
        let below: u64 = self.zeros + self.bins[..lim].iter().sum::<u64>();
        below as f64 / self.count as f64
    }

    /// CDF points starting with `(0, zero fraction)` then one point per
    /// bin upper edge.
    pub fn cdf_points(&self) -> Vec<(f64, f64)> {
        if self.count == 0 {
            return Vec::new();
        }
        let mut pts = Vec::with_capacity(self.bins.len() + 1);
        let mut acc = self.zeros;
        pts.push((0.0, acc as f64 / self.count as f64));
        let w = 1.0 / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            pts.push(((i + 1) as f64 * w, acc as f64 / self.count as f64));
        }
        pts
    }
}

// Versioned wire format (v1): slices computed on one host must merge on
// another with the exact semantics of the in-memory path, so the full
// private state crosses the wire and unknown fields or versions are
// rejected loudly instead of being guessed at.
impl serde::Serialize for Histogram {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("v".into(), serde::Value::Int(1)),
            ("zeros".into(), self.zeros.to_value()),
            ("bins".into(), self.bins.to_value()),
            ("count".into(), self.count.to_value()),
        ])
    }
}

impl serde::Deserialize for Histogram {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Map(entries) = v else {
            return Err(serde::Error::new(format!("Histogram: expected map, found {}", v.kind())));
        };
        for (k, _) in entries {
            if !matches!(k.as_str(), "v" | "zeros" | "bins" | "count") {
                return Err(serde::Error::new(format!("Histogram: unknown field `{k}`")));
            }
        }
        let version = u32::from_value(v.field("v")?)?;
        if version != 1 {
            return Err(serde::Error::new(format!(
                "Histogram: unsupported wire version {version} (this build speaks 1)"
            )));
        }
        let h = Histogram {
            zeros: u64::from_value(v.field("zeros")?)?,
            bins: Vec::<u64>::from_value(v.field("bins")?)?,
            count: u64::from_value(v.field("count")?)?,
        };
        if h.bins.is_empty() {
            return Err(serde::Error::new("Histogram: bins must be non-empty"));
        }
        let binned: u64 = h.bins.iter().sum();
        if h.count != h.zeros + binned {
            return Err(serde::Error::new(format!(
                "Histogram: count {} != zeros {} + binned {binned}",
                h.count, h.zeros
            )));
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf_behaves() {
        let c = Cdf::from_values(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_at_or_below(1.0), 0.0);
        assert_eq!(c.quantile(0.5), None);
        assert_eq!(c.mean(), None);
        assert!(c.points(10).is_empty());
    }

    #[test]
    fn fraction_is_monotone_and_exact() {
        let c = Cdf::from_values(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.fraction_at_or_below(0.5), 0.0);
        assert_eq!(c.fraction_at_or_below(1.0), 0.25);
        assert_eq!(c.fraction_at_or_below(2.5), 0.5);
        assert_eq!(c.fraction_at_or_below(4.0), 1.0);
        assert_eq!(c.fraction_at_or_below(9.0), 1.0);
    }

    #[test]
    fn nan_dropped() {
        let c = Cdf::from_values(vec![f64::NAN, 1.0, 2.0]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn nan_heavy_input_sorts_without_panicking() {
        // Regression: the sort comparator used to be
        // `partial_cmp(..).unwrap()`, which panics the moment a NaN
        // reaches it. The retain() guards that today; total_cmp
        // guarantees it even if the guard is ever reordered away.
        let mut vals = Vec::new();
        for i in 0..100 {
            vals.push(if i % 3 == 0 { f64::NAN } else { (100 - i) as f64 });
        }
        vals.push(f64::INFINITY);
        vals.push(f64::NEG_INFINITY);
        vals.push(-0.0);
        let c = Cdf::from_values(vals);
        assert_eq!(c.len(), 69, "66 finite + inf + -inf + -0.0");
        assert_eq!(c.quantile(0.0), Some(f64::NEG_INFINITY));
        assert_eq!(c.quantile(1.0), Some(f64::INFINITY));
        // Sorted order is total: every adjacent pair is non-decreasing.
        let pts = c.points(usize::MAX);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
    }

    #[test]
    fn quantiles() {
        let c = Cdf::from_values((1..=101).map(|i| i as f64).collect());
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.quantile(0.5), Some(51.0));
        assert_eq!(c.quantile(1.0), Some(101.0));
    }

    #[test]
    fn mean_matches() {
        let c = Cdf::from_values(vec![2.0, 4.0, 6.0]);
        assert_eq!(c.mean(), Some(4.0));
    }

    #[test]
    fn points_are_monotone_and_end_at_one() {
        let c = Cdf::from_values((0..1000).map(|i| (i % 37) as f64).collect());
        let pts = c.points(50);
        assert!(pts.len() <= 52);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0, "x monotone");
            assert!(w[1].1 >= w[0].1, "y monotone");
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn histogram_counts_and_cdf() {
        let mut h = Histogram::new(10);
        for v in [0.0, 0.05, 0.15, 0.95, 1.0, 2.0, -1.0] {
            h.push(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.zeros(), 2, "0.0 and clamped -1.0");
        // ≤ 0.1: the two zeros plus 0.05 (bin (0, 0.1]).
        assert!((h.fraction_at_or_below(0.1) - 3.0 / 7.0).abs() < 1e-12);
        assert_eq!(h.fraction_at_or_below(1.0), 1.0);
        let pts = h.cdf_points();
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0], (0.0, 2.0 / 7.0));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn histogram_zero_mass_is_exact() {
        let mut h = Histogram::new(200);
        for _ in 0..95 {
            h.push(0.0);
        }
        for _ in 0..5 {
            h.push(0.3);
        }
        assert_eq!(h.fraction_at_or_below(0.0), 0.95);
        assert_eq!(h.fraction_at_or_below(0.29), 0.95);
        assert_eq!(h.fraction_at_or_below(0.31), 1.0);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new(5);
        assert_eq!(h.fraction_at_or_below(0.5), 0.0);
        assert!(h.cdf_points().is_empty());
    }
}
