//! # analysis — turning probe outcomes into the paper's tables and figures
//!
//! Everything is *streaming*: accumulators ingest
//! [`trace::PairOutcome`]s one at a time and keep only per-path counters
//! and histograms, so a full two-week, 30-host run (tens of millions of
//! samples) fits in a few megabytes.
//!
//! * [`loss`] — per-(path, method) loss and latency counters; produces
//!   the 1lp/2lp/totlp/clp/lat columns of Tables 5 and 7 and the
//!   per-path series behind Figures 2, 4 and 5;
//! * [`windows`] — fixed-width time windows per (path, method); produces
//!   the 20-minute loss-rate distribution (Figure 3) and the hour-long
//!   high-loss-period counts (Table 6);
//! * [`cdf`] — empirical distribution functions;
//! * [`latency`] — clock-skew correction by forward/reverse averaging
//!   (§4.1);
//! * [`tables`] / [`figures`] — plain-text renderers that print the same
//!   rows and series the paper reports.

#![warn(missing_docs)]

pub mod cdf;
pub mod figures;
pub mod fingerprint;
pub mod latency;
pub mod loss;
pub mod tables;
pub mod windows;

pub use cdf::{Cdf, Histogram};
pub use fingerprint::Fnv;
pub use figures::{Figure, Series};
pub use loss::{LossAccum, MethodSummary};
pub use tables::{
    render_table5, render_table6, render_table7, scenario_stamp, Table5Row, Table6, Table7Row,
};
pub use windows::WindowAccum;
