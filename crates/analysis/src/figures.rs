//! Figure series: text and CSV output of the paper's plots.

use std::fmt::Write as _;
use std::io::{self, Write};

/// One labelled curve.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (e.g. `direct rand`).
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { label: label.into(), points }
    }

    /// Linear interpolation of `y` at `x` (clamping outside the domain);
    /// `None` for an empty series. Assumes points sorted by `x`.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        if x <= self.points[0].0 {
            return Some(self.points[0].1);
        }
        if x >= self.points[self.points.len() - 1].0 {
            return Some(self.points[self.points.len() - 1].1);
        }
        let i = self.points.partition_point(|p| p.0 <= x);
        let (x0, y0) = self.points[i - 1];
        let (x1, y1) = self.points[i];
        if x1 == x0 {
            return Some(y1);
        }
        Some(y0 + (y1 - y0) * (x - x0) / (x1 - x0))
    }
}

/// A figure: several curves plus axis labels.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure title (e.g. `Figure 4: CDF of conditional loss probabilities`).
    pub title: String,
    /// X axis label.
    pub xlabel: String,
    /// Y axis label.
    pub ylabel: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(title: impl Into<String>, xlabel: impl Into<String>, ylabel: impl Into<String>) -> Self {
        Figure {
            title: title.into(),
            xlabel: xlabel.into(),
            ylabel: ylabel.into(),
            series: Vec::new(),
        }
    }

    /// Adds a curve.
    pub fn push(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Samples every curve at the given x grid and renders an aligned
    /// text table (the repro binary's output format).
    pub fn render_text(&self, grid: &[f64]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = write!(out, "{:>12}", self.xlabel);
        for s in &self.series {
            let _ = write!(out, " {:>14}", s.label);
        }
        let _ = writeln!(out);
        for &x in grid {
            let _ = write!(out, "{x:>12.3}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, " {y:>14.4}");
                    }
                    None => {
                        let _ = write!(out, " {:>14}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Writes the raw points as CSV: `series,x,y`.
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "series,{},{}", self.xlabel, self.ylabel)?;
        for s in &self.series {
            for &(x, y) in &s.points {
                writeln!(w, "{},{},{}", s.label, x, y)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_and_clamping() {
        let s = Series::new("a", vec![(0.0, 0.0), (10.0, 1.0)]);
        assert_eq!(s.y_at(-5.0), Some(0.0));
        assert_eq!(s.y_at(5.0), Some(0.5));
        assert_eq!(s.y_at(20.0), Some(1.0));
        assert_eq!(Series::new("e", vec![]).y_at(1.0), None);
    }

    #[test]
    fn duplicate_x_does_not_divide_by_zero() {
        let s = Series::new("a", vec![(1.0, 0.2), (1.0, 0.8), (2.0, 1.0)]);
        let y = s.y_at(1.0).unwrap();
        assert!((0.0..=1.0).contains(&y));
    }

    #[test]
    fn text_rendering_has_all_series() {
        let mut f = Figure::new("Figure X", "x", "frac");
        f.push(Series::new("one", vec![(0.0, 0.0), (1.0, 1.0)]));
        f.push(Series::new("two", vec![(0.0, 0.5), (1.0, 0.5)]));
        let txt = f.render_text(&[0.0, 0.5, 1.0]);
        assert!(txt.contains("Figure X"));
        assert!(txt.contains("one"));
        assert!(txt.contains("two"));
        assert_eq!(txt.lines().count(), 5);
    }

    #[test]
    fn csv_output_is_parseable() {
        let mut f = Figure::new("t", "x", "y");
        f.push(Series::new("s", vec![(1.0, 2.0)]));
        let mut buf = Vec::new();
        f.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().nth(1).unwrap().starts_with("s,1,2"));
    }
}
