//! The active prober.
//!
//! §3.1 of the paper: "every node probes every other node once every 15
//! seconds. When a probe is lost, the node sends an additional string of
//! up to four probes spaced one second apart, to determine if the remote
//! host is down." Probes are request/response pairs with random 64-bit
//! identifiers; a probe with no response inside the timeout counts as a
//! loss in the path's window.

use crate::stats::PathStats;
use crate::table::LinkStateTable;
use netsim::{HostId, Rng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Prober timing configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProberConfig {
    /// Steady-state interval between probes to each peer.
    pub interval: SimDuration,
    /// Fractional jitter applied to each interval (desynchronises nodes).
    pub jitter_frac: f64,
    /// How long to wait for a response before declaring the probe lost.
    pub timeout: SimDuration,
    /// Number of fast follow-up probes after a loss.
    pub fast_count: u32,
    /// Spacing of the fast probes.
    pub fast_spacing: SimDuration,
}

impl Default for ProberConfig {
    fn default() -> Self {
        ProberConfig {
            interval: SimDuration::from_secs(15),
            jitter_frac: 0.2,
            timeout: SimDuration::from_secs(2),
            fast_count: 4,
            fast_spacing: SimDuration::from_secs(1),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    id: u64,
    peer: HostId,
    sent: SimTime,
    deadline: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct PeerSched {
    next_probe: SimTime,
    chain_left: u32,
}

/// A request to send one probe packet to `peer` with identifier `id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSend {
    /// Probe target.
    pub peer: HostId,
    /// The random probe identifier to carry.
    pub id: u64,
}

/// Drives probing for one node.
#[derive(Debug)]
pub struct Prober {
    cfg: ProberConfig,
    me: HostId,
    peers: Vec<PeerSched>,
    outstanding: Vec<Outstanding>,
    rng: Rng,
    probes_sent: u64,
    probes_lost: u64,
}

impl Prober {
    /// Creates a prober for a mesh of `n` nodes; initial probes are
    /// staggered across one interval starting at `start`.
    pub fn new(me: HostId, n: usize, cfg: ProberConfig, mut rng: Rng, start: SimTime) -> Self {
        let peers = (0..n)
            .map(|j| {
                let offset = if j == me.idx() {
                    SimDuration::MAX / 2 // never probe self
                } else {
                    SimDuration::from_micros(rng.below(cfg.interval.as_micros().max(1)))
                };
                PeerSched { next_probe: start + offset, chain_left: 0 }
            })
            .collect();
        Prober { cfg, me, peers, outstanding: Vec::new(), rng, probes_sent: 0, probes_lost: 0 }
    }

    /// The earliest instant at which [`Prober::on_timer`] has work to do.
    pub fn poll_at(&self) -> Option<SimTime> {
        let next_send = self
            .peers
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != self.me.idx())
            .map(|(_, p)| p.next_probe)
            .min();
        let next_deadline = self.outstanding.iter().map(|o| o.deadline).min();
        match (next_send, next_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn jittered_interval(&mut self) -> SimDuration {
        let f = 1.0 + self.cfg.jitter_frac * (self.rng.f64() * 2.0 - 1.0);
        self.cfg.interval.mul_f64(f.max(0.05))
    }

    /// Processes timer work at `now`: expires outstanding probes
    /// (recording losses and starting fast chains) and emits due probes.
    pub fn on_timer(
        &mut self,
        now: SimTime,
        table: &mut LinkStateTable,
        out: &mut Vec<ProbeSend>,
    ) {
        // 1. Expire unanswered probes.
        let mut expired = Vec::new();
        self.outstanding.retain(|o| {
            if o.deadline <= now {
                expired.push(*o);
                false
            } else {
                true
            }
        });
        for o in expired {
            self.probes_lost += 1;
            table.direct_mut(o.peer).record_loss();
            let idx = o.peer.idx();
            if self.peers[idx].chain_left > 0 {
                self.peers[idx].chain_left -= 1;
                if self.peers[idx].chain_left > 0 {
                    self.peers[idx].next_probe = now + self.cfg.fast_spacing;
                } else {
                    // Chain exhausted; path declared dead by the stats
                    // layer. Resume the normal schedule.
                    let iv = self.jittered_interval();
                    self.peers[idx].next_probe = now + iv;
                }
            } else if !table.direct(o.peer).is_dead() {
                // A fresh loss on a live path triggers the fast chain.
                self.peers[idx].chain_left = self.cfg.fast_count;
                self.peers[idx].next_probe = now + self.cfg.fast_spacing;
            }
        }

        // 2. Send due probes.
        for j in 0..self.peers.len() {
            if j == self.me.idx() {
                continue;
            }
            if self.peers[j].next_probe <= now {
                let id = self.rng.next_u64();
                let peer = HostId(j as u16);
                self.outstanding.push(Outstanding {
                    id,
                    peer,
                    sent: now,
                    deadline: now + self.cfg.timeout,
                });
                out.push(ProbeSend { peer, id });
                self.probes_sent += 1;
                // Chain probes reschedule on their own timeout/response;
                // normal probes get the next steady-state slot.
                if self.peers[j].chain_left == 0 {
                    let iv = self.jittered_interval();
                    self.peers[j].next_probe = now + iv;
                } else {
                    // Placeholder far in the future; the timeout or the
                    // response decides what happens next.
                    self.peers[j].next_probe = now + self.cfg.timeout + self.cfg.fast_spacing;
                }
            }
        }
    }

    /// Handles a probe response arriving at `now`; returns the measured
    /// round-trip time when the id matches an outstanding probe.
    pub fn on_response(
        &mut self,
        id: u64,
        from: HostId,
        now: SimTime,
        table: &mut LinkStateTable,
    ) -> Option<SimDuration> {
        let idx = self.outstanding.iter().position(|o| o.id == id && o.peer == from)?;
        let o = self.outstanding.swap_remove(idx);
        let rtt = now - o.sent;
        // The RTT/2 heuristic for a one-way latency estimate (the overlay
        // has no synchronised clocks of its own).
        table.direct_mut(o.peer).record_success(now, rtt / 2);
        let idx = o.peer.idx();
        if self.peers[idx].chain_left > 0 {
            // A success cancels the fast chain.
            self.peers[idx].chain_left = 0;
            let iv = self.jittered_interval();
            self.peers[idx].next_probe = now + iv;
        }
        Some(rtt)
    }

    /// (sent, lost) probe counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.probes_sent, self.probes_lost)
    }

    /// Direct access to per-peer stats (diagnostics).
    pub fn path<'t>(&self, table: &'t LinkStateTable, peer: HostId) -> &'t PathStats {
        table.direct(peer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;

    fn mk(n: usize) -> (Prober, LinkStateTable) {
        let cfg = ProberConfig::default();
        let table = LinkStateTable::new(
            HostId(0),
            n,
            100,
            0.1,
            1 + cfg.fast_count,
            SimDuration::from_secs(90),
            0.01,
            0.05,
        );
        let prober = Prober::new(HostId(0), n, cfg, Rng::new(42), SimTime::ZERO);
        (prober, table)
    }

    /// Drives the prober for `secs` seconds, answering probes to peers in
    /// `responsive` after `rtt_ms`.
    fn drive(
        prober: &mut Prober,
        table: &mut LinkStateTable,
        secs: u64,
        responsive: &[u16],
        rtt_ms: u64,
    ) {
        let mut pending_resp: Vec<(SimTime, u64, HostId)> = Vec::new();
        let end = SimTime::from_secs(secs);
        let mut now;
        loop {
            let next_timer = prober.poll_at().unwrap_or(end);
            let next_resp = pending_resp.iter().map(|r| r.0).min().unwrap_or(end);
            now = next_timer.min(next_resp);
            if now >= end {
                break;
            }
            // Deliver due responses first.
            let mut due: Vec<(SimTime, u64, HostId)> = Vec::new();
            pending_resp.retain(|r| {
                if r.0 <= now {
                    due.push(*r);
                    false
                } else {
                    true
                }
            });
            for (_, id, peer) in due {
                prober.on_response(id, peer, now, table);
            }
            let mut sends = Vec::new();
            prober.on_timer(now, table, &mut sends);
            for s in sends {
                if responsive.contains(&s.peer.0) {
                    pending_resp.push((now + SimDuration::from_millis(rtt_ms), s.id, s.peer));
                }
            }
        }
    }

    #[test]
    fn responsive_peers_build_clean_windows() {
        let (mut prober, mut table) = mk(3);
        drive(&mut prober, &mut table, 300, &[1, 2], 40);
        for peer in [1u16, 2] {
            let s = table.direct(HostId(peer));
            assert!(s.samples() >= 15, "peer {peer} samples {}", s.samples());
            assert_eq!(s.loss_rate(), 0.0);
            let lat = s.latency_us().unwrap();
            assert!((lat - 20_000.0).abs() < 500.0, "lat={lat} (rtt/2 of 40ms)");
            assert!(!s.is_dead());
        }
    }

    #[test]
    fn silent_peer_is_declared_dead_quickly() {
        let (mut prober, mut table) = mk(3);
        drive(&mut prober, &mut table, 60, &[1], 40);
        assert!(table.direct(HostId(2)).is_dead(), "unresponsive peer must die");
        assert!(!table.direct(HostId(1)).is_dead());
    }

    #[test]
    fn fast_chain_sends_extra_probes_after_loss() {
        // Peer 1 responsive, peer 2 silent: within the first ~25 s the
        // chain (1 + 4 probes) should already have fired at 1 s spacing,
        // i.e. many more probes than the steady 15 s schedule would send.
        let (mut prober, mut table) = mk(3);
        drive(&mut prober, &mut table, 45, &[1], 40);
        let dead_path = table.direct(HostId(2));
        assert!(
            dead_path.samples() >= 5,
            "chain must add probes: {} recorded",
            dead_path.samples()
        );
    }

    #[test]
    fn probe_rate_matches_configuration() {
        let (mut prober, mut table) = mk(2);
        drive(&mut prober, &mut table, 1500, &[1], 40);
        let (sent, lost) = prober.counters();
        assert_eq!(lost, 0);
        // 1500 s / 15 s ≈ 100 probes (jitter ±20%).
        assert!((80..=125).contains(&(sent as i64)), "sent={sent}");
    }

    #[test]
    fn unknown_response_id_is_ignored() {
        let (mut prober, mut table) = mk(3);
        assert_eq!(
            prober.on_response(0xBAD, HostId(1), SimTime::from_secs(1), &mut table),
            None
        );
    }

    #[test]
    fn recovery_after_outage() {
        let (mut prober, mut table) = mk(2);
        // Phase 1: silence → dead.
        drive(&mut prober, &mut table, 60, &[], 40);
        assert!(table.direct(HostId(1)).is_dead());
        // Phase 2: keep driving with the peer answering; the path must
        // come back to life. (drive() restarts time, so run the prober
        // manually from a later instant.)
        let mut pending: Vec<(SimTime, u64)> = Vec::new();
        let mut now = SimTime::from_secs(60);
        for _ in 0..200 {
            let mut sends = Vec::new();
            prober.on_timer(now, &mut table, &mut sends);
            for s in sends {
                pending.push((now + SimDuration::from_millis(30), s.id));
            }
            let due: Vec<_> = pending.iter().filter(|p| p.0 <= now).cloned().collect();
            pending.retain(|p| p.0 > now);
            for (_, id) in due {
                prober.on_response(id, HostId(1), now, &mut table);
            }
            now += SimDuration::from_millis(500);
        }
        assert!(!table.direct(HostId(1)).is_dead(), "path must revive");
    }
}
