//! Metric dissemination strategies.
//!
//! How a node's direct-path measurements reach the rest of the mesh is a
//! pluggable policy, selected per scenario:
//!
//! * [`DisseminationMode::FullSnapshot`] — the original RON behaviour and
//!   the default: every probe request and response piggybacks the
//!   sender's complete O(n) metric vector. Simple and fast to converge,
//!   but the mesh-wide cost is O(n³)/sec and dominates beyond ~500 hosts
//!   (the knee `repro --scale-sweep` located).
//! * [`DisseminationMode::Delta`] — sequence-numbered link-state
//!   advertisements. A node bumps its advertisement seqno whenever a
//!   direct metric changes *significantly* (alive flip, ≥ 1 pp loss,
//!   ≥ 10 % latency), and each probe is accompanied by an
//!   [`Packet::Lsa`] carrying only the entries that advanced past the
//!   last seqno the peer acknowledged (a probe response doubles as the
//!   ack). Every `max_age_probes`-th probe to a peer carries the full
//!   vector instead — the anti-entropy backstop that repairs dropped
//!   LSAs and acks that outran their advertisement.
//! * [`DisseminationMode::Gossip`] — probes carry nothing; instead, on a
//!   fixed timer each node pushes its freshest LSAs (its own, plus any
//!   foreign ones learned since the last tick) to a deterministic
//!   seed-derived `fanout` set of peers. Epidemic spread costs
//!   O(fanout) packets per node per tick regardless of mesh size.
//!
//! The [`Disseminator`] is a sans-io state machine owned by
//! [`crate::OverlayNode`]; all randomness comes from its own derived RNG
//! stream, so `FullSnapshot` consumes no draws and leaves historical
//! results byte-identical.

use crate::table::LinkStateTable;
use crate::wire::{MetricEntry, Packet};
use netsim::{HostId, Rng, SimDuration, SimTime};

/// Which dissemination strategy a node runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DisseminationMode {
    /// Piggyback the complete metric vector on every probe packet.
    FullSnapshot,
    /// Sequence-numbered delta LSAs alongside probes, with a full
    /// refresh every `max_age_probes` probes per peer as anti-entropy.
    Delta {
        /// Probes to a peer between forced full-vector refreshes.
        max_age_probes: u32,
    },
    /// Push full LSAs to a random fanout set on a timer; probes carry
    /// no link state at all.
    Gossip {
        /// Peers addressed per gossip round.
        fanout: usize,
        /// Gossip round interval, milliseconds.
        interval_ms: u64,
    },
}

impl DisseminationMode {
    /// Short lowercase label (`full`, `delta`, `gossip`) for reports.
    pub fn label(&self) -> &'static str {
        match self {
            DisseminationMode::FullSnapshot => "full",
            DisseminationMode::Delta { .. } => "delta",
            DisseminationMode::Gossip { .. } => "gossip",
        }
    }
}

/// Advertisement-change quantum for loss, in 1/10000 units (1 pp).
/// Below this the EWMA wiggles on every probe and deltas never quiesce.
const LOSS_QUANTUM_E4: u16 = 100;
/// Relative latency change that counts as significant.
const LAT_QUANTUM: f64 = 0.10;
/// Cap on remembered unacknowledged probe→seqno associations.
const MAX_PENDING: usize = 256;

/// Did the path change enough to justify a new advertisement?
fn significant_change(old: &MetricEntry, new: &MetricEntry) -> bool {
    if old.alive != new.alive {
        return true;
    }
    if old.loss_e4.abs_diff(new.loss_e4) >= LOSS_QUANTUM_E4 {
        return true;
    }
    if (old.lat_us == 0) != (new.lat_us == 0) {
        return true;
    }
    if old.lat_us != 0 {
        let rel = (old.lat_us as f64 - new.lat_us as f64).abs() / old.lat_us as f64;
        if rel >= LAT_QUANTUM {
            return true;
        }
    }
    false
}

/// Does this entry say anything a fresh table doesn't already assume?
///
/// A never-sampled path advertises exactly `alive: false`, `lat_us: 0`,
/// `loss_e4: 5000` (the Laplace prior 0.5/1 with an empty window); any
/// sampled path violates at least one of the three (alive paths set
/// `alive`, dead paths advertise `loss_e4: 10_000`). Every routing
/// consumer skips `!alive` entries, so an uninformative entry absent
/// from a vector is indistinguishable from one present — dropping them
/// at the sender shrinks emitted vectors from O(n) to O(sampled peers)
/// without moving a single fingerprint (packet *counts*, and with them
/// every RNG draw, never depend on entry-list contents).
fn informative(e: &MetricEntry) -> bool {
    e.alive || e.lat_us != 0 || e.loss_e4 != 5_000
}

/// An owned copy of `entries` with the uninformative ones dropped.
fn informative_entries(entries: &[MetricEntry]) -> Vec<MetricEntry> {
    entries.iter().filter(|e| informative(e)).copied().collect()
}

#[derive(Debug, Clone, Copy, Default)]
struct PeerDelta {
    /// Highest own-advertisement seqno this peer has acknowledged.
    acked_seq: u64,
    /// Probes sent to this peer since the last full refresh.
    sends_since_full: u32,
}

#[derive(Debug, Clone)]
struct ForeignLsa {
    seq: u64,
    entries: Vec<MetricEntry>,
    /// Not yet forwarded in a gossip round.
    fresh: bool,
}

/// Per-node dissemination state machine.
#[derive(Debug)]
pub struct Disseminator {
    mode: DisseminationMode,
    me: HostId,
    n: usize,
    rng: Rng,
    /// Seqno of my current advertisement; bumps on significant change.
    own_seq: u64,
    /// The vector as last advertised (quantized publisher state), in
    /// [`LinkStateTable::snapshot`] order.
    advertised: Vec<MetricEntry>,
    /// Per-destination seqno at which its advertised entry last changed.
    entry_seq: Vec<u64>,
    /// Whether `advertised` has been initialised from the table.
    init: bool,
    /// Delta mode: per-peer ack/refresh bookkeeping.
    peers: Vec<PeerDelta>,
    /// Delta mode: probe id → (peer, seqno advertised with it).
    pending: Vec<(u64, u16, u64)>,
    /// Highest ingested advertisement seqno per origin (receiver dedup).
    origin_seq: Vec<u64>,
    /// Gossip mode: stored foreign LSAs for onward forwarding.
    foreign: Vec<Option<ForeignLsa>>,
    /// Gossip mode: own seqno as of the last flushed round.
    own_flushed_seq: u64,
    /// Gossip mode: next round instant.
    next_tick: Option<SimTime>,
}

impl Disseminator {
    /// Creates the state machine. `rng` must be a stream private to
    /// dissemination (the node derives one); `start` anchors the first
    /// gossip round, jittered within one interval so a simultaneously
    /// started mesh does not fire in lockstep.
    pub fn new(mode: DisseminationMode, me: HostId, n: usize, mut rng: Rng, start: SimTime) -> Self {
        let next_tick = match mode {
            DisseminationMode::Gossip { interval_ms, .. } => {
                let offset = interval_ms as f64 / 1_000.0 * rng.f64();
                Some(start + SimDuration::from_secs_f64(offset))
            }
            _ => None,
        };
        Disseminator {
            mode,
            me,
            n,
            rng,
            own_seq: 0,
            advertised: Vec::new(),
            entry_seq: vec![0; n],
            init: false,
            peers: vec![PeerDelta::default(); n],
            pending: Vec::new(),
            origin_seq: vec![0; n],
            foreign: vec![None; n],
            own_flushed_seq: 0,
            next_tick,
        }
    }

    /// The active mode.
    pub fn mode(&self) -> DisseminationMode {
        self.mode
    }

    /// Earliest instant the disseminator needs a timer callback (gossip
    /// rounds; `None` for the probe-driven modes).
    pub fn poll_at(&self) -> Option<SimTime> {
        self.next_tick
    }

    /// Re-quantizes the advertisement against the table's current
    /// snapshot, bumping `own_seq` once if anything moved significantly.
    fn refresh(&mut self, table: &mut LinkStateTable) {
        let snap = table.snapshot();
        if !self.init {
            // First look: adopt the (all-unknown) initial state without
            // advertising it — there is nothing useful to tell peers yet.
            self.advertised = snap.to_vec();
            self.init = true;
            return;
        }
        let changed: Vec<usize> = self
            .advertised
            .iter()
            .zip(snap.iter())
            .enumerate()
            .filter(|(_, (old, new))| significant_change(old, new))
            .map(|(i, _)| i)
            .collect();
        if changed.is_empty() {
            return;
        }
        self.own_seq += 1;
        for i in changed {
            let e = snap[i];
            self.advertised[i] = e;
            self.entry_seq[e.peer.idx()] = self.own_seq;
        }
    }

    fn remember_pending(&mut self, id: u64, peer: HostId, seq: u64) {
        if self.pending.len() >= MAX_PENDING {
            self.pending.remove(0);
        }
        self.pending.push((id, peer.0, seq));
    }

    /// Called for every probe request the prober emits. Returns the
    /// metrics to piggyback on the [`Packet::ProbeReq`] and an optional
    /// accompanying LSA packet for the same peer.
    pub fn on_probe_send(
        &mut self,
        peer: HostId,
        probe_id: u64,
        table: &mut LinkStateTable,
    ) -> (Vec<MetricEntry>, Option<Packet>) {
        match self.mode {
            DisseminationMode::FullSnapshot => (informative_entries(table.snapshot()), None),
            DisseminationMode::Gossip { .. } => (Vec::new(), None),
            DisseminationMode::Delta { max_age_probes } => {
                self.refresh(table);
                let idx = peer.idx();
                self.peers[idx].sends_since_full += 1;
                let full = self.peers[idx].sends_since_full >= max_age_probes.max(1);
                let acked = self.peers[idx].acked_seq;
                let entries: Vec<MetricEntry> = if full {
                    self.peers[idx].sends_since_full = 0;
                    // A full refresh may legitimately carry zero entries
                    // (nothing sampled yet); it is still sent — the
                    // emission decision below keys on `full`, never on
                    // content, so the packet sequence (and every RNG
                    // draw behind it) is identical to the dense layout.
                    informative_entries(&self.advertised)
                } else {
                    self.advertised
                        .iter()
                        .filter(|e| self.entry_seq[e.peer.idx()] > acked)
                        .copied()
                        .collect()
                };
                if !full && entries.is_empty() {
                    // Quiescent toward this peer: send nothing at all.
                    return (Vec::new(), None);
                }
                self.remember_pending(probe_id, peer, self.own_seq);
                let lsa = Packet::Lsa { origin: self.me, seq: self.own_seq, full, entries };
                (Vec::new(), Some(lsa))
            }
        }
    }

    /// Called when answering a probe request from `peer`. Returns the
    /// metrics for the [`Packet::ProbeResp`] and an optional LSA to send
    /// alongside it. The responder side has no ack channel, so delta
    /// LSAs emitted here never advance `acked_seq` — the probe-send path
    /// and its full refresh repair any loss.
    pub fn on_probe_reply(
        &mut self,
        peer: HostId,
        table: &mut LinkStateTable,
    ) -> (Vec<MetricEntry>, Option<Packet>) {
        match self.mode {
            DisseminationMode::FullSnapshot => (informative_entries(table.snapshot()), None),
            DisseminationMode::Gossip { .. } => (Vec::new(), None),
            DisseminationMode::Delta { .. } => {
                self.refresh(table);
                let acked = self.peers[peer.idx()].acked_seq;
                let entries: Vec<MetricEntry> = self
                    .advertised
                    .iter()
                    .filter(|e| self.entry_seq[e.peer.idx()] > acked)
                    .copied()
                    .collect();
                if entries.is_empty() {
                    return (Vec::new(), None);
                }
                let lsa =
                    Packet::Lsa { origin: self.me, seq: self.own_seq, full: false, entries };
                (Vec::new(), Some(lsa))
            }
        }
    }

    /// A probe response from `from` validated probe `id`: the LSA that
    /// rode along with that probe (if any) is acknowledged.
    pub fn on_ack(&mut self, id: u64, from: HostId) {
        if let Some(pos) = self.pending.iter().position(|&(pid, p, _)| pid == id && p == from.0)
        {
            let (_, _, seq) = self.pending.remove(pos);
            let acked = &mut self.peers[from.idx()].acked_seq;
            *acked = (*acked).max(seq);
        }
    }

    /// Metrics piggybacked on a probe packet from `from`. Only the
    /// full-snapshot mode carries link state this way; the other modes
    /// ignore any stray payload rather than letting an empty vector
    /// wipe LSA-learned state.
    pub fn on_probe_metrics(
        &mut self,
        from: HostId,
        entries: &[MetricEntry],
        now: SimTime,
        table: &mut LinkStateTable,
    ) {
        if self.mode == DisseminationMode::FullSnapshot {
            table.ingest_full(from, entries, now);
        }
    }

    /// A standalone [`Packet::Lsa`] arrived. Seqno-deduplicated per
    /// origin: deltas must strictly advance, full refreshes may repeat
    /// the current seqno (they repair entries an earlier lost delta
    /// carried past us).
    pub fn on_lsa(
        &mut self,
        origin: HostId,
        seq: u64,
        full: bool,
        entries: &[MetricEntry],
        now: SimTime,
        table: &mut LinkStateTable,
    ) {
        if origin == self.me || origin.idx() >= self.n {
            return;
        }
        let stored = self.origin_seq[origin.idx()];
        match self.mode {
            DisseminationMode::FullSnapshot => {}
            DisseminationMode::Delta { .. } => {
                if full {
                    if seq >= stored {
                        table.ingest_full(origin, entries, now);
                        self.origin_seq[origin.idx()] = seq;
                    }
                } else if seq > stored {
                    table.ingest_delta(origin, entries, now);
                    self.origin_seq[origin.idx()] = seq;
                }
            }
            DisseminationMode::Gossip { .. } => {
                if seq > stored {
                    table.ingest_full(origin, entries, now);
                    self.origin_seq[origin.idx()] = seq;
                    self.foreign[origin.idx()] =
                        Some(ForeignLsa { seq, entries: entries.to_vec(), fresh: true });
                }
            }
        }
    }

    /// Runs a gossip round if one is due: flushes my own advertisement
    /// (when its seqno advanced) plus every foreign LSA learned since
    /// the last round to a freshly drawn fanout set.
    pub fn on_tick(
        &mut self,
        now: SimTime,
        table: &mut LinkStateTable,
        out: &mut Vec<(HostId, Packet)>,
    ) {
        let DisseminationMode::Gossip { fanout, interval_ms } = self.mode else { return };
        let Some(tick) = self.next_tick else { return };
        if now < tick {
            return;
        }
        self.refresh(table);
        let mut lsas: Vec<(HostId, u64, Vec<MetricEntry>)> = Vec::new();
        if self.own_seq > self.own_flushed_seq {
            lsas.push((self.me, self.own_seq, informative_entries(&self.advertised)));
            self.own_flushed_seq = self.own_seq;
        }
        for j in 0..self.n {
            if let Some(f) = &mut self.foreign[j] {
                if f.fresh {
                    f.fresh = false;
                    lsas.push((HostId(j as u16), f.seq, f.entries.clone()));
                }
            }
        }
        if !lsas.is_empty() {
            for target in self.pick_fanout(fanout) {
                for (origin, seq, entries) in &lsas {
                    if *origin == target {
                        continue; // never tell a node about itself
                    }
                    out.push((
                        target,
                        Packet::Lsa {
                            origin: *origin,
                            seq: *seq,
                            full: true,
                            entries: entries.clone(),
                        },
                    ));
                }
            }
        }
        self.next_tick = Some(tick + SimDuration::from_millis(interval_ms.max(1)));
    }

    /// Draws up to `fanout` distinct peers (never self) for one round.
    fn pick_fanout(&mut self, fanout: usize) -> Vec<HostId> {
        let avail = self.n.saturating_sub(1);
        let k = fanout.min(avail);
        let mut picked: Vec<HostId> = Vec::with_capacity(k);
        // Rejection sampling with a hard cap: duplicates get rarer as k
        // approaches avail, and the cap bounds the worst case.
        let mut attempts = 0usize;
        while picked.len() < k && attempts < 16 * (k + 1) {
            attempts += 1;
            let mut idx = self.rng.below(avail as u64) as usize;
            if idx >= self.me.idx() {
                idx += 1;
            }
            let h = HostId(idx as u16);
            if !picked.contains(&h) {
                picked.push(h);
            }
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(me: u16, n: usize) -> LinkStateTable {
        LinkStateTable::new(
            HostId(me),
            n,
            100,
            0.1,
            5,
            SimDuration::from_secs(90),
            0.01,
            0.05,
        )
    }

    fn feed_success(t: &mut LinkStateTable, peer: u16, count: usize, lat_ms: u64) {
        for _ in 0..count {
            t.direct_mut(HostId(peer))
                .record_success(SimTime::from_secs(1), SimDuration::from_millis(lat_ms));
        }
    }

    fn delta(max_age_probes: u32) -> Disseminator {
        Disseminator::new(
            DisseminationMode::Delta { max_age_probes },
            HostId(0),
            4,
            Rng::new(7),
            SimTime::ZERO,
        )
    }

    #[test]
    fn full_snapshot_piggybacks_and_never_emits_lsas() {
        let mut t = table(0, 4);
        let mut d = Disseminator::new(
            DisseminationMode::FullSnapshot,
            HostId(0),
            4,
            Rng::new(7),
            SimTime::ZERO,
        );
        feed_success(&mut t, 1, 10, 20);
        let (metrics, lsa) = d.on_probe_send(HostId(1), 99, &mut t);
        // Only the sampled path rides along: never-probed entries carry
        // no information and are dropped from the piggyback.
        assert_eq!(metrics.len(), 1);
        assert_eq!(metrics[0].peer, HostId(1));
        assert!(lsa.is_none());
        assert!(d.poll_at().is_none());
    }

    #[test]
    fn quiescent_delta_sends_nothing() {
        let mut t = table(0, 4);
        let mut d = delta(16);
        // No table activity at all: first sends carry no LSA.
        for id in 0..5 {
            let (metrics, lsa) = d.on_probe_send(HostId(1), id, &mut t);
            assert!(metrics.is_empty());
            assert!(lsa.is_none(), "quiescent probe {id} must not carry an LSA");
        }
    }

    #[test]
    fn delta_carries_only_changed_entries_until_acked() {
        let mut t = table(0, 4);
        let mut d = delta(16);
        let (_, none) = d.on_probe_send(HostId(1), 0, &mut t); // initialise advertisement
        assert!(none.is_none());
        feed_success(&mut t, 2, 10, 20); // path 0→2 comes alive
        let (_, lsa) = d.on_probe_send(HostId(1), 1, &mut t);
        let Some(Packet::Lsa { seq, full, entries, .. }) = lsa else {
            panic!("expected an LSA after a significant change")
        };
        assert_eq!(seq, 1);
        assert!(!full);
        assert_eq!(entries.len(), 1, "only the changed entry rides along");
        assert_eq!(entries[0].peer, HostId(2));
        // Unacked: the next probe repeats the delta.
        let (_, again) = d.on_probe_send(HostId(1), 2, &mut t);
        assert!(matches!(again, Some(Packet::Lsa { .. })));
        // Ack probe 2 → quiescent again.
        d.on_ack(2, HostId(1));
        let (_, after) = d.on_probe_send(HostId(1), 3, &mut t);
        assert!(after.is_none(), "acked delta must stop retransmitting");
    }

    #[test]
    fn every_max_age_th_probe_is_a_full_refresh() {
        let mut t = table(0, 4);
        let mut d = delta(4);
        // One path sampled: the periodic fulls must carry exactly that
        // entry (never-sampled entries are uninformative and dropped;
        // the full itself is still sent on schedule).
        feed_success(&mut t, 2, 10, 20);
        let mut fulls = 0;
        let mut first_seen = false;
        for id in 0..12 {
            if let (_, Some(Packet::Lsa { full, entries, .. })) =
                d.on_probe_send(HostId(1), id, &mut t)
            {
                if !full {
                    // The initial delta advertising path 0→2; acked so
                    // it stops repeating and only fulls remain.
                    assert!(!first_seen, "only the first change emits a delta");
                    first_seen = true;
                    d.on_ack(id, HostId(1));
                    continue;
                }
                assert_eq!(entries.len(), 1, "fulls carry only sampled entries");
                assert_eq!(entries[0].peer, HostId(2));
                fulls += 1;
            }
        }
        assert_eq!(fulls, 3, "one full per max_age_probes=4 window");
    }

    #[test]
    fn quiescent_fulls_still_fire_with_empty_entry_lists() {
        // A mesh with nothing sampled still emits its anti-entropy fulls
        // on schedule — the packet sequence must not depend on entry
        // content, only the payload shrinks to zero entries.
        let mut t = table(0, 4);
        let mut d = delta(4);
        let mut fulls = 0;
        for id in 0..12 {
            if let (_, Some(Packet::Lsa { full, entries, .. })) =
                d.on_probe_send(HostId(1), id, &mut t)
            {
                assert!(full, "quiescent mesh only emits anti-entropy fulls");
                assert!(entries.is_empty(), "nothing sampled → nothing advertised");
                fulls += 1;
            }
        }
        assert_eq!(fulls, 3, "one full per max_age_probes=4 window");
    }

    #[test]
    fn receiver_dedups_by_seqno_but_accepts_repeated_fulls() {
        let mut t = table(5, 8);
        let mut d = Disseminator::new(
            DisseminationMode::Delta { max_age_probes: 16 },
            HostId(5),
            8,
            Rng::new(9),
            SimTime::ZERO,
        );
        let now = SimTime::from_secs(10);
        let e1 = MetricEntry { peer: HostId(2), loss_e4: 100, lat_us: 9_000, alive: true };
        let e2 = MetricEntry { peer: HostId(3), loss_e4: 200, lat_us: 8_000, alive: true };
        d.on_lsa(HostId(1), 5, false, &[e1], now, &mut t);
        assert!(t.remote_metric(HostId(1), HostId(2), now).is_some());
        // A stale delta (seq 5 again) is ignored...
        d.on_lsa(HostId(1), 5, false, &[e2], now, &mut t);
        assert!(t.remote_metric(HostId(1), HostId(3), now).is_none());
        // ...but a full refresh at the same seq repairs the hole.
        d.on_lsa(HostId(1), 5, true, &[e1, e2], now, &mut t);
        assert!(t.remote_metric(HostId(1), HostId(3), now).is_some());
    }

    #[test]
    fn gossip_rounds_flood_fresh_lsas_to_a_fanout_set() {
        let n = 10;
        let mut t = table(0, n);
        let mut d = Disseminator::new(
            DisseminationMode::Gossip { fanout: 3, interval_ms: 500 },
            HostId(0),
            n,
            Rng::new(11),
            SimTime::ZERO,
        );
        let first = d.poll_at().expect("gossip must arm a timer");
        assert!(
            first <= SimTime::ZERO + SimDuration::from_millis(500),
            "first round jittered within one interval"
        );
        // Round 1: nothing changed yet → silence.
        let mut out = Vec::new();
        d.on_tick(first, &mut t, &mut out);
        assert!(out.is_empty());
        // A path comes alive; the next round floods my own LSA.
        feed_success(&mut t, 1, 10, 20);
        let second = d.poll_at().unwrap();
        d.on_tick(second, &mut t, &mut out);
        // detlint: allow(nondet-iter) — test assertion set: len/contains
        // only, order never observed.
        let targets: std::collections::HashSet<u16> = out.iter().map(|(h, _)| h.0).collect();
        assert_eq!(out.len(), 3, "fanout=3 copies of my LSA");
        assert_eq!(targets.len(), 3, "targets are distinct");
        assert!(!targets.contains(&0), "never gossip to self");
        for (_, p) in &out {
            let Packet::Lsa { origin, seq, full, entries } = p else { panic!("non-LSA gossip") };
            assert_eq!(*origin, HostId(0));
            assert_eq!(*seq, 1);
            assert!(*full);
            // Only the sampled path is advertised; the other n - 2
            // never-probed entries are uninformative and dropped.
            assert_eq!(entries.len(), 1);
            assert_eq!(entries[0].peer, HostId(1));
        }
        // Quiescent again: round 3 is silent.
        out.clear();
        let third = d.poll_at().unwrap();
        d.on_tick(third, &mut t, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn gossip_forwards_fresh_foreign_lsas_once() {
        let n = 6;
        let mut t = table(0, n);
        let mut d = Disseminator::new(
            DisseminationMode::Gossip { fanout: 2, interval_ms: 500 },
            HostId(0),
            n,
            Rng::new(13),
            SimTime::ZERO,
        );
        let now = SimTime::from_secs(1);
        let e = MetricEntry { peer: HostId(4), loss_e4: 50, lat_us: 5_000, alive: true };
        d.on_lsa(HostId(3), 7, true, &[e], now, &mut t);
        assert!(t.remote_metric(HostId(3), HostId(4), now).is_some(), "gossip LSA ingested");
        let mut out = Vec::new();
        let tick = d.poll_at().unwrap();
        d.on_tick(tick.max(now), &mut t, &mut out);
        assert!(!out.is_empty(), "fresh foreign LSA must be forwarded");
        for (to, p) in &out {
            let Packet::Lsa { origin, seq, .. } = p else { panic!("non-LSA gossip") };
            assert_eq!((*origin, *seq), (HostId(3), 7));
            assert_ne!(*to, HostId(3), "never forward an LSA back to its origin");
            assert_ne!(*to, HostId(0));
        }
        // Second round: already flushed, no repeat.
        out.clear();
        let tick2 = d.poll_at().unwrap();
        d.on_tick(tick2, &mut t, &mut out);
        assert!(out.is_empty(), "a foreign LSA is forwarded exactly once");
    }

    #[test]
    fn insignificant_wiggle_does_not_bump_seq() {
        let old = MetricEntry { peer: HostId(1), loss_e4: 500, lat_us: 10_000, alive: true };
        let wiggle = MetricEntry { peer: HostId(1), loss_e4: 550, lat_us: 10_500, alive: true };
        assert!(!significant_change(&old, &wiggle));
        let loss_jump = MetricEntry { peer: HostId(1), loss_e4: 700, lat_us: 10_000, alive: true };
        assert!(significant_change(&old, &loss_jump));
        let lat_jump = MetricEntry { peer: HostId(1), loss_e4: 500, lat_us: 12_000, alive: true };
        assert!(significant_change(&old, &lat_jump));
        let died = MetricEntry { peer: HostId(1), loss_e4: 500, lat_us: 10_000, alive: false };
        assert!(significant_change(&old, &died));
    }
}
