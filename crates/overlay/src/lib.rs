//! # overlay — a RON-style overlay routing node
//!
//! A from-scratch implementation of the overlay system the paper's
//! measurement study runs on (§3): every node probes every other node,
//! keeps per-path loss windows and latency estimates, disseminates its
//! direct-path metrics to peers (piggybacked on probe packets), and
//! routes packets either directly or through **at most one intermediate
//! node** — the RON design point.
//!
//! The node core is *sans-io*: [`node::OverlayNode`] is a deterministic
//! state machine driven by three inputs — packets, timer expiries, and
//! route queries — that emits packets to transmit. The same core runs
//! on the discrete-event simulator (`mpath-core` experiments) and on real
//! UDP sockets (`mpath-live`), so measured behaviour and deployable
//! behaviour cannot drift apart.
//!
//! Module map:
//! * [`wire`] — the packet format and its binary codec;
//! * [`stats`] — per-path loss windows (the paper's "average loss rate
//!   over the last 100 probes") and latency EWMAs;
//! * [`table`] — the link-state table and route selection policies
//!   (direct, minimum-loss, minimum-latency, random intermediate);
//! * [`prober`] — the 15-second prober with loss-triggered fast probe
//!   chains (up to four, one second apart);
//! * [`dissem`] — how metrics reach the mesh: full snapshots on every
//!   probe (the default), sequence-numbered delta LSAs, or timed gossip
//!   fanout;
//! * [`node`] — the assembled overlay node.

#![warn(missing_docs)]

pub mod dissem;
pub mod node;
pub mod prober;
pub mod stats;
pub mod table;
pub mod wire;

pub use dissem::{DisseminationMode, Disseminator};
pub use node::{Delivered, NodeConfig, OverlayNode, Transmit};
pub use prober::{ProbeSend, Prober, ProberConfig};
pub use stats::{LossWindow, PathStats};
pub use table::{LinkStateTable, Policy, RemoteMetric, Route};
pub use wire::{MeasureKind, MetricEntry, Packet, RouteTag, WireError, MAX_PROBE_LEGS};
