//! Per-path measurement state.
//!
//! RON's routing metric is "the average loss rate over the last 100
//! probes" (§3.1); latency uses an exponentially weighted moving average
//! of probe round-trip times. A path whose probes go unanswered —
//! including the loss-triggered fast chain — is declared dead until a
//! probe succeeds again.

use netsim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A fixed-capacity window of probe outcomes.
#[derive(Debug, Clone)]
pub struct LossWindow {
    cap: usize,
    outcomes: VecDeque<bool>, // true = lost
    lost: usize,
}

impl LossWindow {
    /// Creates a window of the given capacity (RON uses 100).
    ///
    /// The buffer is allocated lazily: a node holds one window per peer,
    /// and at thousands of hosts most paths are never probed within a
    /// run, so eager `with_capacity` would pin O(n²·cap) bytes of
    /// untouched buffers per process. Eviction keys on `len() == cap`,
    /// so allocated capacity never affects behavior.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "window capacity must be positive");
        LossWindow { cap, outcomes: VecDeque::new(), lost: 0 }
    }

    /// Bytes of heap behind this window's outcome buffer.
    pub fn heap_bytes(&self) -> usize {
        self.outcomes.capacity() * std::mem::size_of::<bool>()
    }

    /// Records one probe outcome.
    pub fn push(&mut self, lost: bool) {
        if self.outcomes.len() == self.cap {
            if let Some(old) = self.outcomes.pop_front() {
                if old {
                    self.lost -= 1;
                }
            }
        }
        self.outcomes.push_back(lost);
        if lost {
            self.lost += 1;
        }
    }

    /// Fraction of recorded probes lost (0.0 when empty).
    pub fn loss_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.lost as f64 / self.outcomes.len() as f64
        }
    }

    /// Number of outcomes currently recorded.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of losses currently in the window.
    pub fn losses(&self) -> usize {
        self.lost
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }
}

/// Everything a node knows about one of its direct paths.
#[derive(Debug, Clone)]
pub struct PathStats {
    window: LossWindow,
    ewma_alpha: f64,
    lat_us: Option<f64>,
    consecutive_losses: u32,
    dead_threshold: u32,
    dead: bool,
    last_success: Option<SimTime>,
}

impl PathStats {
    /// Creates path state with the given window size, EWMA weight for new
    /// samples, and consecutive-loss threshold for declaring death.
    pub fn new(window: usize, ewma_alpha: f64, dead_threshold: u32) -> Self {
        PathStats {
            window: LossWindow::new(window),
            ewma_alpha,
            lat_us: None,
            consecutive_losses: 0,
            dead_threshold,
            dead: false,
            last_success: None,
        }
    }

    /// Bytes of heap behind this path's loss-window buffer.
    pub fn heap_bytes(&self) -> usize {
        self.window.heap_bytes()
    }

    /// Records a successful probe with the measured one-way latency.
    pub fn record_success(&mut self, now: SimTime, one_way: SimDuration) {
        self.window.push(false);
        let sample = one_way.as_micros() as f64;
        self.lat_us = Some(match self.lat_us {
            Some(prev) => prev + self.ewma_alpha * (sample - prev),
            None => sample,
        });
        self.consecutive_losses = 0;
        self.dead = false;
        self.last_success = Some(now);
    }

    /// Records a probe loss (timeout).
    pub fn record_loss(&mut self) {
        self.window.push(true);
        self.consecutive_losses += 1;
        if self.consecutive_losses >= self.dead_threshold {
            self.dead = true;
        }
    }

    /// Windowed loss rate.
    pub fn loss_rate(&self) -> f64 {
        if self.dead {
            // A dead path is unusable regardless of its historical window.
            1.0
        } else {
            self.window.loss_rate()
        }
    }

    /// Loss estimate for *routing*: Laplace-smoothed so that a clean but
    /// finite window is not mistaken for a perfect path. Without the
    /// prior, a single lost probe on the direct path makes any
    /// zero-observed detour look better, and the detour's two extra
    /// access links then cost more than the noise saved — reactive
    /// routing must only divert around genuine pathologies (§3.1).
    pub fn loss_estimate(&self) -> f64 {
        if self.dead {
            return 1.0;
        }
        (self.window.losses() as f64 + 0.5) / (self.window.len() as f64 + 1.0)
    }

    /// Latency estimate, if any probe ever succeeded.
    pub fn latency_us(&self) -> Option<f64> {
        self.lat_us
    }

    /// Whether the fast-probe chain declared this path failed.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Instant of the last successful probe.
    pub fn last_success(&self) -> Option<SimTime> {
        self.last_success
    }

    /// Number of probes recorded in the window.
    pub fn samples(&self) -> usize {
        self.window.len()
    }

    /// Consecutive losses so far (drives the fast-probe chain).
    pub fn consecutive_losses(&self) -> u32 {
        self.consecutive_losses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_reports_zero() {
        let w = LossWindow::new(100);
        assert_eq!(w.loss_rate(), 0.0);
        assert!(w.is_empty());
    }

    #[test]
    fn window_tracks_rate() {
        let mut w = LossWindow::new(10);
        for i in 0..10 {
            w.push(i % 2 == 0);
        }
        assert_eq!(w.loss_rate(), 0.5);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn window_evicts_oldest() {
        let mut w = LossWindow::new(4);
        w.push(true);
        w.push(true);
        w.push(false);
        w.push(false);
        assert_eq!(w.loss_rate(), 0.5);
        // Two more successes evict the two initial losses.
        w.push(false);
        w.push(false);
        assert_eq!(w.loss_rate(), 0.0);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn ron_window_is_last_100() {
        let mut w = LossWindow::new(100);
        for _ in 0..100 {
            w.push(true);
        }
        for _ in 0..100 {
            w.push(false);
        }
        assert_eq!(w.loss_rate(), 0.0, "old outcomes must age out");
    }

    #[test]
    fn ewma_converges_toward_samples() {
        let mut p = PathStats::new(100, 0.1, 4);
        let t = SimTime::from_secs(1);
        p.record_success(t, SimDuration::from_millis(100));
        assert_eq!(p.latency_us(), Some(100_000.0));
        for _ in 0..200 {
            p.record_success(t, SimDuration::from_millis(20));
        }
        let lat = p.latency_us().unwrap();
        assert!((lat - 20_000.0).abs() < 100.0, "lat={lat}");
    }

    #[test]
    fn death_after_consecutive_losses_and_revival() {
        let mut p = PathStats::new(100, 0.1, 4);
        p.record_success(SimTime::from_secs(1), SimDuration::from_millis(10));
        for _ in 0..3 {
            p.record_loss();
        }
        assert!(!p.is_dead(), "3 losses must not kill with threshold 4");
        p.record_loss();
        assert!(p.is_dead());
        assert_eq!(p.loss_rate(), 1.0, "dead path is fully lossy");
        p.record_success(SimTime::from_secs(30), SimDuration::from_millis(10));
        assert!(!p.is_dead(), "a success revives the path");
        assert!(p.loss_rate() < 1.0);
    }

    #[test]
    fn loss_rate_reflects_window_when_alive() {
        let mut p = PathStats::new(10, 0.1, 100);
        for i in 0..10 {
            if i % 5 == 0 {
                p.record_loss();
            } else {
                p.record_success(SimTime::from_secs(i), SimDuration::from_millis(10));
            }
        }
        assert!((p.loss_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LossWindow::new(0);
    }
}
