//! The link-state table and route selection.
//!
//! Each node measures its *direct* paths with the prober and learns every
//! peer's direct-path metrics from the vectors piggybacked on probe
//! traffic. Routing considers the direct path and all two-hop paths
//! through a single intermediate (§3.1):
//!
//! * **min-loss**: minimise `1 - (1-p₁)(1-p₂)`, the composed loss of the
//!   two overlay hops, against the direct path's windowed loss rate;
//! * **min-latency**: minimise the sum of hop latency estimates while
//!   avoiding paths declared failed;
//! * **random**: a uniformly random intermediate — the mesh-routing
//!   building block, requiring no probe data at all.
//!
//! A small hysteresis keeps routes from flapping between statistically
//! indistinguishable alternatives (the RON implementation does the same).

use crate::stats::PathStats;
use crate::wire::MetricEntry;
use netsim::{HostId, Rng, SimDuration, SimTime};

/// Route selection policy (§3, Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Always the direct Internet path.
    Direct,
    /// A uniformly random single intermediate.
    Random,
    /// Probe-based loss minimisation.
    MinLoss,
    /// Probe-based latency minimisation (avoiding failed links).
    MinLat,
}

/// A routing decision: the overlay uses at most one intermediate node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Route {
    /// Send on the direct Internet path.
    Direct,
    /// Forward through this intermediate node.
    Via(HostId),
}

/// A peer's claimed metric toward some destination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteMetric {
    /// Claimed loss rate (0..1).
    pub loss: f64,
    /// Claimed one-way latency, microseconds.
    pub lat_us: f64,
    /// Claimed liveness.
    pub alive: bool,
}

impl RemoteMetric {
    fn from_entry(e: &MetricEntry) -> RemoteMetric {
        RemoteMetric {
            loss: e.loss_e4 as f64 / 10_000.0,
            lat_us: e.lat_us as f64,
            alive: e.alive,
        }
    }
}

/// A remote metric stamped with the time it was learned. Staleness is
/// per *entry*, not per vector: delta dissemination refreshes entries
/// individually, and an entry a silent peer last advertised long ago
/// must age out of route selection even if the peer still chatters
/// about other destinations.
#[derive(Debug, Clone, Copy)]
struct Stamped {
    at: SimTime,
    metric: RemoteMetric,
}

/// One peer's advertised entries, stored sparse: a vec sorted by
/// destination index with one slot per destination the peer has
/// actually *advertised*, looked up by binary search. Under a sparse
/// probe mesh a peer advertises O(k) destinations, so a node's full
/// table is O(n·k) instead of the dense layout's O(n²) — the dominant
/// per-node allocation at thousands of hosts.
#[derive(Debug, Clone, Default)]
struct PeerVector {
    entries: Vec<(u16, Stamped)>,
}

impl PeerVector {
    fn get(&self, dst: usize) -> Option<&Stamped> {
        self.entries
            .binary_search_by_key(&(dst as u16), |&(d, _)| d)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Inserts or overwrites the entry toward `dst` (last write wins,
    /// matching the dense layout's slot-assignment semantics).
    fn upsert(&mut self, dst: u16, s: Stamped) {
        match self.entries.binary_search_by_key(&dst, |&(d, _)| d) {
            Ok(i) => self.entries[i].1 = s,
            Err(i) => self.entries.insert(i, (dst, s)),
        }
    }
}

/// Everything one node knows about the mesh.
#[derive(Debug)]
pub struct LinkStateTable {
    me: HostId,
    n: usize,
    direct: Vec<PathStats>,
    vectors: Vec<Option<PeerVector>>,
    staleness: SimDuration,
    /// Absolute loss-rate advantage an indirect path must show.
    loss_hysteresis: f64,
    /// Relative latency advantage an indirect path must show.
    lat_hysteresis: f64,
    /// Cached [`Self::snapshot`] vector, rebuilt lazily after any
    /// direct-path mutation. Probes snapshot far more often than the
    /// prober records outcomes at scale, so the cache turns the per-probe
    /// O(n) allocate-and-summarise into a slice borrow.
    snap_cache: Vec<MetricEntry>,
    snap_dirty: bool,
}

impl LinkStateTable {
    /// Creates a table for a mesh of `n` nodes.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: HostId,
        n: usize,
        window: usize,
        ewma_alpha: f64,
        dead_threshold: u32,
        staleness: SimDuration,
        loss_hysteresis: f64,
        lat_hysteresis: f64,
    ) -> Self {
        LinkStateTable {
            me,
            n,
            direct: (0..n).map(|_| PathStats::new(window, ewma_alpha, dead_threshold)).collect(),
            vectors: vec![None; n],
            staleness,
            loss_hysteresis,
            lat_hysteresis,
            snap_cache: Vec::new(),
            snap_dirty: true,
        }
    }

    /// Mesh size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Approximate resident bytes of this table's state: the struct
    /// itself, the direct-path stats (including each loss window's lazy
    /// buffer), every stored peer vector, and the snapshot cache. The
    /// scaling harness reports this per host, so the sparse-vs-dense
    /// storage win is measurable instead of asserted.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut b = size_of::<Self>();
        b += self.direct.capacity() * size_of::<PathStats>();
        for s in &self.direct {
            b += s.heap_bytes();
        }
        b += self.vectors.capacity() * size_of::<Option<PeerVector>>();
        for v in self.vectors.iter().flatten() {
            b += v.entries.capacity() * size_of::<(u16, Stamped)>();
        }
        b += self.snap_cache.capacity() * size_of::<MetricEntry>();
        b
    }

    /// Mutable access to the direct-path stats toward `peer` (the prober
    /// records outcomes through this). Invalidates the snapshot cache:
    /// the advertised vector summarises exactly these stats.
    pub fn direct_mut(&mut self, peer: HostId) -> &mut PathStats {
        self.snap_dirty = true;
        &mut self.direct[peer.idx()]
    }

    /// Direct-path stats toward `peer`.
    pub fn direct(&self, peer: HostId) -> &PathStats {
        &self.direct[peer.idx()]
    }

    /// Ingests a peer's piggybacked metric vector (full-snapshot
    /// semantics: the peer's previous vector is replaced wholesale).
    pub fn on_metrics(&mut self, from: HostId, entries: &[MetricEntry], now: SimTime) {
        self.ingest_full(from, entries, now);
    }

    /// Ingests a *complete* advertisement from `from`: every previously
    /// known entry is discarded and the new ones are stamped `now`.
    pub fn ingest_full(&mut self, from: HostId, entries: &[MetricEntry], now: SimTime) {
        if from == self.me || from.idx() >= self.n {
            return;
        }
        let mut v = PeerVector { entries: Vec::with_capacity(entries.len()) };
        for e in entries {
            if e.peer.idx() < self.n {
                v.upsert(e.peer.0, Stamped { at: now, metric: RemoteMetric::from_entry(e) });
            }
        }
        self.vectors[from.idx()] = Some(v);
    }

    /// Ingests a *partial* advertisement from `from`: only the listed
    /// destinations are updated (stamped `now`); everything else keeps
    /// its previous value and timestamp, so unrefreshed entries age out
    /// of route selection on their own.
    pub fn ingest_delta(&mut self, from: HostId, entries: &[MetricEntry], now: SimTime) {
        if from == self.me || from.idx() >= self.n {
            return;
        }
        let v = self.vectors[from.idx()].get_or_insert_with(PeerVector::default);
        for e in entries {
            if e.peer.idx() < self.n {
                v.upsert(e.peer.0, Stamped { at: now, metric: RemoteMetric::from_entry(e) });
            }
        }
    }

    /// Snapshot of my direct metrics for piggybacking on probe packets.
    /// Served from a cache that is invalidated by [`Self::direct_mut`];
    /// callers that need an owned copy clone the slice.
    pub fn snapshot(&mut self) -> &[MetricEntry] {
        if self.snap_dirty {
            let me = self.me.idx();
            let direct = &self.direct;
            self.snap_cache.clear();
            self.snap_cache.extend((0..self.n).filter(|&j| j != me).map(|j| {
                let s = &direct[j];
                MetricEntry {
                    peer: HostId(j as u16),
                    // Advertise the smoothed routing estimate, not the raw
                    // window: peers compose it into two-hop predictions.
                    loss_e4: (s.loss_estimate() * 10_000.0).round().min(10_000.0) as u16,
                    lat_us: s.latency_us().unwrap_or(0.0).min(u32::MAX as f64) as u32,
                    alive: !s.is_dead() && s.samples() > 0,
                }
            }));
            self.snap_dirty = false;
        }
        &self.snap_cache
    }

    /// The freshest non-stale metric `from` has advertised toward `dst`,
    /// if any — exactly the view route selection composes over. Public
    /// so convergence tests can compare tables fed by different
    /// dissemination strategies.
    pub fn remote_metric(&self, from: HostId, dst: HostId, now: SimTime) -> Option<RemoteMetric> {
        if from.idx() >= self.n || dst.idx() >= self.n {
            return None;
        }
        self.remote(from, dst, now)
    }

    fn remote(&self, k: HostId, dst: HostId, now: SimTime) -> Option<RemoteMetric> {
        let v = self.vectors[k.idx()].as_ref()?;
        let e = *v.get(dst.idx())?;
        if now.since(e.at) > self.staleness {
            return None;
        }
        Some(e.metric)
    }

    /// Selects a route toward `dst` under `policy`. `rng` supplies the
    /// randomness for [`Policy::Random`].
    pub fn route(&self, dst: HostId, policy: Policy, now: SimTime, rng: &mut Rng) -> Route {
        debug_assert_ne!(dst, self.me);
        match policy {
            Policy::Direct => Route::Direct,
            Policy::Random => self.random_via(dst, rng),
            Policy::MinLoss => self.min_loss(dst, now),
            Policy::MinLat => self.min_lat(dst, now),
        }
    }

    /// Selects a route toward `dst` that is *distinct* from `exclude` —
    /// the second copy of a 2-redundant pair must travel "on each
    /// distinct paths" (§3.2). When the policy's best route collides
    /// with `exclude`, the best allowed alternative is taken, even if it
    /// is worse than the excluded one; with no information at all the
    /// fallback is a random intermediate.
    pub fn route_diverse(
        &self,
        dst: HostId,
        policy: Policy,
        now: SimTime,
        rng: &mut Rng,
        exclude: Route,
    ) -> Route {
        // One excluded route is the k = 2 case of full diversity; the
        // avoiding path consumes RNG draws identically, so historical
        // results are bit-preserved.
        self.route_avoiding(dst, policy, now, rng, &[exclude])
    }

    /// Selects a route toward `dst` distinct from *every* route in
    /// `avoid` — leg k of a k-redundant probe under full (all prior
    /// legs) diversity. With one entry this is exactly
    /// [`Self::route_diverse`]. Best effort: when the mesh offers no
    /// unused path, a random detour (possibly colliding) is taken, as in
    /// the 2-leg case.
    pub fn route_avoiding(
        &self,
        dst: HostId,
        policy: Policy,
        now: SimTime,
        rng: &mut Rng,
        avoid: &[Route],
    ) -> Route {
        debug_assert_ne!(dst, self.me);
        if avoid.is_empty() {
            return self.route(dst, policy, now, rng);
        }
        let candidate = match policy {
            Policy::Direct => Route::Direct,
            Policy::Random => self.random_avoiding(dst, rng, avoid),
            Policy::MinLoss => self.argmin_avoiding(dst, now, avoid, |mine, rm| {
                1.0 - (1.0 - mine.loss_estimate()) * (1.0 - rm.loss)
            }),
            Policy::MinLat => self.argmin_avoiding(dst, now, avoid, |mine, rm| {
                mine.latency_us().unwrap_or(f64::INFINITY) + rm.lat_us
            }),
        };
        if avoid.contains(&candidate) {
            // Direct policy with direct excluded, or a degenerate mesh:
            // force a random detour (any diversity beats none).
            self.random_avoiding(dst, rng, avoid)
        } else {
            candidate
        }
    }

    fn random_avoiding(&self, dst: HostId, rng: &mut Rng, avoid: &[Route]) -> Route {
        for _ in 0..8 {
            let r = self.random_via(dst, rng);
            if !avoid.contains(&r) {
                return r;
            }
        }
        // Tiny meshes may have no alternative.
        self.random_via(dst, rng)
    }

    /// Best route by `score` (lower is better) among direct and one-hop
    /// candidates, skipping everything in `avoid`. No hysteresis: when
    /// routes are excluded the question is "what is the best *other*
    /// path", not "is a detour worth the risk".
    fn argmin_avoiding<F>(&self, dst: HostId, now: SimTime, avoid: &[Route], score: F) -> Route
    where
        F: Fn(&PathStats, &RemoteMetric) -> f64,
    {
        let mut best = None;
        let mut best_score = f64::INFINITY;
        if !avoid.contains(&Route::Direct) {
            let d = &self.direct[dst.idx()];
            if !d.is_dead() {
                // Score direct as a one-hop with a perfect second hop.
                let s = score(d, &RemoteMetric { loss: 0.0, lat_us: 0.0, alive: true });
                if s < best_score {
                    best_score = s;
                    best = Some(Route::Direct);
                }
            }
        }
        for k in 0..self.n {
            if k == self.me.idx() || k == dst.idx() {
                continue;
            }
            let kh = HostId(k as u16);
            if avoid.contains(&Route::Via(kh)) {
                continue;
            }
            let mine = &self.direct[k];
            if mine.is_dead() || mine.samples() == 0 {
                continue;
            }
            let Some(rm) = self.remote(kh, dst, now) else { continue };
            if !rm.alive {
                continue;
            }
            let s = score(mine, &rm);
            if s < best_score {
                best_score = s;
                best = Some(Route::Via(kh));
            }
        }
        best.unwrap_or(avoid[0]) // caller resolves the collision
    }

    fn random_via(&self, dst: HostId, rng: &mut Rng) -> Route {
        if self.n <= 2 {
            return Route::Direct;
        }
        // Uniform over nodes other than me and dst.
        let mut k = rng.below((self.n - 2) as u64) as usize;
        let (a, b) = if self.me.idx() < dst.idx() {
            (self.me.idx(), dst.idx())
        } else {
            (dst.idx(), self.me.idx())
        };
        if k >= a {
            k += 1;
        }
        if k >= b {
            k += 1;
        }
        Route::Via(HostId(k as u16))
    }

    fn min_loss(&self, dst: HostId, now: SimTime) -> Route {
        let direct_loss = self.direct[dst.idx()].loss_estimate();
        let mut best = Route::Direct;
        // Hysteresis: an indirect path must beat direct by a margin.
        let mut best_score = (direct_loss - self.loss_hysteresis).max(0.0);
        for k in 0..self.n {
            if k == self.me.idx() || k == dst.idx() {
                continue;
            }
            let kh = HostId(k as u16);
            let mine = &self.direct[k];
            if mine.is_dead() || mine.samples() == 0 {
                continue;
            }
            let Some(rm) = self.remote(kh, dst, now) else { continue };
            if !rm.alive {
                continue;
            }
            let p = 1.0 - (1.0 - mine.loss_estimate()) * (1.0 - rm.loss);
            if p < best_score {
                best_score = p;
                best = Route::Via(kh);
            }
        }
        best
    }

    fn min_lat(&self, dst: HostId, now: SimTime) -> Route {
        let d = &self.direct[dst.idx()];
        let direct_lat = if d.is_dead() { f64::INFINITY } else { d.latency_us().unwrap_or(f64::INFINITY) };
        let mut best = Route::Direct;
        let mut best_score = direct_lat * (1.0 - self.lat_hysteresis);
        for k in 0..self.n {
            if k == self.me.idx() || k == dst.idx() {
                continue;
            }
            let kh = HostId(k as u16);
            let mine = &self.direct[k];
            if mine.is_dead() {
                continue;
            }
            let Some(lat1) = mine.latency_us() else { continue };
            let Some(rm) = self.remote(kh, dst, now) else { continue };
            if !rm.alive || rm.lat_us <= 0.0 {
                continue;
            }
            let lat = lat1 + rm.lat_us;
            if lat < best_score {
                best_score = lat;
                best = Route::Via(kh);
            }
        }
        // An unusable direct path with no alternative still routes direct
        // (there is nothing better to try).
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> LinkStateTable {
        LinkStateTable::new(
            HostId(0),
            n,
            100,
            0.1,
            5,
            SimDuration::from_secs(90),
            0.01,
            0.05,
        )
    }

    fn feed_direct(t: &mut LinkStateTable, peer: u16, losses: usize, successes: usize, lat_ms: u64) {
        for _ in 0..losses {
            t.direct_mut(HostId(peer)).record_loss();
        }
        for _ in 0..successes {
            t.direct_mut(HostId(peer))
                .record_success(SimTime::from_secs(1), SimDuration::from_millis(lat_ms));
        }
    }

    fn vector_from(t: &mut LinkStateTable, from: u16, toward: u16, loss: f64, lat_ms: u32, at: SimTime) {
        t.on_metrics(
            HostId(from),
            &[MetricEntry {
                peer: HostId(toward),
                loss_e4: (loss * 10_000.0) as u16,
                lat_us: lat_ms * 1000,
                alive: true,
            }],
            at,
        );
    }

    #[test]
    fn fresh_table_routes_direct() {
        let t = table(5);
        let mut rng = Rng::new(1);
        let now = SimTime::from_secs(10);
        assert_eq!(t.route(HostId(3), Policy::MinLoss, now, &mut rng), Route::Direct);
        assert_eq!(t.route(HostId(3), Policy::MinLat, now, &mut rng), Route::Direct);
        assert_eq!(t.route(HostId(3), Policy::Direct, now, &mut rng), Route::Direct);
    }

    #[test]
    fn min_loss_takes_clean_detour() {
        let mut t = table(4);
        let now = SimTime::from_secs(100);
        // Direct 0→3 is 30% lossy; 0→1 clean and 1 reports 1→3 clean.
        feed_direct(&mut t, 3, 30, 70, 50);
        feed_direct(&mut t, 1, 0, 100, 10);
        vector_from(&mut t, 1, 3, 0.0, 10, now);
        let mut rng = Rng::new(2);
        assert_eq!(t.route(HostId(3), Policy::MinLoss, now, &mut rng), Route::Via(HostId(1)));
    }

    #[test]
    fn min_loss_stays_direct_when_detour_is_worse() {
        let mut t = table(4);
        let now = SimTime::from_secs(100);
        feed_direct(&mut t, 3, 2, 98, 50); // 2% direct
        feed_direct(&mut t, 1, 10, 90, 10); // 10% to the candidate hop
        vector_from(&mut t, 1, 3, 0.0, 10, now);
        let mut rng = Rng::new(3);
        assert_eq!(t.route(HostId(3), Policy::MinLoss, now, &mut rng), Route::Direct);
    }

    #[test]
    fn hysteresis_keeps_marginal_detours_out() {
        let mut t = table(4);
        let now = SimTime::from_secs(100);
        // Direct 1% lossy; detour 0.8% — inside the 0.5% hysteresis band.
        feed_direct(&mut t, 3, 1, 99, 50);
        feed_direct(&mut t, 1, 0, 100, 10);
        vector_from(&mut t, 1, 3, 0.008, 10, now);
        let mut rng = Rng::new(4);
        assert_eq!(t.route(HostId(3), Policy::MinLoss, now, &mut rng), Route::Direct);
    }

    #[test]
    fn stale_vectors_are_ignored() {
        let mut t = table(4);
        feed_direct(&mut t, 3, 30, 70, 50);
        feed_direct(&mut t, 1, 0, 100, 10);
        vector_from(&mut t, 1, 3, 0.0, 10, SimTime::from_secs(100));
        let much_later = SimTime::from_secs(100 + 600);
        let mut rng = Rng::new(5);
        assert_eq!(
            t.route(HostId(3), Policy::MinLoss, much_later, &mut rng),
            Route::Direct,
            "a ten-minute-old vector must not be trusted"
        );
    }

    #[test]
    fn min_lat_picks_faster_two_hop() {
        let mut t = table(4);
        let now = SimTime::from_secs(50);
        feed_direct(&mut t, 3, 0, 50, 100); // direct: 100 ms
        feed_direct(&mut t, 1, 0, 50, 20); // to hop: 20 ms
        vector_from(&mut t, 1, 3, 0.0, 30, now); // hop to dst: 30 ms
        let mut rng = Rng::new(6);
        assert_eq!(t.route(HostId(3), Policy::MinLat, now, &mut rng), Route::Via(HostId(1)));
    }

    #[test]
    fn min_lat_avoids_dead_direct() {
        let mut t = table(4);
        let now = SimTime::from_secs(50);
        feed_direct(&mut t, 3, 0, 10, 10); // fast direct...
        for _ in 0..5 {
            t.direct_mut(HostId(3)).record_loss(); // ...then it dies
        }
        feed_direct(&mut t, 1, 0, 50, 40);
        vector_from(&mut t, 1, 3, 0.0, 40, now);
        let mut rng = Rng::new(7);
        assert_eq!(
            t.route(HostId(3), Policy::MinLat, now, &mut rng),
            Route::Via(HostId(1)),
            "lat policy must avoid completely failed links"
        );
    }

    #[test]
    fn random_never_picks_endpoints_and_is_uniform() {
        let t = table(6);
        let mut rng = Rng::new(8);
        let mut counts = [0u32; 6];
        for _ in 0..8_000 {
            match t.route(HostId(3), Policy::Random, SimTime::ZERO, &mut rng) {
                Route::Via(k) => counts[k.idx()] += 1,
                Route::Direct => panic!("random with n>2 must pick an intermediate"),
            }
        }
        assert_eq!(counts[0], 0, "never via self");
        assert_eq!(counts[3], 0, "never via destination");
        for k in [1usize, 2, 4, 5] {
            assert!(
                (1_600..2_400).contains(&counts[k]),
                "intermediate {k} count {} not uniform",
                counts[k]
            );
        }
    }

    #[test]
    fn random_on_two_nodes_degrades_to_direct() {
        let t = table(2);
        let mut rng = Rng::new(9);
        assert_eq!(t.route(HostId(1), Policy::Random, SimTime::ZERO, &mut rng), Route::Direct);
    }

    #[test]
    fn dead_intermediate_excluded_from_min_loss() {
        let mut t = table(4);
        let now = SimTime::from_secs(100);
        feed_direct(&mut t, 3, 30, 70, 50);
        feed_direct(&mut t, 1, 0, 100, 10);
        vector_from(&mut t, 1, 3, 0.0, 10, now);
        for _ in 0..5 {
            t.direct_mut(HostId(1)).record_loss(); // hop 1 dies
        }
        let mut rng = Rng::new(10);
        assert_eq!(t.route(HostId(3), Policy::MinLoss, now, &mut rng), Route::Direct);
    }

    #[test]
    fn delta_ingest_merges_and_keeps_old_entries() {
        let mut t = table(5);
        let t0 = SimTime::from_secs(100);
        let t1 = SimTime::from_secs(110);
        vector_from(&mut t, 1, 3, 0.1, 10, t0);
        // A later delta about a *different* destination must not erase
        // the entry toward 3 (full-snapshot ingest would).
        t.ingest_delta(
            HostId(1),
            &[MetricEntry { peer: HostId(4), loss_e4: 500, lat_us: 7_000, alive: true }],
            t1,
        );
        let toward3 = t.remote_metric(HostId(1), HostId(3), t1).expect("kept");
        assert!((toward3.loss - 0.1).abs() < 1e-9);
        let toward4 = t.remote_metric(HostId(1), HostId(4), t1).expect("merged");
        assert!((toward4.loss - 0.05).abs() < 1e-9);
    }

    #[test]
    fn unrefreshed_delta_entries_age_out_individually() {
        let mut t = table(5);
        let t0 = SimTime::from_secs(100);
        t.ingest_delta(
            HostId(1),
            &[MetricEntry { peer: HostId(3), loss_e4: 0, lat_us: 10_000, alive: true }],
            t0,
        );
        // The peer keeps refreshing its entry toward 4 but goes silent
        // about 3; past the staleness horizon only 4 survives.
        let late = SimTime::from_secs(100 + 200);
        t.ingest_delta(
            HostId(1),
            &[MetricEntry { peer: HostId(4), loss_e4: 0, lat_us: 10_000, alive: true }],
            late,
        );
        assert!(t.remote_metric(HostId(1), HostId(3), late).is_none(), "stale entry kept");
        assert!(t.remote_metric(HostId(1), HostId(4), late).is_some());
    }

    #[test]
    fn silenced_peer_stops_attracting_via_routes() {
        let mut t = table(4);
        let t0 = SimTime::from_secs(100);
        // Direct 0→3 is 30% lossy; hop 1 is clean and claims a clean
        // path onward, so MinLoss detours via 1.
        feed_direct(&mut t, 3, 30, 70, 50);
        feed_direct(&mut t, 1, 0, 100, 10);
        t.ingest_delta(
            HostId(1),
            &[MetricEntry { peer: HostId(3), loss_e4: 0, lat_us: 10_000, alive: true }],
            t0,
        );
        let mut rng = Rng::new(11);
        assert_eq!(t.route(HostId(3), Policy::MinLoss, t0, &mut rng), Route::Via(HostId(1)));
        // Node 1 then falls silent about destination 3 (its deltas only
        // cover 2). Past the staleness horizon the detour must vanish
        // even though node 1 itself is still heard from.
        let late = SimTime::from_secs(100 + 200);
        t.ingest_delta(
            HostId(1),
            &[MetricEntry { peer: HostId(2), loss_e4: 0, lat_us: 10_000, alive: true }],
            late,
        );
        assert_eq!(
            t.route(HostId(3), Policy::MinLoss, late, &mut rng),
            Route::Direct,
            "a silenced peer must stop attracting Via routes"
        );
    }

    #[test]
    fn snapshot_cache_tracks_direct_mutations() {
        let mut t = table(3);
        feed_direct(&mut t, 1, 0, 10, 25);
        let first = t.snapshot().to_vec();
        assert_eq!(first, t.snapshot().to_vec(), "cached snapshot must be stable");
        feed_direct(&mut t, 1, 5, 0, 25);
        let second = t.snapshot().to_vec();
        assert_ne!(first, second, "direct_mut must invalidate the cache");
    }

    #[test]
    fn snapshot_reflects_direct_state() {
        let mut t = table(3);
        feed_direct(&mut t, 1, 1, 9, 25);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        let e1 = snap.iter().find(|e| e.peer == HostId(1)).unwrap();
        // The advertised metric is the Laplace-smoothed routing estimate:
        // (1 + 0.5) / (10 + 1) ≈ 13.64%.
        assert_eq!(e1.loss_e4, 1364);
        assert!(e1.alive);
        assert!(e1.lat_us > 0);
        let e2 = snap.iter().find(|e| e.peer == HostId(2)).unwrap();
        assert!(!e2.alive, "no samples yet → not claimed alive");
    }
}

#[cfg(test)]
mod diverse_tests {
    use super::*;

    fn table(n: usize) -> LinkStateTable {
        LinkStateTable::new(
            HostId(0),
            n,
            100,
            0.1,
            5,
            SimDuration::from_secs(90),
            0.01,
            0.05,
        )
    }

    fn feed_direct(t: &mut LinkStateTable, peer: u16, losses: usize, successes: usize, lat_ms: u64) {
        for _ in 0..losses {
            t.direct_mut(HostId(peer)).record_loss();
        }
        for _ in 0..successes {
            t.direct_mut(HostId(peer))
                .record_success(SimTime::from_secs(1), SimDuration::from_millis(lat_ms));
        }
    }

    fn vector_from(t: &mut LinkStateTable, from: u16, toward: u16, loss: f64, lat_ms: u32, at: SimTime) {
        t.on_metrics(
            HostId(from),
            &[MetricEntry {
                peer: HostId(toward),
                loss_e4: (loss * 10_000.0) as u16,
                lat_us: lat_ms * 1000,
                alive: true,
            }],
            at,
        );
    }

    #[test]
    fn excluding_direct_forces_an_intermediate() {
        let mut t = table(5);
        let now = SimTime::from_secs(50);
        // A perfectly clean direct path — normally unbeatable.
        feed_direct(&mut t, 4, 0, 100, 20);
        feed_direct(&mut t, 1, 0, 100, 10);
        feed_direct(&mut t, 2, 5, 95, 10);
        vector_from(&mut t, 1, 4, 0.0, 10, now);
        vector_from(&mut t, 2, 4, 0.0, 10, now);
        let mut rng = Rng::new(1);
        let r = t.route_diverse(HostId(4), Policy::MinLoss, now, &mut rng, Route::Direct);
        // Must pick the cleanest intermediate, never direct.
        assert_eq!(r, Route::Via(HostId(1)));
    }

    #[test]
    fn excluding_a_via_allows_direct() {
        let mut t = table(4);
        let now = SimTime::from_secs(50);
        feed_direct(&mut t, 3, 0, 100, 20);
        feed_direct(&mut t, 1, 0, 100, 10);
        vector_from(&mut t, 1, 3, 0.0, 10, now);
        let mut rng = Rng::new(2);
        let r = t.route_diverse(HostId(3), Policy::MinLoss, now, &mut rng, Route::Via(HostId(1)));
        assert_eq!(r, Route::Direct, "clean direct beats the remaining detours");
    }

    #[test]
    fn random_diverse_avoids_the_excluded_intermediate() {
        let t = table(5);
        let mut rng = Rng::new(3);
        for _ in 0..500 {
            let r = t.route_diverse(HostId(4), Policy::Random, SimTime::ZERO, &mut rng, Route::Via(HostId(1)));
            assert_ne!(r, Route::Via(HostId(1)), "excluded intermediate reused");
            assert_ne!(r, Route::Via(HostId(0)), "via self");
            assert_ne!(r, Route::Via(HostId(4)), "via destination");
        }
    }

    #[test]
    fn no_information_falls_back_to_random_detour() {
        let t = table(6);
        let mut rng = Rng::new(4);
        let r = t.route_diverse(HostId(3), Policy::MinLoss, SimTime::from_secs(9), &mut rng, Route::Direct);
        assert!(matches!(r, Route::Via(_)), "diversity demands *some* other path: {r:?}");
    }

    #[test]
    fn min_lat_diverse_picks_fastest_alternative() {
        let mut t = table(5);
        let now = SimTime::from_secs(50);
        feed_direct(&mut t, 4, 0, 100, 10); // direct: fast, but excluded
        feed_direct(&mut t, 1, 0, 100, 30);
        feed_direct(&mut t, 2, 0, 100, 15);
        vector_from(&mut t, 1, 4, 0.0, 30, now);
        vector_from(&mut t, 2, 4, 0.0, 20, now);
        let mut rng = Rng::new(5);
        let r = t.route_diverse(HostId(4), Policy::MinLat, now, &mut rng, Route::Direct);
        assert_eq!(r, Route::Via(HostId(2)), "15+20 beats 30+30");
    }

    #[test]
    fn dead_paths_excluded_from_diverse_argmin() {
        let mut t = table(4);
        let now = SimTime::from_secs(50);
        feed_direct(&mut t, 3, 0, 100, 10);
        feed_direct(&mut t, 1, 0, 100, 5);
        vector_from(&mut t, 1, 3, 0.0, 5, now);
        for _ in 0..5 {
            t.direct_mut(HostId(1)).record_loss(); // hop 1 dies
        }
        feed_direct(&mut t, 2, 0, 100, 40);
        vector_from(&mut t, 2, 3, 0.0, 40, now);
        let mut rng = Rng::new(6);
        let r = t.route_diverse(HostId(3), Policy::MinLoss, now, &mut rng, Route::Direct);
        assert_eq!(r, Route::Via(HostId(2)), "dead hop 1 must be skipped");
    }

    #[test]
    fn avoiding_empty_is_plain_routing() {
        let mut t = table(5);
        let now = SimTime::from_secs(50);
        feed_direct(&mut t, 4, 0, 100, 10);
        feed_direct(&mut t, 1, 0, 100, 30);
        vector_from(&mut t, 1, 4, 0.0, 30, now);
        let mut rng_a = Rng::new(7);
        let mut rng_b = Rng::new(7);
        let plain = t.route(HostId(4), Policy::MinLoss, now, &mut rng_a);
        let avoiding = t.route_avoiding(HostId(4), Policy::MinLoss, now, &mut rng_b, &[]);
        assert_eq!(plain, avoiding);
    }

    #[test]
    fn all_prior_legs_stay_disjoint_in_a_rich_mesh() {
        // 6-node mesh toward host 5: direct plus intermediates 1..=4 all
        // usable, ranked by loss. Successive legs of a 4-redundant probe
        // under full diversity must each take a route none of the prior
        // legs used — in particular legs 3 and 4, which `route_diverse`
        // (first-leg-only exclusion) cannot guarantee.
        let mut t = table(6);
        let now = SimTime::from_secs(50);
        feed_direct(&mut t, 5, 0, 100, 10);
        feed_direct(&mut t, 1, 1, 99, 10);
        feed_direct(&mut t, 2, 2, 98, 10);
        feed_direct(&mut t, 3, 3, 97, 10);
        feed_direct(&mut t, 4, 4, 96, 10);
        for k in 1..=4 {
            vector_from(&mut t, k, 5, 0.0, 10, now);
        }
        let mut rng = Rng::new(8);
        let mut used = vec![t.route(HostId(5), Policy::MinLoss, now, &mut rng)];
        for leg in 2..=4 {
            let r = t.route_avoiding(HostId(5), Policy::MinLoss, now, &mut rng, &used);
            assert!(
                !used.contains(&r),
                "leg {leg} reused a prior route {r:?} (used: {used:?})"
            );
            used.push(r);
        }
        // Deterministic ranking: direct, then intermediates in loss order.
        assert_eq!(
            used,
            vec![
                Route::Direct,
                Route::Via(HostId(1)),
                Route::Via(HostId(2)),
                Route::Via(HostId(3)),
            ]
        );
    }

    #[test]
    fn exhausted_mesh_falls_back_to_a_detour() {
        // 3-node mesh: only two distinct routes to host 2 exist. A third
        // leg cannot be disjoint; it must still return *a* route.
        let mut t = table(3);
        let now = SimTime::from_secs(50);
        feed_direct(&mut t, 2, 0, 100, 10);
        feed_direct(&mut t, 1, 0, 100, 10);
        vector_from(&mut t, 1, 2, 0.0, 10, now);
        let mut rng = Rng::new(9);
        let r = t.route_avoiding(
            HostId(2),
            Policy::MinLoss,
            now,
            &mut rng,
            &[Route::Direct, Route::Via(HostId(1))],
        );
        assert_eq!(r, Route::Via(HostId(1)), "only detour in a 3-node mesh");
    }
}
