//! The assembled overlay node: prober + link-state table + forwarder.
//!
//! [`OverlayNode`] is a sans-io state machine. Its inputs are timer
//! expiries ([`OverlayNode::on_timer`]) and received packets
//! ([`OverlayNode::on_packet`]); its outputs are [`Transmit`] requests
//! (packets to put on the wire toward a next hop) and [`Delivered`]
//! values (packets addressed to the local application layer). Route
//! queries ([`OverlayNode::route`]) never perform I/O.
//!
//! The same state machine is driven by the discrete-event experiment
//! runner (`mpath-core`) and by the tokio UDP driver (`mpath-live`).

use crate::dissem::{Disseminator, DisseminationMode};
use crate::prober::{Prober, ProberConfig};
use crate::table::{LinkStateTable, Policy, Route};
use crate::wire::{MeasureKind, Packet, RouteTag};
use netsim::{HostId, Rng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Node configuration: probing plus routing-metric parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NodeConfig {
    /// Prober timing.
    pub prober: ProberConfig,
    /// Loss window size (the paper's "last 100 probes").
    pub window: usize,
    /// EWMA weight for latency samples.
    pub ewma_alpha: f64,
    /// How long a peer's metric vector stays trustworthy.
    pub staleness: SimDuration,
    /// Absolute loss-rate advantage an indirect path must show before
    /// loss routing diverts (route-flap damping).
    pub loss_hysteresis: f64,
    /// Relative latency advantage an indirect path must show before
    /// latency routing diverts.
    pub lat_hysteresis: f64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            prober: ProberConfig::default(),
            window: 100,
            ewma_alpha: 0.1,
            staleness: SimDuration::from_secs(90),
            loss_hysteresis: 0.05,
            lat_hysteresis: 0.10,
        }
    }
}

/// A packet the node wants transmitted to a directly reachable peer.
#[derive(Debug, Clone, PartialEq)]
pub struct Transmit {
    /// Next wire hop (always a direct underlay transmission).
    pub to: HostId,
    /// The packet to send.
    pub packet: Packet,
}

/// A packet addressed to this node's application layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Delivered {
    /// A measurement leg arrived.
    Measure {
        /// Probe pair identifier.
        id: u64,
        /// Method registry index.
        method: u8,
        /// Leg index (0/1).
        leg: u8,
        /// Path source.
        origin: HostId,
        /// Route kind the leg used.
        route: RouteTag,
        /// One-way, request, or echo.
        kind: MeasureKind,
        /// Sender's local clock at transmission.
        sent_local_us: i64,
    },
    /// Application data arrived.
    Data {
        /// Source node.
        origin: HostId,
        /// Stream id.
        stream: u32,
        /// Sequence number.
        seq: u32,
        /// Payload length (payload itself stays in the packet).
        len: usize,
    },
}

/// A RON-style overlay node.
pub struct OverlayNode {
    me: HostId,
    cfg: NodeConfig,
    table: LinkStateTable,
    prober: Prober,
    dissem: Disseminator,
    rng: Rng,
    forwarded: u64,
}

impl OverlayNode {
    /// Creates a node for a mesh of `n` nodes with the default
    /// full-snapshot dissemination. `seed` controls all node randomness
    /// (probe ids, jitter, random intermediates); `start` is the instant
    /// probing begins.
    pub fn new(me: HostId, n: usize, cfg: NodeConfig, seed: u64, start: SimTime) -> Self {
        Self::new_with_dissemination(me, n, cfg, seed, start, DisseminationMode::FullSnapshot)
    }

    /// Creates a node running the given dissemination strategy. The
    /// disseminator gets its own derived RNG stream, so the default mode
    /// consumes exactly the draws the pre-dissemination node did.
    pub fn new_with_dissemination(
        me: HostId,
        n: usize,
        cfg: NodeConfig,
        seed: u64,
        start: SimTime,
        mode: DisseminationMode,
    ) -> Self {
        let root = Rng::new(seed);
        let table = LinkStateTable::new(
            me,
            n,
            cfg.window,
            cfg.ewma_alpha,
            1 + cfg.prober.fast_count,
            cfg.staleness,
            cfg.loss_hysteresis,
            cfg.lat_hysteresis,
        );
        let prober = Prober::new(me, n, cfg.prober, root.derive(1), start);
        let dissem = Disseminator::new(mode, me, n, root.derive(3), start);
        OverlayNode { me, cfg, table, prober, dissem, rng: root.derive(2), forwarded: 0 }
    }

    /// This node's id.
    pub fn id(&self) -> HostId {
        self.me
    }

    /// The node's configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.cfg
    }

    /// Read access to the link-state table (diagnostics, tests).
    pub fn table(&self) -> &LinkStateTable {
        &self.table
    }

    /// The node's dissemination strategy.
    pub fn dissemination(&self) -> DisseminationMode {
        self.dissem.mode()
    }

    /// Earliest instant the node needs a timer callback (prober probes
    /// and gossip rounds share the node timer).
    pub fn poll_at(&self) -> Option<SimTime> {
        match (self.prober.poll_at(), self.dissem.poll_at()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Runs timer work at `now`. `local_now_us` is the local wall clock
    /// (skewed in simulation; real time in live deployments) stamped into
    /// outgoing probes.
    pub fn on_timer(&mut self, now: SimTime, local_now_us: i64, out: &mut Vec<Transmit>) {
        let mut sends = Vec::new();
        self.prober.on_timer(now, &mut self.table, &mut sends);
        for s in sends {
            let (metrics, lsa) = self.dissem.on_probe_send(s.peer, s.id, &mut self.table);
            out.push(Transmit {
                to: s.peer,
                packet: Packet::ProbeReq {
                    id: s.id,
                    from: self.me,
                    sent_local_us: local_now_us,
                    metrics,
                },
            });
            if let Some(packet) = lsa {
                out.push(Transmit { to: s.peer, packet });
            }
        }
        let mut gossip = Vec::new();
        self.dissem.on_tick(now, &mut self.table, &mut gossip);
        for (to, packet) in gossip {
            out.push(Transmit { to, packet });
        }
    }

    /// Handles a packet arriving from the network at `now`.
    pub fn on_packet(
        &mut self,
        now: SimTime,
        local_now_us: i64,
        packet: Packet,
        out: &mut Vec<Transmit>,
    ) -> Option<Delivered> {
        match packet {
            Packet::ProbeReq { id, from, metrics, .. } => {
                self.dissem.on_probe_metrics(from, &metrics, now, &mut self.table);
                let (metrics, lsa) = self.dissem.on_probe_reply(from, &mut self.table);
                out.push(Transmit {
                    to: from,
                    packet: Packet::ProbeResp {
                        id,
                        from: self.me,
                        resp_local_us: local_now_us,
                        metrics,
                    },
                });
                if let Some(packet) = lsa {
                    out.push(Transmit { to: from, packet });
                }
                None
            }
            Packet::ProbeResp { id, from, metrics, .. } => {
                self.dissem.on_probe_metrics(from, &metrics, now, &mut self.table);
                if self.prober.on_response(id, from, now, &mut self.table).is_some() {
                    // A valid response acknowledges the LSA that rode
                    // along with the probe (delta mode).
                    self.dissem.on_ack(id, from);
                }
                None
            }
            Packet::Lsa { origin, seq, full, entries } => {
                self.dissem.on_lsa(origin, seq, full, &entries, now, &mut self.table);
                None
            }
            Packet::Forward { target, inner } => {
                if target == self.me {
                    // The forwarding hop was the last one; unwrap locally.
                    self.on_packet(now, local_now_us, *inner, out)
                } else {
                    // One-intermediate overlay forwarding: relay the inner
                    // packet toward its final target.
                    self.forwarded += 1;
                    out.push(Transmit { to: target, packet: *inner });
                    None
                }
            }
            Packet::Measure { id, method, leg, origin, target, route, kind, sent_local_us } => {
                if target == self.me {
                    Some(Delivered::Measure { id, method, leg, origin, route, kind, sent_local_us })
                } else {
                    // Mis-delivered measurement: relay it (defensive; the
                    // runner normally wraps indirection in Forward).
                    self.forwarded += 1;
                    out.push(Transmit {
                        to: target,
                        packet: Packet::Measure {
                            id,
                            method,
                            leg,
                            origin,
                            target,
                            route,
                            kind,
                            sent_local_us,
                        },
                    });
                    None
                }
            }
            Packet::Data { origin, target, stream, seq, payload } => {
                if target == self.me {
                    Some(Delivered::Data { origin, stream, seq, len: payload.len() })
                } else {
                    self.forwarded += 1;
                    out.push(Transmit {
                        to: target,
                        packet: Packet::Data { origin, target, stream, seq, payload },
                    });
                    None
                }
            }
        }
    }

    /// Selects a route to `dst` under `policy`.
    pub fn route(&mut self, dst: HostId, policy: Policy, now: SimTime) -> Route {
        self.table.route(dst, policy, now, &mut self.rng)
    }

    /// Selects a route to `dst` distinct from `exclude` (the second copy
    /// of a 2-redundant pair, §3.2).
    pub fn route_diverse(
        &mut self,
        dst: HostId,
        policy: Policy,
        now: SimTime,
        exclude: Route,
    ) -> Route {
        self.table.route_diverse(dst, policy, now, &mut self.rng, exclude)
    }

    /// Selects a route to `dst` distinct from every route in `avoid`
    /// (leg k of a k-redundant probe under full prior-leg diversity).
    pub fn route_avoiding(
        &mut self,
        dst: HostId,
        policy: Policy,
        now: SimTime,
        avoid: &[Route],
    ) -> Route {
        self.table.route_avoiding(dst, policy, now, &mut self.rng, avoid)
    }

    /// Wraps `packet` for the chosen route: direct packets go straight to
    /// the destination, indirect ones are encapsulated for the
    /// intermediate hop.
    pub fn wrap(&self, route: Route, dst: HostId, packet: Packet) -> Transmit {
        match route {
            Route::Direct => Transmit { to: dst, packet },
            Route::Via(k) => Transmit {
                to: k,
                packet: Packet::Forward { target: dst, inner: Box::new(packet) },
            },
        }
    }

    /// (probes sent, probes lost, packets forwarded for others).
    pub fn counters(&self) -> (u64, u64, u64) {
        let (s, l) = self.prober.counters();
        (s, l, self.forwarded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn node(me: u16, n: usize) -> OverlayNode {
        OverlayNode::new(HostId(me), n, NodeConfig::default(), 42 + me as u64, SimTime::ZERO)
    }

    #[test]
    fn probe_req_gets_probe_resp_with_metrics() {
        let mut a = node(0, 3);
        let mut out = Vec::new();
        let req = Packet::ProbeReq {
            id: 7,
            from: HostId(1),
            sent_local_us: 123,
            metrics: vec![],
        };
        let delivered = a.on_packet(SimTime::from_secs(1), 1_000_000, req, &mut out);
        assert!(delivered.is_none());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, HostId(1));
        match &out[0].packet {
            Packet::ProbeResp { id, from, metrics, .. } => {
                assert_eq!(*id, 7);
                assert_eq!(*from, HostId(0));
                // Nothing sampled yet: the piggyback drops the
                // uninformative never-probed entries entirely.
                assert!(metrics.is_empty(), "no sampled paths → empty piggyback");
            }
            p => panic!("expected ProbeResp, got {p:?}"),
        }
    }

    #[test]
    fn forward_relays_inner_packet() {
        let mut k = node(1, 3);
        let mut out = Vec::new();
        let inner = Packet::Measure {
            id: 9,
            method: 0,
            leg: 0,
            origin: HostId(0),
            target: HostId(2),
            route: RouteTag::Direct,
            kind: MeasureKind::OneWay,
            sent_local_us: 5,
        };
        let fwd = Packet::Forward { target: HostId(2), inner: Box::new(inner.clone()) };
        let delivered = k.on_packet(SimTime::from_secs(1), 0, fwd, &mut out);
        assert!(delivered.is_none());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, HostId(2));
        assert_eq!(out[0].packet, inner);
        assert_eq!(k.counters().2, 1, "forward counter");
    }

    #[test]
    fn measure_for_me_is_delivered() {
        let mut d = node(2, 3);
        let mut out = Vec::new();
        let m = Packet::Measure {
            id: 11,
            method: 3,
            leg: 1,
            origin: HostId(0),
            target: HostId(2),
            route: RouteTag::Direct,
            kind: MeasureKind::OneWay,
            sent_local_us: 77,
        };
        match d.on_packet(SimTime::from_secs(2), 0, m, &mut out) {
            Some(Delivered::Measure { id, method, leg, origin, route, kind, sent_local_us }) => {
                assert_eq!(
                    (id, method, leg, origin, route, kind, sent_local_us),
                    (11, 3, 1, HostId(0), RouteTag::Direct, MeasureKind::OneWay, 77)
                );
            }
            other => panic!("expected Measure delivery, got {other:?}"),
        }
        assert!(out.is_empty());
    }

    #[test]
    fn forward_addressed_to_me_unwraps_locally() {
        let mut d = node(2, 3);
        let mut out = Vec::new();
        let inner = Packet::Data {
            origin: HostId(0),
            target: HostId(2),
            stream: 1,
            seq: 4,
            payload: Bytes::from_static(b"hi"),
        };
        let fwd = Packet::Forward { target: HostId(2), inner: Box::new(inner) };
        match d.on_packet(SimTime::from_secs(1), 0, fwd, &mut out) {
            Some(Delivered::Data { origin, stream, seq, len }) => {
                assert_eq!((origin, stream, seq, len), (HostId(0), 1, 4, 2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn timer_emits_probe_requests_with_piggyback() {
        let mut a = node(0, 4);
        let mut out = Vec::new();
        // Drive past the first interval; every peer gets probed at least
        // once somewhere within it.
        let mut t = SimTime::ZERO;
        while t < SimTime::from_secs(16) {
            if let Some(at) = a.poll_at() {
                t = at;
                a.on_timer(t, t.as_micros() as i64, &mut out);
            } else {
                break;
            }
        }
        // detlint: allow(nondet-iter) — test assertion set compared by
        // set equality, order never observed.
        let probed: std::collections::HashSet<u16> = out
            .iter()
            .filter_map(|tx| match &tx.packet {
                Packet::ProbeReq { .. } => Some(tx.to.0),
                _ => None,
            })
            .collect();
        assert_eq!(probed, [1u16, 2, 3].into_iter().collect());
        // Early probes go out before any outcome is recorded and carry
        // an empty piggyback (never-sampled entries are dropped); once
        // timeouts mark paths as sampled, the entries appear.
        let mut max_piggyback = 0;
        for tx in &out {
            if let Packet::ProbeReq { metrics, from, .. } = &tx.packet {
                assert_eq!(*from, HostId(0));
                assert!(metrics.len() <= 3);
                max_piggyback = max_piggyback.max(metrics.len());
            }
        }
        assert!(max_piggyback >= 1, "sampled paths must eventually ride the piggyback");
    }

    #[test]
    fn two_nodes_learn_each_other_via_packet_exchange() {
        // A miniature in-memory "network" with zero loss and 10 ms delay:
        // run A and B against each other and check the tables converge.
        let mut a = node(0, 2);
        let mut b = node(1, 2);
        let mut t;
        let delay = SimDuration::from_millis(10);
        // In-flight packets: (arrival, receiver, packet).
        let mut wire: Vec<(SimTime, u16, Packet)> = Vec::new();
        for _ in 0..20_000 {
            let ta = a.poll_at().unwrap_or(SimTime::MAX);
            let tb = b.poll_at().unwrap_or(SimTime::MAX);
            let tw = wire.iter().map(|w| w.0).min().unwrap_or(SimTime::MAX);
            t = ta.min(tb).min(tw);
            if t >= SimTime::from_secs(120) {
                break;
            }
            let mut out = Vec::new();
            // Deliver due wire packets.
            let due: Vec<_> = wire.iter().filter(|w| w.0 <= t).cloned().collect();
            wire.retain(|w| w.0 > t);
            for (_, to, pkt) in due {
                let n = if to == 0 { &mut a } else { &mut b };
                n.on_packet(t, t.as_micros() as i64, pkt, &mut out);
            }
            if ta <= t {
                a.on_timer(t, t.as_micros() as i64, &mut out);
            }
            if tb <= t {
                b.on_timer(t, t.as_micros() as i64, &mut out);
            }
            for tx in out {
                wire.push((t + delay, tx.to.0, tx.packet));
            }
        }
        let ab = a.table().direct(HostId(1));
        let ba = b.table().direct(HostId(0));
        assert!(ab.samples() >= 4, "A probed B: {}", ab.samples());
        assert!(ba.samples() >= 4, "B probed A: {}", ba.samples());
        assert_eq!(ab.loss_rate(), 0.0);
        // RTT 20 ms → one-way estimate 10 ms.
        let lat = ab.latency_us().unwrap();
        assert!((lat - 10_000.0).abs() < 1_000.0, "lat={lat}");
    }

    #[test]
    fn wrap_direct_and_via() {
        let a = node(0, 3);
        let m = Packet::Measure {
            id: 1,
            method: 0,
            leg: 0,
            origin: HostId(0),
            target: HostId(2),
            route: RouteTag::Direct,
            kind: MeasureKind::OneWay,
            sent_local_us: 0,
        };
        let d = a.wrap(Route::Direct, HostId(2), m.clone());
        assert_eq!(d.to, HostId(2));
        assert_eq!(d.packet, m);
        let v = a.wrap(Route::Via(HostId(1)), HostId(2), m.clone());
        assert_eq!(v.to, HostId(1));
        match v.packet {
            Packet::Forward { target, inner } => {
                assert_eq!(target, HostId(2));
                assert_eq!(*inner, m);
            }
            p => panic!("expected Forward, got {p:?}"),
        }
    }
}
