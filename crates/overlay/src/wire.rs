//! The overlay wire format.
//!
//! A compact binary encoding used by the live UDP driver; inside the
//! simulator packets travel as the decoded [`Packet`] enum for speed, and
//! round-trip property tests keep the two representations equivalent.
//!
//! Layout: a one-byte type tag followed by fixed-width big-endian fields.
//! Metric vectors (the piggybacked link state) are length-prefixed. The
//! decoder never panics on malformed input — every read is bounds-checked
//! and hostile lengths are rejected.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use netsim::HostId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Wire-level cap on redundant probe legs per measurement: the
/// [`Packet::Measure`] `leg` field ranges over `0..MAX_PROBE_LEGS`, and
/// every layer above (the collector's probe records, method specs in
/// scenario files) sizes itself to the same bound. Four copies already
/// sit past the paper's diminishing-returns knee; raising this is a
/// wire-format version bump, not a silent widening.
pub const MAX_PROBE_LEGS: usize = 4;

/// Version byte of the [`Packet::Measure`] encoding. Version 2 added
/// k-leg redundancy (leg indices up to [`MAX_PROBE_LEGS`]); decoders
/// reject other versions loudly instead of misreading the fields.
pub const MEASURE_WIRE_VERSION: u8 = 2;

/// Version byte of the [`Packet::Lsa`] encoding. Decoders reject other
/// versions loudly instead of misreading the fields.
pub const LSA_WIRE_VERSION: u8 = 1;

/// Per-peer metric summary piggybacked on probe packets (the overlay's
/// link-state dissemination).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricEntry {
    /// The peer this entry describes (the path `sender → peer`).
    pub peer: HostId,
    /// Loss rate over the sender's probe window, in 1/10000 units.
    pub loss_e4: u16,
    /// One-way latency estimate in microseconds.
    pub lat_us: u32,
    /// Whether the sender believes the path is alive.
    pub alive: bool,
}

/// Which routing decision a measurement leg used (Table 4 of the paper).
///
/// Serializes as its variant name (`"Direct"`, `"Rand"`, …) so scenario
/// files can spell out per-leg route tactics in method specs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum RouteTag {
    /// The direct Internet path.
    Direct = 0,
    /// Through a random intermediate node.
    Rand = 1,
    /// The latency-optimised overlay path.
    Lat = 2,
    /// The loss-optimised overlay path.
    Loss = 3,
}

impl RouteTag {
    fn from_u8(v: u8) -> Option<RouteTag> {
        match v {
            0 => Some(RouteTag::Direct),
            1 => Some(RouteTag::Rand),
            2 => Some(RouteTag::Lat),
            3 => Some(RouteTag::Loss),
            _ => None,
        }
    }
}

/// Measurement mode of a [`Packet::Measure`] leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MeasureKind {
    /// One-way probe: the receiver just logs it (RONnarrow / RON2003).
    OneWay = 0,
    /// Round-trip probe: the receiver echoes it back (RONwide 2002).
    Request = 1,
    /// The echo of a [`MeasureKind::Request`].
    Echo = 2,
}

impl MeasureKind {
    fn from_u8(v: u8) -> Option<MeasureKind> {
        match v {
            0 => Some(MeasureKind::OneWay),
            1 => Some(MeasureKind::Request),
            2 => Some(MeasureKind::Echo),
            _ => None,
        }
    }
}

/// An overlay packet.
#[derive(Debug, Clone, PartialEq)]
pub enum Packet {
    /// Probe request, carrying the sender's metric vector.
    ProbeReq {
        /// Random 64-bit probe identifier (§4.1).
        id: u64,
        /// Originating node.
        from: HostId,
        /// Sender's local clock at transmission, microseconds.
        sent_local_us: i64,
        /// Piggybacked link state.
        metrics: Vec<MetricEntry>,
    },
    /// Probe response, echoing the request id.
    ProbeResp {
        /// The echoed probe identifier.
        id: u64,
        /// Responding node.
        from: HostId,
        /// Responder's local clock at response time, microseconds.
        resp_local_us: i64,
        /// Piggybacked link state of the responder.
        metrics: Vec<MetricEntry>,
    },
    /// One overlay-forwarding hop: deliver `inner` to `target`.
    Forward {
        /// Final destination of the inner packet.
        target: HostId,
        /// The encapsulated packet.
        inner: Box<Packet>,
    },
    /// A measurement packet (one leg of a Table 4 probe).
    Measure {
        /// Random 64-bit probe identifier shared by both legs of a pair.
        id: u64,
        /// Method index within the experiment's method registry.
        method: u8,
        /// Leg index within the pair (0 or 1).
        leg: u8,
        /// The measured path's source.
        origin: HostId,
        /// The measured path's destination.
        target: HostId,
        /// Route kind this leg used.
        route: RouteTag,
        /// One-way, request, or echo.
        kind: MeasureKind,
        /// Sender's local clock at transmission, microseconds.
        sent_local_us: i64,
    },
    /// A standalone link-state advertisement: `origin`'s current view of
    /// its direct paths, stamped with a sequence number so receivers can
    /// discard stale or duplicate copies. Emitted by the delta and gossip
    /// dissemination modes ([`crate::dissem`]); the full-snapshot mode
    /// never sends one.
    Lsa {
        /// The node whose link state this advertises (not necessarily
        /// the node that relayed the packet — gossip forwards foreign
        /// LSAs).
        origin: HostId,
        /// Origin's advertisement sequence number; receivers ingest only
        /// if it advances past the last seen seqno for `origin`.
        seq: u64,
        /// Whether `entries` is origin's complete vector (anti-entropy
        /// refresh) or only the entries that changed since the last
        /// acknowledged exchange.
        full: bool,
        /// The advertised per-destination metrics.
        entries: Vec<MetricEntry>,
    },
    /// Application data (used by the examples and the live demo).
    Data {
        /// Source node.
        origin: HostId,
        /// Destination node.
        target: HostId,
        /// Application stream id.
        stream: u32,
        /// Sequence number within the stream.
        seq: u32,
        /// Payload bytes.
        payload: Bytes,
    },
}

/// Decoding errors. Malformed datagrams are rejected, never panicked on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// Unknown packet type tag.
    BadTag(u8),
    /// A length field exceeded sanity bounds.
    BadLength(usize),
    /// A measure carried an unknown encoding version.
    BadVersion(u8),
    /// A measure's leg index was at or beyond [`MAX_PROBE_LEGS`].
    BadLeg(u8),
    /// Forwarding nesting exceeded the one-intermediate design.
    TooDeep,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated packet"),
            WireError::BadTag(t) => write!(f, "unknown packet tag {t}"),
            WireError::BadLength(l) => write!(f, "implausible length {l}"),
            WireError::BadVersion(v) => write!(f, "unknown measure encoding version {v}"),
            WireError::BadLeg(l) => {
                write!(f, "leg index {l} out of range (max {})", MAX_PROBE_LEGS - 1)
            }
            WireError::TooDeep => write!(f, "forwarding nested too deep"),
        }
    }
}

impl std::error::Error for WireError {}

/// Upper bound on piggybacked metric entries (a full RON mesh is ≤ 50
/// nodes; hostile lengths beyond this are rejected).
pub const MAX_METRICS: usize = 256;
/// Upper bound on data payload bytes in one packet.
pub const MAX_PAYLOAD: usize = 64 * 1024;
/// Maximum forwarding nesting (one intermediate hop ⇒ depth 2 packets).
const MAX_DEPTH: usize = 3;

const TAG_PROBE_REQ: u8 = 1;
const TAG_PROBE_RESP: u8 = 2;
const TAG_FORWARD: u8 = 3;
const TAG_MEASURE: u8 = 4;
const TAG_DATA: u8 = 5;
const TAG_LSA: u8 = 6;

fn put_metrics(buf: &mut BytesMut, metrics: &[MetricEntry]) {
    buf.put_u16(metrics.len() as u16);
    for m in metrics {
        buf.put_u16(m.peer.0);
        buf.put_u16(m.loss_e4);
        buf.put_u32(m.lat_us);
        buf.put_u8(m.alive as u8);
    }
}

fn get_metrics(buf: &mut Bytes) -> Result<Vec<MetricEntry>, WireError> {
    if buf.remaining() < 2 {
        return Err(WireError::Truncated);
    }
    let n = buf.get_u16() as usize;
    if n > MAX_METRICS {
        return Err(WireError::BadLength(n));
    }
    if buf.remaining() < n * 9 {
        return Err(WireError::Truncated);
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(MetricEntry {
            peer: HostId(buf.get_u16()),
            loss_e4: buf.get_u16(),
            lat_us: buf.get_u32(),
            alive: buf.get_u8() != 0,
        });
    }
    Ok(v)
}

impl Packet {
    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        self.encode_into(&mut buf);
        buf.freeze()
    }

    fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Packet::ProbeReq { id, from, sent_local_us, metrics } => {
                buf.put_u8(TAG_PROBE_REQ);
                buf.put_u64(*id);
                buf.put_u16(from.0);
                buf.put_i64(*sent_local_us);
                put_metrics(buf, metrics);
            }
            Packet::ProbeResp { id, from, resp_local_us, metrics } => {
                buf.put_u8(TAG_PROBE_RESP);
                buf.put_u64(*id);
                buf.put_u16(from.0);
                buf.put_i64(*resp_local_us);
                put_metrics(buf, metrics);
            }
            Packet::Forward { target, inner } => {
                buf.put_u8(TAG_FORWARD);
                buf.put_u16(target.0);
                inner.encode_into(buf);
            }
            Packet::Measure { id, method, leg, origin, target, route, kind, sent_local_us } => {
                debug_assert!((*leg as usize) < MAX_PROBE_LEGS, "leg {leg} exceeds the wire cap");
                buf.put_u8(TAG_MEASURE);
                buf.put_u8(MEASURE_WIRE_VERSION);
                buf.put_u64(*id);
                buf.put_u8(*method);
                buf.put_u8(*leg);
                buf.put_u16(origin.0);
                buf.put_u16(target.0);
                buf.put_u8(*route as u8);
                buf.put_u8(*kind as u8);
                buf.put_i64(*sent_local_us);
            }
            Packet::Lsa { origin, seq, full, entries } => {
                buf.put_u8(TAG_LSA);
                buf.put_u8(LSA_WIRE_VERSION);
                buf.put_u16(origin.0);
                buf.put_u64(*seq);
                buf.put_u8(*full as u8);
                put_metrics(buf, entries);
            }
            Packet::Data { origin, target, stream, seq, payload } => {
                buf.put_u8(TAG_DATA);
                buf.put_u16(origin.0);
                buf.put_u16(target.0);
                buf.put_u32(*stream);
                buf.put_u32(*seq);
                buf.put_u32(payload.len() as u32);
                buf.put_slice(payload);
            }
        }
    }

    /// Decodes one packet from `bytes`.
    pub fn decode(bytes: &[u8]) -> Result<Packet, WireError> {
        let mut buf = Bytes::copy_from_slice(bytes);
        let p = Self::decode_buf(&mut buf, 0)?;
        Ok(p)
    }

    fn decode_buf(buf: &mut Bytes, depth: usize) -> Result<Packet, WireError> {
        if depth >= MAX_DEPTH {
            return Err(WireError::TooDeep);
        }
        if buf.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        let tag = buf.get_u8();
        match tag {
            TAG_PROBE_REQ => {
                if buf.remaining() < 8 + 2 + 8 {
                    return Err(WireError::Truncated);
                }
                let id = buf.get_u64();
                let from = HostId(buf.get_u16());
                let sent_local_us = buf.get_i64();
                let metrics = get_metrics(buf)?;
                Ok(Packet::ProbeReq { id, from, sent_local_us, metrics })
            }
            TAG_PROBE_RESP => {
                if buf.remaining() < 8 + 2 + 8 {
                    return Err(WireError::Truncated);
                }
                let id = buf.get_u64();
                let from = HostId(buf.get_u16());
                let resp_local_us = buf.get_i64();
                let metrics = get_metrics(buf)?;
                Ok(Packet::ProbeResp { id, from, resp_local_us, metrics })
            }
            TAG_FORWARD => {
                if buf.remaining() < 2 {
                    return Err(WireError::Truncated);
                }
                let target = HostId(buf.get_u16());
                let inner = Box::new(Self::decode_buf(buf, depth + 1)?);
                Ok(Packet::Forward { target, inner })
            }
            TAG_MEASURE => {
                if buf.remaining() < 1 + 8 + 1 + 1 + 2 + 2 + 1 + 1 + 8 {
                    return Err(WireError::Truncated);
                }
                let version = buf.get_u8();
                if version != MEASURE_WIRE_VERSION {
                    return Err(WireError::BadVersion(version));
                }
                let id = buf.get_u64();
                let method = buf.get_u8();
                let leg = buf.get_u8();
                if leg as usize >= MAX_PROBE_LEGS {
                    // A corrupt or hostile leg index: reject at the wire,
                    // mirroring the collector's `malformed_receives`.
                    return Err(WireError::BadLeg(leg));
                }
                let origin = HostId(buf.get_u16());
                let target = HostId(buf.get_u16());
                let tag = buf.get_u8();
                let route = RouteTag::from_u8(tag).ok_or(WireError::BadTag(tag))?;
                let kv = buf.get_u8();
                let kind = MeasureKind::from_u8(kv).ok_or(WireError::BadTag(kv))?;
                let sent_local_us = buf.get_i64();
                Ok(Packet::Measure { id, method, leg, origin, target, route, kind, sent_local_us })
            }
            TAG_DATA => {
                if buf.remaining() < 2 + 2 + 4 + 4 + 4 {
                    return Err(WireError::Truncated);
                }
                let origin = HostId(buf.get_u16());
                let target = HostId(buf.get_u16());
                let stream = buf.get_u32();
                let seq = buf.get_u32();
                let len = buf.get_u32() as usize;
                if len > MAX_PAYLOAD {
                    return Err(WireError::BadLength(len));
                }
                if buf.remaining() < len {
                    return Err(WireError::Truncated);
                }
                let payload = buf.copy_to_bytes(len);
                Ok(Packet::Data { origin, target, stream, seq, payload })
            }
            TAG_LSA => {
                if buf.remaining() < 1 + 2 + 8 + 1 {
                    return Err(WireError::Truncated);
                }
                let version = buf.get_u8();
                if version != LSA_WIRE_VERSION {
                    return Err(WireError::BadVersion(version));
                }
                let origin = HostId(buf.get_u16());
                let seq = buf.get_u64();
                let full = buf.get_u8() != 0;
                let entries = get_metrics(buf)?;
                Ok(Packet::Lsa { origin, seq, full, entries })
            }
            t => Err(WireError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> Vec<MetricEntry> {
        vec![
            MetricEntry { peer: HostId(3), loss_e4: 120, lat_us: 54_130, alive: true },
            MetricEntry { peer: HostId(9), loss_e4: 0, lat_us: 2_100, alive: false },
        ]
    }

    #[test]
    fn probe_req_round_trips() {
        let p = Packet::ProbeReq {
            id: 0xDEAD_BEEF_0BAD_CAFE,
            from: HostId(7),
            sent_local_us: -1_234,
            metrics: sample_metrics(),
        };
        assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn probe_resp_round_trips() {
        let p = Packet::ProbeResp {
            id: 42,
            from: HostId(0),
            resp_local_us: i64::MAX,
            metrics: Vec::new(),
        };
        assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn forward_round_trips() {
        let inner = Packet::Measure {
            id: 1,
            method: 4,
            leg: 1,
            origin: HostId(2),
            target: HostId(5),
            route: RouteTag::Direct,
            kind: MeasureKind::OneWay,
            sent_local_us: 99,
        };
        let p = Packet::Forward { target: HostId(5), inner: Box::new(inner) };
        assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn data_round_trips() {
        let p = Packet::Data {
            origin: HostId(1),
            target: HostId(2),
            stream: 77,
            seq: 1_000_000,
            payload: Bytes::from_static(b"the quick brown fox"),
        };
        assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn truncated_inputs_error() {
        let p = Packet::ProbeReq {
            id: 5,
            from: HostId(1),
            sent_local_us: 0,
            metrics: sample_metrics(),
        };
        let full = p.encode();
        for cut in 0..full.len() {
            let r = Packet::decode(&full[..cut]);
            assert!(r.is_err(), "decode of {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert_eq!(Packet::decode(&[200, 0, 0]), Err(WireError::BadTag(200)));
        assert_eq!(Packet::decode(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn hostile_metric_count_rejected() {
        // ProbeReq header + metric count of u16::MAX.
        let mut raw = vec![TAG_PROBE_REQ];
        raw.extend_from_slice(&[0; 8]); // id
        raw.extend_from_slice(&[0; 2]); // from
        raw.extend_from_slice(&[0; 8]); // sent_local_us
        raw.extend_from_slice(&u16::MAX.to_be_bytes());
        assert!(matches!(Packet::decode(&raw), Err(WireError::BadLength(_))));
    }

    #[test]
    fn hostile_payload_length_rejected() {
        let mut raw = vec![TAG_DATA];
        raw.extend_from_slice(&[0; 2 + 2 + 4 + 4]);
        raw.extend_from_slice(&(u32::MAX).to_be_bytes());
        assert!(matches!(Packet::decode(&raw), Err(WireError::BadLength(_))));
    }

    #[test]
    fn deep_forward_nesting_rejected() {
        let mut p = Packet::Data {
            origin: HostId(0),
            target: HostId(1),
            stream: 0,
            seq: 0,
            payload: Bytes::new(),
        };
        for _ in 0..5 {
            p = Packet::Forward { target: HostId(1), inner: Box::new(p) };
        }
        assert_eq!(Packet::decode(&p.encode()), Err(WireError::TooDeep));
    }

    fn measure(leg: u8) -> Packet {
        Packet::Measure {
            id: 1,
            method: 4,
            leg,
            origin: HostId(2),
            target: HostId(5),
            route: RouteTag::Loss,
            kind: MeasureKind::OneWay,
            sent_local_us: 99,
        }
    }

    #[test]
    fn measure_round_trips_every_leg_up_to_the_cap() {
        for leg in 0..MAX_PROBE_LEGS as u8 {
            let p = measure(leg);
            assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
        }
    }

    #[test]
    fn measure_rejects_out_of_range_leg() {
        // Encode a valid measure, then corrupt the leg byte in place
        // (tag, version, id×8, method, then leg).
        let mut raw = measure(0).encode().to_vec();
        raw[1 + 1 + 8 + 1] = MAX_PROBE_LEGS as u8;
        assert_eq!(Packet::decode(&raw), Err(WireError::BadLeg(MAX_PROBE_LEGS as u8)));
        raw[1 + 1 + 8 + 1] = 255;
        assert_eq!(Packet::decode(&raw), Err(WireError::BadLeg(255)));
    }

    #[test]
    fn measure_rejects_unknown_version() {
        let mut raw = measure(0).encode().to_vec();
        raw[1] = MEASURE_WIRE_VERSION + 1;
        assert_eq!(Packet::decode(&raw), Err(WireError::BadVersion(MEASURE_WIRE_VERSION + 1)));
        raw[1] = 0;
        assert_eq!(Packet::decode(&raw), Err(WireError::BadVersion(0)));
    }

    #[test]
    fn lsa_round_trips() {
        for (full, entries) in [(true, sample_metrics()), (false, Vec::new())] {
            let p = Packet::Lsa { origin: HostId(11), seq: u64::MAX - 3, full, entries };
            assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
        }
    }

    #[test]
    fn lsa_rejects_unknown_version() {
        let p = Packet::Lsa { origin: HostId(1), seq: 9, full: true, entries: sample_metrics() };
        let mut raw = p.encode().to_vec();
        raw[1] = LSA_WIRE_VERSION + 1;
        assert_eq!(Packet::decode(&raw), Err(WireError::BadVersion(LSA_WIRE_VERSION + 1)));
        raw[1] = 0;
        assert_eq!(Packet::decode(&raw), Err(WireError::BadVersion(0)));
    }

    #[test]
    fn lsa_truncated_inputs_error() {
        let p = Packet::Lsa { origin: HostId(4), seq: 1, full: false, entries: sample_metrics() };
        let full = p.encode();
        for cut in 0..full.len() {
            assert!(Packet::decode(&full[..cut]).is_err(), "{cut}-byte prefix should fail");
        }
    }

    #[test]
    fn lsa_hostile_entry_count_rejected() {
        let mut raw = vec![TAG_LSA, LSA_WIRE_VERSION];
        raw.extend_from_slice(&[0; 2]); // origin
        raw.extend_from_slice(&[0; 8]); // seq
        raw.push(1); // full
        raw.extend_from_slice(&u16::MAX.to_be_bytes());
        assert!(matches!(Packet::decode(&raw), Err(WireError::BadLength(_))));
    }

    #[test]
    fn route_tag_serde_round_trips_as_variant_names() {
        for (tag, name) in [
            (RouteTag::Direct, "\"Direct\""),
            (RouteTag::Rand, "\"Rand\""),
            (RouteTag::Lat, "\"Lat\""),
            (RouteTag::Loss, "\"Loss\""),
        ] {
            let json = serde_json::to_string(&tag).unwrap();
            assert_eq!(json, name);
            let back: RouteTag = serde_json::from_str(&json).unwrap();
            assert_eq!(back, tag);
        }
        assert!(serde_json::from_str::<RouteTag>("\"Fastest\"").is_err());
    }

    #[test]
    fn decode_never_panics_on_noise() {
        // Cheap deterministic fuzz: feed pseudo-random byte strings.
        let mut rng = netsim::Rng::new(1234);
        for _ in 0..20_000 {
            let len = rng.below(64) as usize;
            let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let _ = Packet::decode(&data); // must not panic
        }
    }
}
