//! Property tests for metric dissemination: delta ingest must converge
//! to the same `LinkStateTable` state as full-snapshot ingest once the
//! stream quiesces, and the delta machinery must repair arbitrary LSA
//! loss through its anti-entropy full refresh.

use netsim::{HostId, Rng, SimDuration, SimTime};
use overlay::dissem::{DisseminationMode, Disseminator};
use overlay::{LinkStateTable, MetricEntry, Packet};
use proptest::prelude::*;

const N: usize = 8;

fn table(me: u16) -> LinkStateTable {
    LinkStateTable::new(
        HostId(me),
        N,
        100,
        0.1,
        5,
        SimDuration::from_secs(90),
        0.01,
        0.05,
    )
}

fn arb_entry() -> impl Strategy<Value = MetricEntry> {
    (1u16..N as u16, 0u16..=10_000, 0u32..5_000_000, any::<bool>()).prop_map(
        |(peer, loss_e4, lat_us, alive)| MetricEntry { peer: HostId(peer), loss_e4, lat_us, alive },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Applying a sequence of per-destination updates as deltas ends in
    /// exactly the state of one full ingest of the cumulative vector.
    #[test]
    fn delta_ingest_converges_to_full_snapshot_state(
        updates in proptest::collection::vec(arb_entry(), 1..60),
    ) {
        let origin = HostId(1);
        let mut via_delta = table(0);
        let mut via_full = table(0);
        // Timestamps advance inside the staleness horizon so age-out
        // cannot explain away a divergence.
        let mut now = SimTime::from_secs(10);
        let step = SimDuration::from_millis(500);
        let mut cumulative: Vec<Option<MetricEntry>> = vec![None; N];
        for e in &updates {
            now += step;
            via_delta.ingest_delta(origin, std::slice::from_ref(e), now);
            cumulative[e.peer.idx()] = Some(*e);
        }
        let vector: Vec<MetricEntry> = cumulative.iter().flatten().copied().collect();
        via_full.ingest_full(origin, &vector, now);
        for dst in 0..N as u16 {
            prop_assert_eq!(
                via_delta.remote_metric(origin, HostId(dst), now),
                via_full.remote_metric(origin, HostId(dst), now),
                "divergent view toward {}", dst
            );
        }
    }

    /// A receiver that loses an arbitrary subset of delta LSAs (and
    /// whose acks race them arbitrarily) converges to the sender's
    /// advertised state once the anti-entropy full refresh lands.
    #[test]
    fn lossy_delta_stream_is_repaired_by_full_refresh(
        seed in 0u64..1_000_000,
        drops in proptest::collection::vec(any::<bool>(), 40..41),
        acks in proptest::collection::vec(any::<bool>(), 40..41),
    ) {
        let me = HostId(0);
        let peer = HostId(7);
        let max_age = 4u32;
        let mut sender_table = table(0);
        let mut sender =
            Disseminator::new(DisseminationMode::Delta { max_age_probes: max_age }, me, N,
                Rng::new(seed), SimTime::ZERO);
        let mut recv_table = table(7);
        let mut receiver =
            Disseminator::new(DisseminationMode::Delta { max_age_probes: max_age }, peer, N,
                Rng::new(seed ^ 1), SimTime::ZERO);
        let mut drive = Rng::new(seed ^ 2);
        let mut now = SimTime::from_secs(1);
        let mut last_full: Option<Vec<MetricEntry>> = None;
        let deliver = |lsa: Option<Packet>,
                           dropped: bool,
                           receiver: &mut Disseminator,
                           recv_table: &mut LinkStateTable,
                           last_full: &mut Option<Vec<MetricEntry>>,
                           now: SimTime| {
            if let Some(Packet::Lsa { origin, seq, full, entries }) = lsa {
                if !dropped {
                    receiver.on_lsa(origin, seq, full, &entries, now, recv_table);
                    if full {
                        *last_full = Some(entries);
                    }
                }
            }
        };
        // Phase 1: the sender's direct paths churn while probes flow,
        // with arbitrary LSA loss and ack delivery.
        for i in 0..drops.len() {
            // Random direct-path activity on a random peer.
            let target = HostId(1 + drive.below((N - 1) as u64) as u16);
            if drive.chance(0.5) {
                sender_table.direct_mut(target).record_loss();
            } else {
                sender_table
                    .direct_mut(target)
                    .record_success(now, SimDuration::from_millis(5 + drive.below(200)));
            }
            let (_, lsa) = sender.on_probe_send(peer, i as u64, &mut sender_table);
            deliver(lsa, drops[i], &mut receiver, &mut recv_table, &mut last_full, now);
            if acks[i] {
                sender.on_ack(i as u64, peer);
            }
            now += SimDuration::from_secs(1);
        }
        // Phase 2: quiescence. Within max_age more probes a full refresh
        // fires; deliver everything from here on.
        for i in 0..max_age as u64 + 1 {
            let (_, lsa) = sender.on_probe_send(peer, 1_000 + i, &mut sender_table);
            deliver(lsa, false, &mut receiver, &mut recv_table, &mut last_full, now);
        }
        // The receiver's view of the sender must now equal the sender's
        // advertised vector (the last full refresh it shipped).
        let advertised = last_full.expect("a full refresh must fire within max_age probes");
        let mut reference = table(7);
        reference.ingest_full(me, &advertised, now);
        for dst in 0..N as u16 {
            prop_assert_eq!(
                recv_table.remote_metric(me, HostId(dst), now),
                reference.remote_metric(me, HostId(dst), now),
                "unrepaired divergence toward {}", dst
            );
        }
    }
}
