//! Property tests: the loss window agrees with a naive reference model
//! for any probe sequence, and the routing estimate stays sane.

use overlay::{LossWindow, PathStats};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn window_matches_reference_model(
        outcomes in proptest::collection::vec(any::<bool>(), 0..400),
        cap in 1usize..150,
    ) {
        let mut w = LossWindow::new(cap);
        for &lost in &outcomes {
            w.push(lost);
        }
        let tail: Vec<bool> = outcomes.iter().rev().take(cap).copied().collect();
        let expect_len = tail.len();
        let expect_lost = tail.iter().filter(|&&l| l).count();
        prop_assert_eq!(w.len(), expect_len);
        prop_assert_eq!(w.losses(), expect_lost);
        if expect_len > 0 {
            let rate = expect_lost as f64 / expect_len as f64;
            prop_assert!((w.loss_rate() - rate).abs() < 1e-12);
        }
    }

    #[test]
    fn estimates_are_probabilities(
        events in proptest::collection::vec(any::<bool>(), 1..300),
    ) {
        let mut p = PathStats::new(100, 0.1, 5);
        for (i, &lost) in events.iter().enumerate() {
            if lost {
                p.record_loss();
            } else {
                p.record_success(
                    netsim::SimTime::from_secs(i as u64),
                    netsim::SimDuration::from_millis(25),
                );
            }
            let est = p.loss_estimate();
            let raw = p.loss_rate();
            prop_assert!((0.0..=1.0).contains(&est), "estimate {est}");
            prop_assert!((0.0..=1.0).contains(&raw), "raw {raw}");
            if !p.is_dead() {
                // The prior pulls small samples toward the middle but can
                // never invent more than half a probe of loss.
                prop_assert!(est <= raw + 0.5, "est {est} raw {raw}");
            }
        }
    }

    #[test]
    fn dead_is_exactly_threshold_consecutive_losses(
        threshold in 1u32..8,
        pre_successes in 0usize..5,
    ) {
        let mut p = PathStats::new(100, 0.1, threshold);
        for i in 0..pre_successes {
            p.record_success(
                netsim::SimTime::from_secs(i as u64),
                netsim::SimDuration::from_millis(10),
            );
        }
        for i in 0..threshold {
            prop_assert!(!p.is_dead(), "dead after only {i} losses (threshold {threshold})");
            p.record_loss();
        }
        prop_assert!(p.is_dead());
        p.record_success(netsim::SimTime::from_secs(999), netsim::SimDuration::from_millis(10));
        prop_assert!(!p.is_dead(), "success must revive");
    }
}
