//! The declarative scenario API: serde-serializable experiment
//! conditions plus an open registry of named built-ins.
//!
//! A [`ScenarioSpec`] is everything that defines *the conditions a
//! comparison runs under*: the testbed shape, the method set, the
//! campaign length, and an impairment plan (shared-risk outage groups,
//! moving load waves, flash crowds, directional asymmetry — the
//! [`netsim::stress`] models). Specs round-trip through JSON, so new
//! workloads are a file, not a code change:
//!
//! ```text
//! repro --list-scenarios
//! repro --scenario correlated-outages --days 0.5
//! repro --dump-scenario flash-crowd > my.json   # edit, then:
//! repro --scenario-file my.json
//! ```
//!
//! The [`ScenarioRegistry`] holds the named specs: the three paper
//! campaigns (re-expressed as specs) plus synthetic stress scenarios
//! probing exactly the conditions where the best-path vs. multi-path
//! question flips. The registry is *open*: `register` accepts any spec,
//! and the `repro` binary validates and runs user-written spec files
//! directly — including files whose [`MethodsSpec::Custom`] set defines
//! k-redundant probe methods the paper never ran.
//!
//! Determinism: a spec plus a seed fully determine the run.
//! [`ScenarioSpec::digest`] folds the spec's canonical JSON into a
//! 64-bit value that is stamped (with the scenario name) into every
//! [`ExperimentOutput`] and its fingerprint, so two reports can only
//! compare equal when they ran identical conditions.

use crate::experiment::{run_experiment, ExperimentConfig, ExperimentOutput};
use crate::method::{MethodSet, MethodSetSpec};
use analysis::Fnv;
use netsim::stress::{
    apply_flash_crowds, apply_load_wave, apply_shared_risk, AsymmetrySpec, FlashCrowdSpec,
    LoadWaveSpec, SharedRiskSpec,
};
use netsim::{SimDuration, Topology};
use overlay::DisseminationMode;
use serde::{Deserialize, Serialize};

/// The testbed a scenario runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// The 30-host 2003 RON testbed.
    Ron2003,
    /// The 17-host 2002 RON testbed (hotter links, no Cornell episode).
    Ron2002,
    /// A uniform synthetic circle: fully controlled, no background
    /// weather unless the impairment plan scripts some.
    Synthetic {
        /// Host count (≥ 2).
        hosts: usize,
        /// Stationary loss of every access segment.
        edge_loss: f64,
    },
    /// A synthetic circle whose hosts probe only a sparse, seed-derived
    /// `mesh_k`-regular neighbor set instead of the full clique (see
    /// [`netsim::sparse_mesh`]) — the scaling knob for testbeds far
    /// beyond the paper's 30 hosts. A *new* variant (not a new field)
    /// so every pre-existing spec's canonical JSON, digest and golden
    /// fingerprint stay byte-identical.
    SparseSynthetic {
        /// Host count (≥ 2).
        hosts: usize,
        /// Stationary loss of every access segment.
        edge_loss: f64,
        /// Probe-mesh degree: every host probes exactly this many
        /// peers. `hosts * mesh_k` must be even (graph parity).
        mesh_k: usize,
    },
}

impl TopologySpec {
    /// Host count, without building the O(hosts²) testbed.
    pub fn hosts(&self) -> usize {
        match self {
            TopologySpec::Ron2003 => 30,
            TopologySpec::Ron2002 => 17,
            TopologySpec::Synthetic { hosts, .. } => *hosts,
            TopologySpec::SparseSynthetic { hosts, .. } => *hosts,
        }
    }

    /// The sparse probe-mesh degree, when this topology declares one.
    pub fn mesh_k(&self) -> Option<usize> {
        match self {
            TopologySpec::SparseSynthetic { mesh_k, .. } => Some(*mesh_k),
            _ => None,
        }
    }
}

/// The probe methods a scenario cycles through: a compiled-in preset,
/// or a fully user-defined set carried inside the scenario file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MethodsSpec {
    /// The six 2003 probe sets plus the two inferred views (8 rows).
    Ron2003,
    /// The three 2002 one-way methods plus two views.
    RonNarrow,
    /// The twelve 2002 round-trip combinations.
    RonWide,
    /// A user-defined method set (see [`MethodSetSpec`]) — including
    /// k-redundant probes the paper never ran.
    Custom(MethodSetSpec),
}

impl MethodsSpec {
    /// Materializes the method set.
    pub fn build(&self) -> MethodSet {
        match self {
            MethodsSpec::Ron2003 => MethodSet::ron2003(),
            MethodsSpec::RonNarrow => MethodSet::ron_narrow(),
            MethodsSpec::RonWide => MethodSet::ron_wide(),
            MethodsSpec::Custom(spec) => spec.build(),
        }
    }

    /// Semantic validation. Both arms funnel into
    /// [`MethodSet::validate`] — the presets are valid by construction
    /// but still flow through the same checks, so a preset edit that
    /// overflowed the method-id space, dangled a view, or stretched a
    /// probe past the collector window is caught identically.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            MethodsSpec::Custom(spec) => spec.validate(),
            _ => self.build().validate(),
        }
    }

    /// Total analysis-method count without building route tables.
    pub fn total(&self) -> usize {
        match self {
            MethodsSpec::Custom(spec) => spec.total(),
            _ => self.build().total(),
        }
    }
}

/// The scripted impairments layered onto the testbed. Every entry is
/// optional (`null` in JSON); the paper scenarios use none.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpairmentPlan {
    /// Shared-risk link groups: correlated cross-path outages.
    pub shared_risk: Option<SharedRiskSpec>,
    /// A moving congestion hot spot sweeping the hosts.
    pub load_wave: Option<LoadWaveSpec>,
    /// Demand spikes converging on single destinations.
    pub flash_crowd: Option<FlashCrowdSpec>,
    /// Direction-skewed loss and latency.
    pub asymmetry: Option<AsymmetrySpec>,
}

impl ImpairmentPlan {
    /// No scripted impairments (the paper campaigns).
    pub fn none() -> Self {
        ImpairmentPlan { shared_risk: None, load_wave: None, flash_crowd: None, asymmetry: None }
    }
}

/// Calibration knobs forwarded into [`ExperimentConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// User-space forwarder drop probability at intermediates.
    pub forward_drop: f64,
    /// Per-host pause between probes, seconds (§4.1: 0.6–1.2).
    pub wait_range_s: (f64, f64),
    /// Disable the diurnal load swing.
    pub flat_load: bool,
    /// Workload-slice width for the sharded runner, hours.
    pub slice_hours: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            forward_drop: 0.008,
            wait_range_s: (0.6, 1.2),
            flat_load: false,
            slice_hours: 6.0,
        }
    }
}

/// Serde form of the link-state dissemination strategy, as scenario
/// files spell it (see [`overlay::dissem`] for the machinery).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DisseminationSpec {
    /// The full metric snapshot piggybacks on every probe — the
    /// historical default, byte-identical to specs written before this
    /// knob existed.
    FullSnapshot,
    /// Sequence-numbered delta LSAs: probes carry no metrics; a
    /// standalone LSA ships only the entries that changed since the
    /// neighbor last acknowledged, with an anti-entropy full refresh
    /// every `max_age_probes` probes per neighbor.
    Delta {
        /// Probes to a neighbor between anti-entropy full refreshes
        /// (at least 1).
        max_age_probes: u32,
    },
    /// Timed gossip: every `interval_ms` each node pushes its own LSA
    /// (when it changed) plus freshly heard foreign LSAs to `fanout`
    /// seed-derived peers.
    Gossip {
        /// Distinct peers per gossip round (in `1..hosts`).
        fanout: usize,
        /// Gossip period, milliseconds (at least 1).
        interval_ms: u64,
    },
}

impl DisseminationSpec {
    /// The runtime mode this spec selects.
    pub fn mode(&self) -> DisseminationMode {
        match *self {
            DisseminationSpec::FullSnapshot => DisseminationMode::FullSnapshot,
            DisseminationSpec::Delta { max_age_probes } => {
                DisseminationMode::Delta { max_age_probes }
            }
            DisseminationSpec::Gossip { fanout, interval_ms } => {
                DisseminationMode::Gossip { fanout, interval_ms }
            }
        }
    }

    /// True for the historical default (the variant omitted from
    /// canonical JSON).
    pub fn is_default(&self) -> bool {
        *self == DisseminationSpec::FullSnapshot
    }
}

/// A complete, serializable description of one experiment scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Registry name (kebab-case by convention).
    pub name: String,
    /// One-line description for `--list-scenarios`.
    pub summary: String,
    /// Testbed shape.
    pub topology: TopologySpec,
    /// Probe method set.
    pub methods: MethodsSpec,
    /// Full campaign length, simulated days (entry points accept a
    /// shorter override for scaled-down runs).
    pub days: f64,
    /// Horizon the scripted impairment/storm schedules cover, days.
    /// Usually equals [`days`](Self::days); the paper campaigns pin it
    /// to their historical preset horizons.
    pub horizon_days: f64,
    /// Round-trip probing (RONwide): targets echo measures back.
    pub round_trip: bool,
    /// Scripted impairments.
    pub impairments: ImpairmentPlan,
    /// Runner calibration.
    pub calibration: Calibration,
    /// How overlay nodes spread their link-state metrics. Optional in
    /// files and omitted from JSON when [`DisseminationSpec::FullSnapshot`],
    /// so every pre-existing spec keeps its canonical serialization —
    /// and therefore its digest and goldens.
    pub dissemination: DisseminationSpec,
}

// Hand-written so the `dissemination` key only exists on the wire when
// it departs from the full-snapshot default: the derive would emit
// `"dissemination":"FullSnapshot"` into every spec, shifting
// `ScenarioSpec::digest` for all existing scenarios and invalidating
// their golden fingerprints.
impl serde::Serialize for ScenarioSpec {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("name".to_string(), self.name.to_value()),
            ("summary".to_string(), self.summary.to_value()),
            ("topology".to_string(), self.topology.to_value()),
            ("methods".to_string(), self.methods.to_value()),
            ("days".to_string(), self.days.to_value()),
            ("horizon_days".to_string(), self.horizon_days.to_value()),
            ("round_trip".to_string(), self.round_trip.to_value()),
            ("impairments".to_string(), self.impairments.to_value()),
            ("calibration".to_string(), self.calibration.to_value()),
        ];
        if !self.dissemination.is_default() {
            fields.push(("dissemination".to_string(), self.dissemination.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl serde::Deserialize for ScenarioSpec {
    fn from_value(v: &serde::Value) -> Result<ScenarioSpec, serde::Error> {
        let serde::Value::Map(entries) = v else {
            return Err(serde::Error::new("ScenarioSpec: expected a map"));
        };
        const FIELDS: [&str; 10] = [
            "name",
            "summary",
            "topology",
            "methods",
            "days",
            "horizon_days",
            "round_trip",
            "impairments",
            "calibration",
            "dissemination",
        ];
        for (key, _) in entries {
            if !FIELDS.contains(&key.as_str()) {
                // Same wording as the derive's strict guard, expected
                // list included: a typo tells the author what is legal.
                return Err(serde::Error::new(format!(
                    "unknown field `{key}` in ScenarioSpec (expected `{}`)",
                    FIELDS.join("`, `")
                )));
            }
        }
        let dissemination = match entries.iter().find(|(key, _)| key == "dissemination") {
            Some((_, val)) => DisseminationSpec::from_value(val)?,
            None => DisseminationSpec::FullSnapshot,
        };
        Ok(ScenarioSpec {
            name: Deserialize::from_value(v.field("name")?)?,
            summary: Deserialize::from_value(v.field("summary")?)?,
            topology: Deserialize::from_value(v.field("topology")?)?,
            methods: Deserialize::from_value(v.field("methods")?)?,
            days: Deserialize::from_value(v.field("days")?)?,
            horizon_days: Deserialize::from_value(v.field("horizon_days")?)?,
            round_trip: Deserialize::from_value(v.field("round_trip")?)?,
            impairments: Deserialize::from_value(v.field("impairments")?)?,
            calibration: Deserialize::from_value(v.field("calibration")?)?,
            dissemination,
        })
    }
}

impl ScenarioSpec {
    /// The scenario's full campaign duration.
    pub fn paper_duration(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.days * 86_400.0)
    }

    /// The scripted-impairment horizon as an exact integer-µs duration.
    ///
    /// This is the *single* days → µs conversion for the horizon. Every
    /// consumer — the topology builder compiling weather schedules,
    /// [`Self::config`]'s outrun assert, and the distributed runner's
    /// `CampaignJob::validate` on the far side of the wire — must share
    /// this one rounding: two independently written float conversions
    /// can disagree by an ulp, making a duration that lands exactly on
    /// the horizon validate on one host and fail on another.
    pub fn horizon(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.horizon_days * 86_400.0)
    }

    /// Semantic validation beyond JSON shape: value ranges that would
    /// otherwise panic deep inside the simulator. Returns a readable
    /// error naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        // Written as named predicates (not `x <= 0.0`) so NaN fails
        // validation too.
        fn positive(v: f64) -> bool {
            v > 0.0
        }
        fn at_least(v: f64, min: f64) -> bool {
            v >= min
        }
        fn pos_range(r: (f64, f64)) -> bool {
            r.0 > 0.0 && r.1 >= r.0
        }
        fn at_most(v: f64, max: f64) -> bool {
            v <= max
        }
        let err = |msg: String| Err(format!("scenario `{}`: {msg}", self.name));
        if let Err(e) = self.methods.validate() {
            return err(format!("`methods`: {e}"));
        }
        if !positive(self.days) {
            return err(format!("`days` must be positive, got {}", self.days));
        }
        if !positive(self.horizon_days) {
            return err(format!("`horizon_days` must be positive, got {}", self.horizon_days));
        }
        if !at_most(self.horizon_days, 366.0) {
            return err(format!(
                "`horizon_days` must be at most 366 (schedule compilation is O(horizon)), got {}",
                self.horizon_days
            ));
        }
        if !at_most(self.days, self.horizon_days) {
            return err(format!(
                "`days` ({}) must not exceed `horizon_days` ({}): the impairment and weather \
                 schedules only cover the horizon, so the campaign's tail would run \
                 impairment-free",
                self.days, self.horizon_days
            ));
        }
        let synth = match self.topology {
            TopologySpec::Synthetic { hosts, edge_loss } => Some((hosts, edge_loss)),
            TopologySpec::SparseSynthetic { hosts, edge_loss, .. } => Some((hosts, edge_loss)),
            _ => None,
        };
        if let Some((hosts, edge_loss)) = synth {
            if hosts < 2 {
                return err(format!("`topology.hosts` must be at least 2, got {hosts}"));
            }
            if hosts > 1_000 {
                return err(format!(
                    "`topology.hosts` must be at most 1000 (the testbed is O(hosts²)), got {hosts}"
                ));
            }
            if !(0.0..1.0).contains(&edge_loss) {
                return err(format!("`topology.edge_loss` must be in [0, 1), got {edge_loss}"));
            }
        }
        if let TopologySpec::SparseSynthetic { hosts, mesh_k, .. } = self.topology {
            if mesh_k == 0 || mesh_k >= hosts {
                return err(format!(
                    "`topology.mesh_k` must be in 1..hosts ({hosts}), got {mesh_k}"
                ));
            }
            if hosts * mesh_k % 2 != 0 {
                return err(format!(
                    "`topology.mesh_k` ({mesh_k}) x `hosts` ({hosts}) must be even: \
                     no {mesh_k}-regular mesh exists on {hosts} hosts"
                ));
            }
        }
        match self.dissemination {
            DisseminationSpec::FullSnapshot => {}
            DisseminationSpec::Delta { max_age_probes } => {
                if max_age_probes == 0 {
                    return err("`dissemination.max_age_probes` must be at least 1 \
                         (it paces the anti-entropy full refresh)"
                        .into());
                }
            }
            DisseminationSpec::Gossip { fanout, interval_ms } => {
                if fanout == 0 || fanout >= self.topology.hosts() {
                    return err(format!(
                        "`dissemination.fanout` must be in 1..hosts ({}), got {fanout}",
                        self.topology.hosts()
                    ));
                }
                if interval_ms == 0 {
                    return err("`dissemination.interval_ms` must be at least 1".into());
                }
            }
        }
        let c = &self.calibration;
        if !(0.0..1.0).contains(&c.forward_drop) {
            return err(format!("`calibration.forward_drop` must be in [0, 1), got {}", c.forward_drop));
        }
        if !pos_range(c.wait_range_s) {
            return err(format!(
                "`calibration.wait_range_s` must be a positive ordered range, got {:?}",
                c.wait_range_s
            ));
        }
        // Floor, not just positivity: a microscopic (or zero, or NaN)
        // width used to be silently clamped deep in `SlicePlan::new`,
        // exploding a campaign into millions of slices — or one slice of
        // the wrong width — with no diagnostic.
        if !at_least(c.slice_hours, 1.0 / 3600.0) {
            return err(format!(
                "`calibration.slice_hours` must be at least 1/3600 (a one-second slice), got {}",
                c.slice_hours
            ));
        }
        if let Some(sr) = &self.impairments.shared_risk {
            if sr.groups == 0 || sr.hosts_per_group == 0 {
                return err("`shared_risk.groups` and `hosts_per_group` must be at least 1".into());
            }
            if sr.hosts_per_group > self.topology.hosts() {
                return err(format!(
                    "`shared_risk.hosts_per_group` ({}) exceeds the topology's {} hosts",
                    sr.hosts_per_group,
                    self.topology.hosts()
                ));
            }
            if sr.groups > 1_000 {
                return err(format!("`shared_risk.groups` must be at most 1000, got {}", sr.groups));
            }
            if !(at_least(sr.outages_per_day, 0.0) && at_most(sr.outages_per_day, 1_000.0)) {
                return err(format!("`shared_risk.outages_per_day` must be in [0, 1000], got {}", sr.outages_per_day));
            }
            if !pos_range(sr.down_mins) {
                return err(format!("`shared_risk.down_mins` must be a positive ordered range, got {:?}", sr.down_mins));
            }
            // Total-window bound: the planner pushes one window per
            // event onto *each* member's two access segments, so the
            // cap must include that fan-out (cf. load_wave's cycle cap).
            let events = sr.groups as f64 * sr.outages_per_day * self.horizon_days;
            let windows = events * sr.hosts_per_group as f64 * 2.0;
            if !at_most(windows, 1_000_000.0) {
                return err(format!(
                    "`shared_risk` compiles {windows:.0} scripted down-windows over the horizon \
                     (groups x outages_per_day x horizon_days x hosts_per_group x 2; \
                     at most 1000000)"
                ));
            }
        }
        if let Some(lw) = &self.impairments.load_wave {
            if !(positive(lw.period_hours) && positive(lw.dwell_mins) && at_least(lw.hot_factor, 1.0)) {
                return err(format!(
                    "`load_wave` needs positive period/dwell and hot_factor >= 1, got {lw:?}"
                ));
            }
            // The wave planner compiles horizon/period cycles of windows
            // per host; a microscopic period would allocate unboundedly.
            let cycles = self.horizon_days * 24.0 / lw.period_hours;
            if !at_most(cycles, 10_000.0) {
                return err(format!(
                    "`load_wave.period_hours` is too small: {cycles:.0} wave cycles over the \
                     horizon (at most 10000)"
                ));
            }
        }
        if let Some(fc) = &self.impairments.flash_crowd {
            if !(at_least(fc.events_per_day, 0.0) && at_most(fc.events_per_day, 1_000.0)) {
                return err(format!("`flash_crowd.events_per_day` must be in [0, 1000], got {}", fc.events_per_day));
            }
            if !pos_range(fc.duration_mins) {
                return err(format!("`flash_crowd.duration_mins` must be a positive ordered range, got {:?}", fc.duration_mins));
            }
            if !(at_least(fc.factor.0, 1.0) && fc.factor.1 >= fc.factor.0) {
                return err(format!("`flash_crowd.factor` must be an ordered range >= 1, got {:?}", fc.factor));
            }
            let events = fc.events_per_day * self.horizon_days;
            if !at_most(events, 10_000.0) {
                return err(format!(
                    "`flash_crowd` schedules {events:.0} events over the horizon (at most 10000)"
                ));
            }
        }
        if let Some(asym) = &self.impairments.asymmetry {
            if !positive(asym.loss_skew) {
                return err(format!("`asymmetry.loss_skew` must be positive, got {}", asym.loss_skew));
            }
            if !at_least(asym.delay_skew_ms, 0.0) {
                return err(format!("`asymmetry.delay_skew_ms` must be >= 0, got {}", asym.delay_skew_ms));
            }
        }
        Ok(())
    }

    /// A stable 64-bit digest over the spec's canonical JSON form.
    ///
    /// Stamped into every output and its fingerprint: reports compare
    /// equal only when they ran byte-identical conditions.
    pub fn digest(&self) -> u64 {
        let json = serde_json::to_string(self).expect("scenario specs always serialize");
        let mut f = Fnv::new();
        f.write(json.as_bytes());
        f.finish()
    }

    /// Builds the testbed: preset parameters, asymmetry skew applied
    /// before the build, scripted impairments compiled afterwards. Pure
    /// in `(self, seed)` — sharded slices rebuild it identically.
    pub fn topology(&self, seed: u64) -> Topology {
        let mut params = match self.topology {
            TopologySpec::Ron2003 => Topology::ron2003_params(),
            TopologySpec::Ron2002 => Topology::ron2002_params(),
            TopologySpec::Synthetic { edge_loss, .. }
            | TopologySpec::SparseSynthetic { edge_loss, .. } => {
                Topology::synthetic_params(edge_loss)
            }
        };
        params.horizon = self.horizon();
        if let Some(asym) = &self.impairments.asymmetry {
            asym.apply(&mut params);
        }
        let mut topo = match self.topology {
            TopologySpec::Ron2003 => Topology::ron2003_with(params, seed),
            TopologySpec::Ron2002 => Topology::ron2002_with(params, seed),
            TopologySpec::Synthetic { hosts, edge_loss } => {
                Topology::synthetic_with(hosts, edge_loss, params, seed)
            }
            TopologySpec::SparseSynthetic { hosts, edge_loss, mesh_k } => {
                let mut t = Topology::synthetic_with(hosts, edge_loss, params, seed);
                // Seed-derived: campaign entry points (run, run_sharded,
                // the distributed job) all build the topology with the
                // *master* seed, so every slice, shard and worker
                // derives the identical mesh.
                t.set_probe_mesh(netsim::sparse_mesh(hosts, mesh_k, seed));
                t
            }
        };
        if let Some(sr) = &self.impairments.shared_risk {
            apply_shared_risk(&mut topo, sr, seed);
        }
        if let Some(lw) = &self.impairments.load_wave {
            apply_load_wave(&mut topo, lw);
        }
        if let Some(fc) = &self.impairments.flash_crowd {
            apply_flash_crowds(&mut topo, fc, seed);
        }
        topo
    }

    /// The method set this scenario probes.
    pub fn methods(&self) -> MethodSet {
        self.methods.build()
    }

    /// Experiment configuration with an optional duration override.
    ///
    /// # Panics
    ///
    /// On a semantically invalid spec (see [`Self::validate`]) — a
    /// negative `days`, for instance, would otherwise clamp to a
    /// zero-length campaign and produce a silently empty — yet
    /// name-and-digest-stamped — report. Also panics when `duration`
    /// outruns [`horizon_days`](Self::horizon_days): the impairment and
    /// weather schedules are only compiled over the horizon, so the
    /// tail would run impairment-free while the output still carried
    /// this scenario's name and digest.
    pub fn config(&self, seed: u64, duration: Option<SimDuration>) -> ExperimentConfig {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
        let effective = duration.unwrap_or_else(|| self.paper_duration());
        let horizon = self.horizon();
        assert!(
            effective <= horizon,
            "scenario `{}`: duration {effective} outruns the {}-day impairment horizon",
            self.name,
            self.horizon_days
        );
        let mut cfg = ExperimentConfig::new(self.methods());
        cfg.seed = seed;
        cfg.duration = effective;
        cfg.round_trip = self.round_trip;
        cfg.forward_drop = self.calibration.forward_drop;
        cfg.wait_range_s = self.calibration.wait_range_s;
        cfg.flat_load = self.calibration.flat_load;
        cfg.slice_width = SimDuration::from_secs_f64(self.calibration.slice_hours * 3600.0);
        cfg.dissemination = self.dissemination.mode();
        cfg.scenario = self.name.clone();
        cfg.spec_digest = self.digest();
        cfg
    }

    /// Runs the scenario end to end.
    pub fn run(&self, seed: u64, duration: Option<SimDuration>) -> ExperimentOutput {
        run_experiment(self.topology(seed), self.config(seed, duration))
    }

    /// Runs the scenario on `shards` worker threads. The report is
    /// byte-identical for every `shards` value (see [`crate::shard`]).
    pub fn run_sharded(
        &self,
        seed: u64,
        duration: Option<SimDuration>,
        shards: usize,
    ) -> ExperimentOutput {
        let mut cfg = self.config(seed, duration);
        cfg.shards = shards;
        run_experiment(self.topology(seed), cfg)
    }
}

/// An open, ordered collection of named scenarios.
#[derive(Debug, Clone, Default)]
pub struct ScenarioRegistry {
    entries: Vec<ScenarioSpec>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        ScenarioRegistry { entries: Vec::new() }
    }

    /// The built-in catalog: the three paper campaigns plus the
    /// synthetic stress scenarios.
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        for spec in builtin_specs() {
            r.register(spec).expect("builtin scenario names are unique");
        }
        r
    }

    /// Adds a scenario; rejects duplicate or empty names and
    /// semantically invalid specs (see [`ScenarioSpec::validate`]).
    pub fn register(&mut self, spec: ScenarioSpec) -> Result<(), String> {
        if spec.name.is_empty() {
            return Err("scenario name must not be empty".to_string());
        }
        if self.get(&spec.name).is_some() {
            return Err(format!("scenario `{}` is already registered", spec.name));
        }
        spec.validate()?;
        self.entries.push(spec);
        Ok(())
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioSpec> {
        self.entries.iter().find(|s| s.name == name)
    }

    /// All scenarios, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &ScenarioSpec> {
        self.entries.iter()
    }

    /// Registered names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|s| s.name.as_str()).collect()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn paper(name: &str, summary: &str, topology: TopologySpec, methods: MethodsSpec) -> ScenarioSpec {
    ScenarioSpec {
        name: name.to_string(),
        summary: summary.to_string(),
        topology,
        methods,
        days: 0.0,         // campaign length set by the caller
        horizon_days: 0.0, // ditto
        round_trip: false,
        impairments: ImpairmentPlan::none(),
        calibration: Calibration::default(),
        dissemination: DisseminationSpec::FullSnapshot,
    }
}

/// The built-in scenario catalog.
pub fn builtin_specs() -> Vec<ScenarioSpec> {
    let mut ron2003 = paper(
        "ron2003",
        "the paper's RON2003 campaign: 30 hosts, 14 days, one-way, 8 Table-5 rows",
        TopologySpec::Ron2003,
        MethodsSpec::Ron2003,
    );
    ron2003.days = 14.0;
    ron2003.horizon_days = 14.0;

    let mut narrow = paper(
        "ron-narrow",
        "the paper's RONnarrow 2002 campaign: 17 hosts, 4 days, one-way, 3 methods",
        TopologySpec::Ron2002,
        MethodsSpec::RonNarrow,
    );
    narrow.days = 4.0;
    // The 2002 preset scripts its weather over the deployment's full 5
    // days (both 2002 datasets share one testbed era).
    narrow.horizon_days = 5.0;

    let mut wide = paper(
        "ron-wide",
        "the paper's RONwide 2002 campaign: 17 hosts, 5 days, round-trip, 12 combos",
        TopologySpec::Ron2002,
        MethodsSpec::RonWide,
    );
    wide.days = 5.0;
    wide.horizon_days = 5.0;
    wide.round_trip = true;

    let mut correlated = paper(
        "correlated-outages",
        "shared-risk link groups fail together: multipath's independence assumption breaks",
        TopologySpec::Ron2003,
        MethodsSpec::Ron2003,
    );
    correlated.days = 7.0;
    correlated.horizon_days = 7.0;
    correlated.impairments.shared_risk = Some(SharedRiskSpec {
        groups: 4,
        hosts_per_group: 5,
        outages_per_day: 3.0,
        down_mins: (3.0, 25.0),
    });

    let mut waves = paper(
        "load-waves",
        "a congestion hot spot sweeps all hosts daily: reactive routing chases a moving target",
        TopologySpec::Ron2003,
        MethodsSpec::Ron2003,
    );
    waves.days = 7.0;
    waves.horizon_days = 7.0;
    waves.impairments.load_wave =
        Some(LoadWaveSpec { period_hours: 24.0, dwell_mins: 90.0, hot_factor: 35.0 });

    let mut asym = paper(
        "asymmetric-paths",
        "forward direction 3x dirtier and 30 ms slower than reverse: one-way views diverge",
        TopologySpec::Ron2003,
        MethodsSpec::Ron2003,
    );
    asym.days = 7.0;
    asym.horizon_days = 7.0;
    asym.impairments.asymmetry = Some(AsymmetrySpec { loss_skew: 3.0, delay_skew_ms: 30.0 });

    let mut flash = paper(
        "flash-crowd",
        "demand spikes converge on single destinations: detours dodge the core, not the edge",
        TopologySpec::Ron2003,
        MethodsSpec::Ron2003,
    );
    flash.days = 7.0;
    flash.horizon_days = 7.0;
    flash.impairments.flash_crowd = Some(FlashCrowdSpec {
        events_per_day: 6.0,
        duration_mins: (15.0, 45.0),
        factor: (150.0, 400.0),
    });

    let mut sparse = paper(
        "sparse-mesh",
        "120 hosts on a sparse 6-regular probe mesh: the clique replaced by the scaling knob",
        TopologySpec::SparseSynthetic { hosts: 120, edge_loss: 0.02, mesh_k: 6 },
        MethodsSpec::Ron2003,
    );
    sparse.days = 7.0;
    sparse.horizon_days = 7.0;

    vec![ron2003, narrow, wide, correlated, waves, asym, flash, sparse]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_catalog_has_paper_and_stress_entries() {
        let r = ScenarioRegistry::builtin();
        assert!(r.len() >= 7, "3 paper + >= 4 stress, got {}", r.len());
        for name in [
            "ron2003",
            "ron-narrow",
            "ron-wide",
            "correlated-outages",
            "load-waves",
            "asymmetric-paths",
            "flash-crowd",
            "sparse-mesh",
        ] {
            assert!(r.get(name).is_some(), "missing builtin `{name}`");
        }
        assert!(!r.is_empty());
    }

    #[test]
    fn paper_scenarios_match_the_dataset_shapes() {
        let r = ScenarioRegistry::builtin();
        let ron2003 = r.get("ron2003").unwrap();
        assert_eq!(ron2003.topology(1).n(), 30);
        assert_eq!(ron2003.methods().total(), 8);
        assert_eq!(ron2003.paper_duration(), SimDuration::from_days(14));
        let narrow = r.get("ron-narrow").unwrap();
        assert_eq!(narrow.topology(1).n(), 17);
        assert_eq!(narrow.methods().total(), 5);
        let wide = r.get("ron-wide").unwrap();
        assert_eq!(wide.methods().total(), 12);
        assert!(wide.round_trip && !narrow.round_trip);
    }

    #[test]
    fn registry_rejects_duplicates_and_empty_names() {
        let mut r = ScenarioRegistry::builtin();
        let dup = r.get("ron2003").unwrap().clone();
        assert!(r.register(dup).unwrap_err().contains("already registered"));
        let mut anon = r.get("ron2003").unwrap().clone();
        anon.name = String::new();
        assert!(r.register(anon).is_err());
    }

    #[test]
    fn validate_catches_semantic_nonsense_with_readable_errors() {
        let base = ScenarioRegistry::builtin().get("ron2003").unwrap().clone();
        assert!(base.validate().is_ok(), "builtins must validate");

        let mut one_host = base.clone();
        one_host.topology = TopologySpec::Synthetic { hosts: 1, edge_loss: 0.01 };
        assert!(one_host.validate().unwrap_err().contains("at least 2"));

        let mut zero_skew = base.clone();
        zero_skew.impairments.asymmetry =
            Some(AsymmetrySpec { loss_skew: 0.0, delay_skew_ms: 0.0 });
        assert!(zero_skew.validate().unwrap_err().contains("loss_skew"));

        let mut bad_wait = base.clone();
        bad_wait.calibration.wait_range_s = (1.2, 0.6);
        assert!(bad_wait.validate().unwrap_err().contains("wait_range_s"));

        let mut bad_days = base.clone();
        bad_days.days = -1.0;
        let err = bad_days.validate().unwrap_err();
        assert!(err.contains("`days`") && err.contains("ron2003"), "got: {err}");

        // Unbounded-allocation guards: a microscopic wave period or an
        // absurd horizon must be rejected, not compiled.
        let mut tiny_period = base.clone();
        tiny_period.impairments.load_wave =
            Some(LoadWaveSpec { period_hours: 1e-8, dwell_mins: 60.0, hot_factor: 35.0 });
        assert!(tiny_period.validate().unwrap_err().contains("period_hours"));
        let mut huge_horizon = base.clone();
        huge_horizon.horizon_days = 1e9;
        assert!(huge_horizon.validate().unwrap_err().contains("horizon_days"));
        let mut event_flood = base.clone();
        event_flood.impairments.shared_risk = Some(SharedRiskSpec {
            groups: 1000,
            hosts_per_group: 5,
            outages_per_day: 1000.0,
            down_mins: (1.0, 2.0),
        });
        assert!(event_flood.validate().unwrap_err().contains("scripted down-windows"));
        let mut oversize_group = base.clone();
        oversize_group.impairments.shared_risk = Some(SharedRiskSpec {
            groups: 1,
            hosts_per_group: 50, // ron2003 has 30 hosts
            outages_per_day: 1.0,
            down_mins: (1.0, 2.0),
        });
        assert!(oversize_group.validate().unwrap_err().contains("exceeds the topology"));
        let mut outlives = base;
        outlives.days = outlives.horizon_days * 2.0;
        assert!(outlives.validate().unwrap_err().contains("horizon_days"));

        // The registry refuses to hold an invalid spec.
        let mut r = ScenarioRegistry::empty();
        let mut invalid = ScenarioRegistry::builtin().get("ron2003").unwrap().clone();
        invalid.days = 0.0;
        assert!(r.register(invalid).is_err());
    }

    #[test]
    fn digest_tracks_spec_content() {
        let r = ScenarioRegistry::builtin();
        let a = r.get("ron2003").unwrap().digest();
        assert_eq!(a, r.get("ron2003").unwrap().digest(), "digest is stable");
        let mut tweaked = r.get("ron2003").unwrap().clone();
        tweaked.calibration.forward_drop += 1e-4;
        assert_ne!(a, tweaked.digest(), "any spec change must move the digest");
        assert_ne!(a, r.get("ron-narrow").unwrap().digest());
    }

    #[test]
    fn sparse_synthetic_validates_and_round_trips() {
        let base = ScenarioRegistry::builtin().get("sparse-mesh").unwrap().clone();
        assert!(base.validate().is_ok(), "builtin sparse-mesh must validate");
        assert_eq!(base.topology.mesh_k(), Some(6));
        assert_eq!(base.topology.hosts(), 120);

        let with_mesh = |hosts, mesh_k| {
            let mut s = base.clone();
            s.topology = TopologySpec::SparseSynthetic { hosts, edge_loss: 0.02, mesh_k };
            s
        };
        let err = with_mesh(10, 0).validate().unwrap_err();
        assert!(err.contains("mesh_k") && err.contains("1..hosts"), "got: {err}");
        let err = with_mesh(10, 10).validate().unwrap_err();
        assert!(err.contains("1..hosts"), "got: {err}");
        // Graph parity: no 3-regular mesh exists on 9 hosts.
        let err = with_mesh(9, 3).validate().unwrap_err();
        assert!(err.contains("must be even"), "got: {err}");
        assert!(with_mesh(9, 4).validate().is_ok(), "9 x 4 is even and fine");

        // JSON round trip with a stable digest, and the mesh degree is
        // part of the identity: a clique twin must not collide.
        let json = serde_json::to_string(&base).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, base);
        assert_eq!(back.digest(), base.digest());
        let mut clique = base.clone();
        clique.topology = TopologySpec::Synthetic { hosts: 120, edge_loss: 0.02 };
        assert_ne!(clique.digest(), base.digest());
        assert_ne!(with_mesh(120, 8).digest(), base.digest());
    }

    #[test]
    fn dissemination_field_is_invisible_until_it_departs_from_default() {
        let base = ScenarioRegistry::builtin().get("ron2003").unwrap().clone();
        assert!(base.dissemination.is_default());
        let json = serde_json::to_string(&base).unwrap();
        assert!(
            !json.contains("dissemination"),
            "default dissemination must stay off the wire (digest stability): {json}"
        );
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, base, "omitted field deserializes to the default");

        // Non-default modes round-trip with a moved digest.
        for mode in [
            DisseminationSpec::Delta { max_age_probes: 16 },
            DisseminationSpec::Gossip { fanout: 3, interval_ms: 15_000 },
        ] {
            let mut tweaked = base.clone();
            tweaked.dissemination = mode;
            assert!(tweaked.validate().is_ok(), "{mode:?} must validate");
            let json = serde_json::to_string(&tweaked).unwrap();
            assert!(json.contains("dissemination"), "got: {json}");
            let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, tweaked);
            assert_ne!(tweaked.digest(), base.digest(), "the knob is part of the identity");
            assert_eq!(back.digest(), tweaked.digest());
        }
    }

    #[test]
    fn dissemination_validation_rejects_degenerate_knobs() {
        let base = ScenarioRegistry::builtin().get("ron2003").unwrap().clone();
        let mut zero_age = base.clone();
        zero_age.dissemination = DisseminationSpec::Delta { max_age_probes: 0 };
        assert!(zero_age.validate().unwrap_err().contains("max_age_probes"));
        let mut zero_fanout = base.clone();
        zero_fanout.dissemination = DisseminationSpec::Gossip { fanout: 0, interval_ms: 1000 };
        assert!(zero_fanout.validate().unwrap_err().contains("fanout"));
        let mut wide_fanout = base.clone();
        wide_fanout.dissemination = DisseminationSpec::Gossip { fanout: 30, interval_ms: 1000 };
        assert!(
            wide_fanout.validate().unwrap_err().contains("1..hosts"),
            "fanout must leave room for distinct peers"
        );
        let mut zero_interval = base;
        zero_interval.dissemination = DisseminationSpec::Gossip { fanout: 3, interval_ms: 0 };
        assert!(zero_interval.validate().unwrap_err().contains("interval_ms"));
    }

    #[test]
    fn dissemination_spec_reaches_the_experiment_config() {
        let mut spec = paper(
            "tiny-delta",
            "unit-test delta dissemination scenario",
            TopologySpec::Synthetic { hosts: 4, edge_loss: 0.0 },
            MethodsSpec::RonNarrow,
        );
        spec.days = 0.02;
        spec.horizon_days = 0.02;
        spec.calibration.flat_load = true;
        spec.dissemination = DisseminationSpec::Delta { max_age_probes: 8 };
        let cfg = spec.config(3, None);
        assert_eq!(cfg.dissemination, DisseminationMode::Delta { max_age_probes: 8 });
        let out = spec.run(3, None);
        assert!(out.measure_legs > 0, "delta-mode scenario must still measure");
    }

    #[test]
    fn sparse_mesh_scenario_probes_only_mesh_pairs() {
        use crate::method::{MethodSpec, MethodSetSpec};
        use netsim::HostId;
        use overlay::RouteTag;
        let (hosts, mesh_k, seed) = (10usize, 3usize, 7u64);
        let mut spec = paper(
            "tiny-sparse",
            "unit-test sparse-mesh scenario",
            TopologySpec::SparseSynthetic { hosts, edge_loss: 0.02, mesh_k },
            MethodsSpec::Custom(MethodSetSpec {
                methods: vec![MethodSpec {
                    name: "direct".into(),
                    legs: vec![RouteTag::Direct],
                    gap_ms: 0.0,
                    distinct: false,
                    all_prior: false,
                }],
                views: vec![],
            }),
        );
        spec.days = 0.02;
        spec.horizon_days = 0.02;
        spec.calibration.flat_load = true;
        spec.validate().expect("sparse spec validates");
        let out = spec.run(seed, None);
        assert!(out.measure_legs > 0, "the sparse run must move traffic");
        // The campaign entry point derives the mesh from the master
        // seed, so this reconstruction is exact — and core pair
        // scheduling must never have probed outside it.
        let mesh = netsim::sparse_mesh(hosts, mesh_k, seed);
        let (mut on, mut off) = (0u64, 0u64);
        for (src, nbrs) in mesh.iter().enumerate() {
            for dst in 0..hosts {
                if src == dst {
                    continue;
                }
                let pairs = out.loss.cell(0, HostId(src as u16), HostId(dst as u16)).pairs;
                if nbrs.contains(&(dst as u16)) {
                    on += pairs;
                } else {
                    assert_eq!(
                        pairs, 0,
                        "probe traffic outside the mesh: {src} -> {dst} saw {pairs} pairs"
                    );
                    off += 1;
                }
            }
        }
        assert!(on > 100, "mesh pairs must carry the whole campaign, got {on}");
        // 3-regular on 10 hosts: 6 of each host's 9 peers are off-mesh.
        assert_eq!(off as usize, hosts * (hosts - 1 - mesh_k));
    }

    #[test]
    fn slice_hours_below_one_second_is_rejected() {
        let base = ScenarioRegistry::builtin().get("ron2003").unwrap().clone();
        for bad in [0.0, -1.0, 1e-9, f64::NAN] {
            let mut spec = base.clone();
            spec.calibration.slice_hours = bad;
            let err = spec.validate().unwrap_err();
            assert!(err.contains("slice_hours"), "slice_hours = {bad}: got {err}");
        }
        // The floor itself (a one-second slice) is legal.
        let mut floor = base;
        floor.calibration.slice_hours = 1.0 / 3600.0;
        assert!(floor.validate().is_ok());
    }

    #[test]
    fn duration_exactly_on_the_horizon_validates_everywhere() {
        // Regression: the scenario and job layers used to convert
        // `horizon_days` to a duration independently; with a fractional
        // horizon the two float paths could disagree by one ulp, so a
        // campaign pinned to exactly the horizon validated on one layer
        // and failed on the other. Both now share `ScenarioSpec::horizon`.
        let mut spec = ScenarioRegistry::builtin().get("ron2003").unwrap().clone();
        spec.days = 0.1; // 0.1 * 86 400 is not exactly representable
        spec.horizon_days = 0.1;
        spec.validate().expect("spec validates");
        let exact = spec.horizon();
        let _ = spec.config(1, Some(exact)); // must not panic
        let job = crate::distrib::CampaignJob {
            spec: spec.clone(),
            seed: 1,
            duration_us: exact.as_micros(),
            slice_width_us: 0,
        };
        job.validate().expect("exact-horizon job must validate on the wire side too");
        // One microsecond past the horizon still fails on both layers.
        let over = crate::distrib::CampaignJob { duration_us: exact.as_micros() + 1, ..job };
        assert!(over.validate().unwrap_err().contains("outruns"));
    }

    #[test]
    fn stress_scenarios_actually_impair_the_testbed() {
        let r = ScenarioRegistry::builtin();
        let sr = r.get("correlated-outages").unwrap().topology(1);
        assert!(
            sr.specs().iter().any(|s| !s.down.is_empty()),
            "shared-risk windows missing"
        );
        let lw = r.get("load-waves").unwrap().topology(1);
        let waves: usize = lw.specs().iter().map(|s| s.hot.len()).sum();
        let base: usize = Topology::ron2003(1).specs().iter().map(|s| s.hot.len()).sum();
        assert!(waves > base, "load wave adds hot windows ({waves} vs {base})");
        let asym = r.get("asymmetric-paths").unwrap().topology(1);
        assert!((asym.params().dir_loss_skew - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "`days` must be positive")]
    fn running_an_invalid_spec_panics_instead_of_silently_doing_nothing() {
        let mut spec = ScenarioRegistry::builtin().get("ron2003").unwrap().clone();
        spec.days = -1.0; // would clamp to a zero-length campaign
        let _ = spec.config(1, None);
    }

    #[test]
    fn probe_leg_caps_agree_across_crates() {
        // `trace` and `overlay` are sibling crates, so the wire cap is
        // duplicated; this is the pin that keeps the copies equal.
        assert_eq!(overlay::MAX_PROBE_LEGS, trace::record::MAX_PROBE_LEGS);
    }

    #[test]
    fn custom_method_scenario_runs_a_3_redundant_probe() {
        use crate::method::{MethodSpec, MethodSetSpec, ViewSpec};
        use overlay::RouteTag;
        let set = MethodSetSpec {
            methods: vec![
                MethodSpec {
                    name: "direct".into(),
                    legs: vec![RouteTag::Direct],
                    gap_ms: 0.0,
                    distinct: false,
                    all_prior: false,
                },
                MethodSpec {
                    name: "triple rand".into(),
                    legs: vec![RouteTag::Direct, RouteTag::Rand, RouteTag::Rand],
                    gap_ms: 0.0,
                    distinct: true,
                    all_prior: false,
                },
            ],
            views: vec![ViewSpec { name: "triple rand*".into(), source: 1, leg: 0 }],
        };
        let mut spec = paper(
            "tiny-triple",
            "unit-test 3-redundant scenario",
            TopologySpec::Synthetic { hosts: 5, edge_loss: 0.02 },
            MethodsSpec::Custom(set),
        );
        spec.days = 0.05;
        spec.horizon_days = 0.05;
        spec.calibration.flat_load = true;
        spec.validate().expect("custom spec validates");
        let out = spec.run(3, None);
        assert_eq!(out.names, vec!["direct", "triple rand", "triple rand*"]);
        assert_eq!(out.loss.depth(), 3);
        let t = out.summary("triple rand").unwrap();
        assert!(t.pairs > 100, "the 3-leg method must actually probe");
        let curve = out.loss.best_of_first_pct(out.index_of("triple rand").unwrap());
        assert_eq!(curve.len(), 3);
        assert!(
            curve.windows(2).all(|w| w[1] <= w[0]),
            "redundancy can only help: {curve:?}"
        );
        assert!(
            (curve[2] - t.totlp).abs() < 1e-9,
            "best-of-first-k equals end-to-end loss"
        );
        // The view mirrors the first leg of the triple.
        let v = out.summary("triple rand*").unwrap();
        assert_eq!(v.pairs, t.pairs);
        // And the spec round-trips through JSON with a stable digest.
        let json = serde_json::to_string(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.digest(), spec.digest());
    }

    #[test]
    fn invalid_custom_methods_fail_at_resolve_time_with_named_fields() {
        use crate::method::{MethodSpec, MethodSetSpec, ViewSpec};
        use overlay::RouteTag;
        let mut spec = ScenarioRegistry::builtin().get("ron2003").unwrap().clone();
        spec.methods = MethodsSpec::Custom(MethodSetSpec {
            methods: vec![MethodSpec {
                name: "m".into(),
                legs: vec![RouteTag::Direct],
                gap_ms: 0.0,
                distinct: false,
                all_prior: false,
            }],
            views: vec![ViewSpec { name: "v".into(), source: 0, leg: 2 }],
        });
        let e = spec.validate().unwrap_err();
        assert!(e.contains("`methods`") && e.contains("leg 2"), "got: {e}");
        // The registry refuses it too — nothing reaches the runner.
        assert!(ScenarioRegistry::empty().register(spec).is_err());
    }

    #[test]
    fn scenario_run_stamps_name_and_digest() {
        let mut spec = paper(
            "tiny",
            "unit-test scenario",
            TopologySpec::Synthetic { hosts: 4, edge_loss: 0.0 },
            MethodsSpec::RonNarrow,
        );
        spec.days = 0.02;
        spec.horizon_days = 0.02;
        spec.calibration.flat_load = true;
        let out = spec.run(3, None);
        assert_eq!(out.scenario, "tiny");
        assert_eq!(out.spec_digest, spec.digest());
        assert!(out.measure_legs > 0);
    }
}
