//! Deterministic sharded execution of the measurement campaign.
//!
//! The paper's headline tables replay *weeks* of probe traffic —
//! millions of (src, dst) probe pairs that a single thread simulates
//! sequentially. This module splits that workload so it can run on many
//! cores **without changing a single output bit**.
//!
//! # The slice plan
//!
//! A campaign of duration `D` with slice width `W`
//! ([`ExperimentConfig::slice_width`]) is partitioned into
//! `M = ceil(D / W)` consecutive **slices**. Slice `k` covers the
//! absolute interval `[k·W, min((k+1)·W, D))` and is simulated as a
//! fully independent sub-experiment:
//!
//! * its own RNG universe, seeded with
//!   `Rng::new(seed).stream_seed(k)` (the splittable-stream API of
//!   [`netsim::rng`]) so no slice can replay the master stream or a
//!   sibling;
//! * its own [`netsim::EventQueue`], [`netsim::Network`] segment state,
//!   overlay nodes and [`trace::Collector`];
//! * the *true* campaign clock: events run at the slice's absolute time
//!   offset, so the diurnal load profile, host clock skews and the
//!   window accumulators all see the real timeline (the lazily
//!   initialised loss/outage chains start from their stationary
//!   distribution at first observation, so an offset start costs
//!   nothing).
//!
//! Per-slice accumulators are then merged **in ascending slice order**
//! ([`crate::report::merge_outputs`]): u64 counters sum exactly, and
//! the f64 latency sums always fold in the same order, so the merged
//! report is bit-stable.
//!
//! # The determinism invariant
//!
//! **Results depend on `(seed, duration, slice_width)` and never on
//! [`ExperimentConfig::shards`].** Shards are worker threads pulling
//! slice indices from a shared counter; each result lands in its
//! slice's slot and the merge walks the slots in order, so thread
//! scheduling is invisible. `shards = 8` on a laptop, `shards = 1` in
//! CI and `shards = 96` on a build server all produce byte-identical
//! reports — `tests/sharding_equivalence.rs` and a property test
//! enforce this for every dataset configuration.
//!
//! A campaign no longer than one slice (`M = 1` — every unit test and
//! any classic short run) is executed exactly as the historical
//! sequential runner with the master seed itself, so pre-sharding
//! results are preserved bit for bit.

use crate::experiment::{run_slice, run_slice_diag, ExperimentConfig, ExperimentOutput};
use crate::report;
use netsim::{Rng, SimDuration, SimTime, Topology};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One independently simulated slice of the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slice {
    /// Position in the campaign (and in the merge order).
    pub index: usize,
    /// Absolute start of the slice's measurement period.
    pub start: SimTime,
    /// Length of the slice's measurement period.
    pub duration: SimDuration,
    /// The slice's RNG-universe seed.
    pub seed: u64,
}

/// The deterministic decomposition of one campaign into slices.
///
/// The plan is a pure function of the experiment configuration — it
/// does not know how many worker threads will execute it.
#[derive(Debug, Clone)]
pub struct SlicePlan {
    slices: Vec<Slice>,
}

impl SlicePlan {
    /// Computes the slice plan for `cfg`.
    ///
    /// # Panics
    ///
    /// On a zero `slice_width`. The width used to be silently clamped
    /// to 1 µs, turning a default-free config into one slice *per
    /// microsecond of campaign* — validation at the scenario
    /// ([`crate::scenario::ScenarioSpec::validate`]) and job
    /// ([`crate::distrib::CampaignJob::validate`]) layers reports this
    /// readably before any plan is built; the assert is the backstop
    /// for hand-assembled configs.
    pub fn new(cfg: &ExperimentConfig) -> SlicePlan {
        assert!(
            cfg.slice_width.as_micros() > 0,
            "slice_width must be positive (a zero width would make one slice per microsecond)"
        );
        let width = cfg.slice_width.as_micros();
        let total = cfg.duration.as_micros();
        let m = total.div_ceil(width).max(1);
        if m == 1 {
            // Classic sequential run: master seed, epoch start. Keeping
            // the master seed here preserves historical results bit for
            // bit for every short (single-slice) experiment.
            return SlicePlan {
                slices: vec![Slice {
                    index: 0,
                    start: SimTime::ZERO,
                    duration: cfg.duration,
                    seed: cfg.seed,
                }],
            };
        }
        let master = Rng::new(cfg.seed);
        let slices = (0..m)
            .map(|k| {
                let start_us = k * width;
                Slice {
                    index: k as usize,
                    start: SimTime::from_micros(start_us),
                    duration: SimDuration::from_micros((total - start_us).min(width)),
                    seed: master.stream_seed(k),
                }
            })
            .collect();
        SlicePlan { slices }
    }

    /// The slices, in campaign (= merge) order.
    pub fn slices(&self) -> &[Slice] {
        &self.slices
    }

    /// Number of slices.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Plans are never empty.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }
}

/// The effective worker-thread count for `cfg`: an explicit
/// [`ExperimentConfig::shards`], else the `MPATH_SHARDS` environment
/// variable (the CI toggle), else 1.
pub fn resolve_shards(cfg: &ExperimentConfig) -> usize {
    if cfg.shards > 0 {
        return cfg.shards;
    }
    std::env::var("MPATH_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(1)
}

/// Executes the campaign's slice plan on up to `shards` worker threads
/// and merges the per-slice outputs in slice order.
///
/// This is the engine behind [`crate::run_experiment`]; the output is
/// byte-identical for every shard count.
pub fn run_sharded(topo: Topology, cfg: ExperimentConfig) -> ExperimentOutput {
    let plan = SlicePlan::new(&cfg);
    let workers = resolve_shards(&cfg).min(plan.len()).max(1);
    let slice_cfg = |s: &Slice| {
        let mut c = cfg.clone();
        c.seed = s.seed;
        c.duration = s.duration;
        c
    };
    let outputs: Vec<ExperimentOutput> = if workers == 1 {
        // Move the topology into the last slice instead of cloning it:
        // a large mesh's segment table is by far the biggest allocation
        // in the process, and the single-slice case (every short run)
        // used to copy it once for nothing.
        let mut topo = Some(topo);
        let last = plan.len() - 1;
        plan.slices()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let t =
                    if i == last { topo.take().expect("last slice runs once") } else { topo.as_ref().expect("topology lives until the last slice").clone() };
                run_slice(t, slice_cfg(s), s.start)
            })
            .collect()
    } else {
        // Work-stealing over slice indices. Scheduling decides only
        // *when* a slice runs; its result always lands in slot `index`
        // and the merge below walks slots in order, so the output is
        // schedule-invariant.
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<ExperimentOutput>>> =
            plan.slices().iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    let Some(s) = plan.slices().get(k) else { break };
                    let out = run_slice(topo.clone(), slice_cfg(s), s.start);
                    *results[k].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().expect("result slot poisoned").expect("slice ran"))
            .collect()
    };
    report::merge_outputs(outputs)
}

/// Out-of-band diagnostics from a campaign run. Nothing here crosses
/// the wire or feeds a fingerprint — the struct exists so the scaling
/// harness can *measure* memory claims instead of asserting them.
#[derive(Debug, Clone, Copy, Default)]
pub struct CampaignDiag {
    /// Largest per-slice sum (over all nodes) of
    /// [`overlay::table::LinkStateTable::approx_bytes`], sampled at each
    /// slice's end.
    pub peak_table_bytes: u64,
}

/// [`run_sharded`] with a diagnostic side channel. Runs the slice plan
/// sequentially (the diagnostics consumer is the scaling harness, which
/// runs one slice anyway); the report is byte-identical to
/// [`run_sharded`] at any shard count because the merge order is the
/// slice order either way.
pub fn run_sharded_diag(topo: Topology, cfg: ExperimentConfig) -> (ExperimentOutput, CampaignDiag) {
    let plan = SlicePlan::new(&cfg);
    let slice_cfg = |s: &Slice| {
        let mut c = cfg.clone();
        c.seed = s.seed;
        c.duration = s.duration;
        c
    };
    let mut topo = Some(topo);
    let last = plan.len() - 1;
    let mut diag = CampaignDiag::default();
    let outputs: Vec<ExperimentOutput> = plan
        .slices()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let t = if i == last {
                topo.take().expect("last slice runs once")
            } else {
                topo.as_ref().expect("topology lives until the last slice").clone()
            };
            let (out, table_bytes) = run_slice_diag(t, slice_cfg(s), s.start);
            diag.peak_table_bytes = diag.peak_table_bytes.max(table_bytes);
            out
        })
        .collect();
    (report::merge_outputs(outputs), diag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::MethodSet;
    use netsim::Topology;

    fn cfg(mins: u64, width_mins: u64) -> ExperimentConfig {
        let mut c = ExperimentConfig::new(MethodSet::ron_narrow());
        c.duration = SimDuration::from_mins(mins);
        c.slice_width = SimDuration::from_mins(width_mins);
        c.seed = 5;
        c.flat_load = true;
        c
    }

    #[test]
    fn single_slice_plan_keeps_master_seed() {
        let p = SlicePlan::new(&cfg(10, 60));
        assert_eq!(p.len(), 1);
        assert_eq!(p.slices()[0].seed, 5);
        assert_eq!(p.slices()[0].start, SimTime::ZERO);
        assert!(!p.is_empty());
    }

    #[test]
    fn multi_slice_plan_partitions_exactly() {
        let p = SlicePlan::new(&cfg(50, 20));
        assert_eq!(p.len(), 3);
        let s = p.slices();
        assert_eq!(s[0].start, SimTime::ZERO);
        assert_eq!(s[1].start, SimTime::from_secs(20 * 60));
        assert_eq!(s[2].start, SimTime::from_secs(40 * 60));
        assert_eq!(s[2].duration, SimDuration::from_mins(10), "tail slice is short");
        let total: u64 = s.iter().map(|x| x.duration.as_micros()).sum();
        assert_eq!(total, SimDuration::from_mins(50).as_micros());
        // Derived seeds: none equals the master, all distinct.
        assert!(s.iter().all(|x| x.seed != 5));
        assert_ne!(s[0].seed, s[1].seed);
        assert_ne!(s[1].seed, s[2].seed);
    }

    #[test]
    #[should_panic(expected = "slice_width must be positive")]
    fn zero_slice_width_panics_instead_of_a_slice_per_microsecond() {
        // Regression: a zero width used to be silently clamped to 1 µs,
        // exploding the plan into one slice per microsecond of campaign.
        let mut c = cfg(10, 1);
        c.slice_width = SimDuration::from_micros(0);
        let _ = SlicePlan::new(&c);
    }

    #[test]
    fn plan_is_independent_of_shards() {
        let mut a = cfg(50, 20);
        a.shards = 1;
        let mut b = cfg(50, 20);
        b.shards = 7;
        assert_eq!(SlicePlan::new(&a).slices(), SlicePlan::new(&b).slices());
    }

    #[test]
    fn explicit_shards_beat_env() {
        let mut c = cfg(10, 60);
        c.shards = 3;
        assert_eq!(resolve_shards(&c), 3);
    }

    #[test]
    fn sharded_output_matches_sequential_bit_for_bit() {
        let run = |shards: usize| {
            let topo = Topology::synthetic(4, 0.02, 5);
            let mut c = cfg(8, 2); // 4 slices
            c.shards = shards;
            run_sharded(topo, c)
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.fingerprint(), par.fingerprint());
        assert!(seq.measure_legs > 0, "the sliced run must move traffic");
    }
}
