//! Distributed campaign runner: slices over TCP, byte-identical merge.
//!
//! [`crate::shard`] proved that a campaign is a pure function of
//! `(spec, seed, duration, slice_width)`: the slice plan is computed
//! from the configuration alone, every slice simulates independently,
//! and an index-ordered merge is bit-stable. This module stretches that
//! invariant across *processes and hosts*: a *coordinator*
//! ([`serve_campaign`]) owns the slice plan and farms slice **indices**
//! to *workers* ([`run_worker`]) over a small TCP protocol; each worker
//! rebuilds the identical plan locally from the [`CampaignJob`] it
//! received at handshake, simulates the leased slice, and ships the
//! [`ExperimentOutput`] back. The coordinator merges results in slice
//! order with [`crate::report::merge_outputs`] — the same fold the
//! in-process sharded runner uses — so the distributed report is
//! byte-identical to `run_sharded` on one machine, for any number of
//! workers, joining and leaving in any order.
//!
//! # Wire format
//!
//! Every message is one *frame*: a 4-byte big-endian length prefix
//! followed by that many bytes of UTF-8 JSON encoding a [`Msg`]
//! (externally tagged, like every serde type in this workspace).
//! Numbers that must survive the trip exactly (accumulator counters,
//! f64 latency sums) ride the same serde impls the on-disk scenario
//! files use: floats are printed with round-trip precision, so a
//! deserialized output merges to the same bits as one that never left
//! the process. Two version numbers are pinned at handshake and
//! rejected loudly on mismatch: [`PROTO_VERSION`] (the message grammar)
//! and [`crate::experiment::OUTPUT_WIRE_VERSION`] (the output schema).
//!
//! # Protocol
//!
//! ```text
//! worker                          coordinator
//!   | -- Hello{proto, output_wire} -> |       handshake
//!   | <- Job{job} | Deny{reason} ---- |
//!   | -- Ready ---------------------> |       lease loop
//!   | <- Lease{slice} | Wait | Done - |
//!   | -- Heartbeat{slice} ----------> |       while simulating
//!   | -- Result{slice, output} -----> |
//!   | -- Ready ---------------------> |       ... until Done
//! ```
//!
//! A worker may pipeline: it holds up to [`WorkerOptions::jobs`] leases
//! at once (acquired by extra `Ready` round-trips), simulates them on a
//! local thread pool, and ships each `Result` as that slice finishes.
//! The grammar is unchanged — the coordinator already tracked leases per
//! slice, heartbeats already named their slice, and results were always
//! slice-indexed — so a pipelined worker and a sequential one are
//! indistinguishable on the wire except for frame interleaving.
//!
//! # Failure semantics
//!
//! Leases expire. A worker that dies mid-slice (its connection drops)
//! has its leases zeroed immediately; one that merely stalls stops
//! heartbeating and its lease times out. Either way the next `Ready`
//! from any worker re-leases the slice. Because slice `k` is a pure
//! function of the job, *duplicate* results — the original worker was
//! slow, not dead, and both finish — are byte-identical, and the
//! coordinator keeps the first copy per slice index and counts the rest
//! ([`ServeReport::duplicates`]). Re-leasing therefore never risks the
//! merge: the result buffer is slice-indexed and idempotent.
//!
//! Workers treat a vanished coordinator *after* handshake as "campaign
//! finished without me" and exit cleanly
//! ([`WorkerReport::coordinator_closed`]): the coordinator only exits
//! once every slice has resolved, so there is nothing left to do.

use crate::experiment::{ExperimentConfig, ExperimentOutput, OUTPUT_WIRE_VERSION};
use crate::report;
use crate::scenario::ScenarioSpec;
use crate::shard::SlicePlan;
use netsim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::{mpsc, Notify};

/// Version of the message grammar; bumped on any incompatible change.
pub const PROTO_VERSION: u32 = 1;

/// Ceiling on a single frame body. A length prefix beyond this is
/// treated as a corrupt stream, not an allocation request.
const MAX_FRAME: usize = 64 << 20;

/// Everything a worker needs to rebuild the campaign bit-for-bit.
///
/// The coordinator sends this once at handshake; afterwards leases are
/// bare slice indices. Both sides derive the same [`SlicePlan`] from
/// it, because the plan is a pure function of the experiment
/// configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignJob {
    /// The scenario to run (conditions, methods, impairments).
    pub spec: ScenarioSpec,
    /// Master campaign seed.
    pub seed: u64,
    /// Campaign duration in microseconds.
    pub duration_us: u64,
    /// Slice width override in microseconds; `0` keeps the width the
    /// spec's calibration declares. Both sides must agree — it shapes
    /// the slice plan.
    pub slice_width_us: u64,
}

impl CampaignJob {
    /// A job running `spec` for `duration` with the spec's own slice
    /// width.
    pub fn new(spec: ScenarioSpec, seed: u64, duration: SimDuration) -> CampaignJob {
        CampaignJob { spec, seed, duration_us: duration.as_micros(), slice_width_us: 0 }
    }

    /// Campaign duration.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_micros(self.duration_us)
    }

    /// Semantic validation; wire-received jobs must pass before
    /// [`Self::config`] (which panics on bad specs) runs.
    pub fn validate(&self) -> Result<(), String> {
        self.spec.validate()?;
        if self.duration_us == 0 {
            return Err(format!("job for `{}`: zero duration", self.spec.name));
        }
        // A nonzero override below one second would explode the shared
        // slice plan into millions of slices (the plan is O(duration /
        // width)); reject it here, before both sides derive it.
        if self.slice_width_us > 0 && self.slice_width_us < 1_000_000 {
            return Err(format!(
                "job for `{}`: slice width override {} µs is below the 1-second floor",
                self.spec.name, self.slice_width_us
            ));
        }
        // The spec's own integer-µs rounding (`ScenarioSpec::horizon`),
        // NOT a locally rewritten float conversion: coordinator and
        // worker must agree bit-for-bit on the horizon, or a duration
        // landing exactly on it validates on one side only.
        let horizon = self.spec.horizon();
        if self.duration() > horizon {
            return Err(format!(
                "job for `{}`: duration {} outruns the {}-day impairment horizon",
                self.spec.name,
                self.duration(),
                self.spec.horizon_days
            ));
        }
        Ok(())
    }

    /// The experiment configuration this job pins down.
    pub fn config(&self) -> ExperimentConfig {
        let mut cfg = self.spec.config(self.seed, Some(self.duration()));
        if self.slice_width_us > 0 {
            cfg.slice_width = SimDuration::from_micros(self.slice_width_us);
        }
        cfg
    }

    /// The slice plan every participant derives identically.
    pub fn plan(&self) -> SlicePlan {
        SlicePlan::new(&self.config())
    }

    /// Simulates slice `k` of the plan — exactly what the in-process
    /// sharded runner would compute for that slot.
    ///
    /// # Panics
    ///
    /// If `k` is outside the plan (callers bounds-check leases first).
    pub fn run_slice_index(&self, k: usize) -> ExperimentOutput {
        let cfg = self.config();
        let plan = SlicePlan::new(&cfg);
        let s = plan.slices()[k];
        let mut c = cfg;
        c.seed = s.seed;
        c.duration = s.duration;
        crate::experiment::run_slice(self.spec.topology(self.seed), c, s.start)
    }
}

/// A protocol message. See the module docs for the exchange order.
#[derive(Serialize, Deserialize)]
pub enum Msg {
    /// Worker's opening move: both version pins.
    Hello {
        /// The worker's [`PROTO_VERSION`].
        proto: u32,
        /// The worker's [`OUTPUT_WIRE_VERSION`].
        output_wire: u32,
    },
    /// Coordinator's answer to a compatible `Hello`.
    Job {
        /// The campaign to rebuild locally.
        job: Box<CampaignJob>,
    },
    /// Coordinator's answer to an incompatible `Hello` (or any other
    /// reason to turn a worker away). The connection closes after it.
    Deny {
        /// Human-readable refusal.
        reason: String,
    },
    /// Worker is idle and wants a slice.
    Ready,
    /// Grant: simulate this slice index.
    Lease {
        /// Index into the shared [`SlicePlan`].
        slice: u64,
    },
    /// No slice available right now; ask again after `poll_ms`.
    Wait {
        /// Suggested back-off before the next `Ready`.
        poll_ms: u64,
    },
    /// Every slice has resolved; the worker can exit.
    Done,
    /// Worker liveness while a slice simulates; extends the lease.
    Heartbeat {
        /// The slice being worked on.
        slice: u64,
    },
    /// A finished slice.
    Result {
        /// The slice index this output belongs to.
        slice: u64,
        /// The slice's full output state.
        output: Box<ExperimentOutput>,
    },
}

impl Msg {
    /// Variant name for protocol-error messages.
    fn kind(&self) -> &'static str {
        match self {
            Msg::Hello { .. } => "Hello",
            Msg::Job { .. } => "Job",
            Msg::Deny { .. } => "Deny",
            Msg::Ready => "Ready",
            Msg::Lease { .. } => "Lease",
            Msg::Wait { .. } => "Wait",
            Msg::Done => "Done",
            Msg::Heartbeat { .. } => "Heartbeat",
            Msg::Result { .. } => "Result",
        }
    }
}

impl std::fmt::Debug for Msg {
    // Hand-written: `ExperimentOutput` is accumulator state with no
    // Debug of its own, and protocol errors only need the variant.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.kind())
    }
}

fn proto_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Encodes `msg` as one frame (length prefix included).
pub fn encode_msg(msg: &Msg) -> Vec<u8> {
    let json = serde_json::to_string(msg).expect("protocol messages always serialize");
    let mut buf = Vec::with_capacity(4 + json.len());
    buf.extend_from_slice(&(json.len() as u32).to_be_bytes());
    buf.extend_from_slice(json.as_bytes());
    buf
}

fn decode_body(body: &[u8]) -> io::Result<Msg> {
    let text = std::str::from_utf8(body).map_err(|e| proto_err(format!("frame not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| proto_err(format!("bad frame: {e}")))
}

fn frame_len(prefix: [u8; 4]) -> io::Result<usize> {
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(proto_err(format!("frame length {len} exceeds cap {MAX_FRAME}")));
    }
    Ok(len)
}

/// Sends one frame on an async stream.
pub async fn send_msg(stream: &mut TcpStream, msg: &Msg) -> io::Result<()> {
    stream.write_all(&encode_msg(msg)).await
}

/// Receives one frame from an async stream. `Ok(None)` is a clean
/// close — EOF *between* frames; EOF inside a frame is an error.
pub async fn recv_msg(stream: &mut TcpStream) -> io::Result<Option<Msg>> {
    let mut prefix = [0u8; 4];
    let n = stream.read(&mut prefix).await?;
    if n == 0 {
        return Ok(None);
    }
    if n < 4 {
        stream.read_exact(&mut prefix[n..]).await?;
    }
    let len = frame_len(prefix)?;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).await?;
    decode_body(&body).map(Some)
}

/// Blocking [`send_msg`] for plain `std` sockets — lets tests (and any
/// non-async tool) speak the protocol without the runtime.
pub fn write_msg_blocking<W: Write>(w: &mut W, msg: &Msg) -> io::Result<()> {
    w.write_all(&encode_msg(msg))
}

/// Blocking [`recv_msg`]; same clean-close contract.
pub fn read_msg_blocking<R: Read>(r: &mut R) -> io::Result<Option<Msg>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut prefix[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed mid-frame"));
        }
        filled += n;
    }
    let len = frame_len(prefix)?;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    decode_body(&body).map(Some)
}

/// Coordinator tuning.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// A lease not refreshed (by heartbeat or result) within this span
    /// is considered abandoned and re-issued on the next `Ready`.
    pub lease_timeout: Duration,
    /// Ceiling on the back-off hint sent with [`Msg::Wait`].
    pub poll_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { lease_timeout: Duration::from_secs(30), poll_ms: 200 }
    }
}

/// What a finished [`serve_campaign`] hands back.
pub struct ServeReport {
    /// The merged campaign output — byte-identical to a local
    /// `run_sharded` of the same job.
    pub output: ExperimentOutput,
    /// Slices in the plan.
    pub slices: usize,
    /// Worker connections accepted over the campaign.
    pub connections: u64,
    /// Leases re-issued after a timeout or worker disconnect.
    pub releases: u64,
    /// Duplicate slice results received and ignored.
    pub duplicates: u64,
    /// High-water mark of out-of-order results the streaming merge held
    /// back while waiting for a predecessor slice. Purely in-order
    /// arrival peaks at 1 (each result is folded the moment it lands).
    pub peak_buffered: usize,
}

/// Worker tuning.
#[derive(Debug, Clone, Copy)]
pub struct WorkerOptions {
    /// Heartbeat cadence while slices simulate. Must beat the
    /// coordinator's [`ServeOptions::lease_timeout`] comfortably. Each
    /// quiet interval the worker re-arms *every* outstanding lease — one
    /// [`Msg::Heartbeat`] frame per leased slice, the same frame a
    /// single-slice worker sends — so multi-lease liveness needs no new
    /// protocol message.
    pub heartbeat: Duration,
    /// Slices this worker leases and simulates concurrently (its local
    /// compute-thread count). `1` reproduces the sequential worker
    /// frame-for-frame; values are clamped to at least 1.
    pub jobs: usize,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions { heartbeat: Duration::from_secs(2), jobs: 1 }
    }
}

/// What a finished [`run_worker`] hands back.
#[derive(Debug, Clone, Copy)]
pub struct WorkerReport {
    /// Slices this worker simulated and delivered.
    pub slices_run: u64,
    /// True when the exit was the coordinator vanishing after handshake
    /// (campaign finished elsewhere) rather than an explicit
    /// [`Msg::Done`].
    pub coordinator_closed: bool,
}

enum SliceState {
    Unleased,
    Leased { deadline: Instant, holder: u64 },
    Done,
}

struct CoordState {
    slices: Vec<SliceState>,
    /// Fingerprint of the first accepted result per slice, kept after the
    /// output itself has been folded away so a late duplicate can still
    /// be checked against the copy that won.
    fingerprints: Vec<Option<u64>>,
    /// Streaming merge accumulator: slices `[0, next_merge)` already
    /// folded in slice order. Results never pile up waiting for the end
    /// of the campaign — each is merged the moment its predecessors are.
    merged: Option<ExperimentOutput>,
    next_merge: usize,
    /// Out-of-order results parked until their predecessors arrive.
    buffered: BTreeMap<usize, ExperimentOutput>,
    peak_buffered: usize,
    pending: usize,
    connections: u64,
    releases: u64,
    duplicates: u64,
}

struct Coord {
    job: CampaignJob,
    expected_digest: u64,
    opts: ServeOptions,
    state: Mutex<CoordState>,
    done: Notify,
}

impl Coord {
    fn new(job: CampaignJob, slices: usize, opts: ServeOptions) -> Coord {
        let expected_digest = job.spec.digest();
        Coord {
            job,
            expected_digest,
            opts,
            state: Mutex::new(CoordState {
                slices: (0..slices).map(|_| SliceState::Unleased).collect(),
                fingerprints: vec![None; slices],
                merged: None,
                next_merge: 0,
                buffered: BTreeMap::new(),
                peak_buffered: 0,
                pending: slices,
                connections: 0,
                releases: 0,
                duplicates: 0,
            }),
            done: Notify::new(),
        }
    }

    fn next_conn(&self) -> u64 {
        let mut st = self.state.lock().unwrap();
        st.connections += 1;
        st.connections
    }

    /// Answers a `Ready`: first unleased slice, else the most-overdue
    /// expired lease, else a back-off hint, else `Done`.
    fn grant_at(&self, conn: u64, now: Instant) -> Msg {
        let mut st = self.state.lock().unwrap();
        if st.pending == 0 {
            return Msg::Done;
        }
        let deadline = now + self.opts.lease_timeout;
        if let Some(k) = st.slices.iter().position(|s| matches!(s, SliceState::Unleased)) {
            st.slices[k] = SliceState::Leased { deadline, holder: conn };
            return Msg::Lease { slice: k as u64 };
        }
        let mut expired: Option<(usize, Instant)> = None;
        let mut nearest: Option<Instant> = None;
        for (k, s) in st.slices.iter().enumerate() {
            if let SliceState::Leased { deadline: d, .. } = s {
                if *d <= now {
                    if expired.is_none_or(|(_, best)| *d < best) {
                        expired = Some((k, *d));
                    }
                } else if nearest.is_none_or(|near| *d < near) {
                    nearest = Some(*d);
                }
            }
        }
        if let Some((k, _)) = expired {
            st.releases += 1;
            st.slices[k] = SliceState::Leased { deadline, holder: conn };
            return Msg::Lease { slice: k as u64 };
        }
        let mut poll_ms = self.opts.poll_ms;
        if let Some(near) = nearest {
            let until = near.saturating_duration_since(now).as_millis() as u64;
            poll_ms = poll_ms.min(until.max(10));
        }
        Msg::Wait { poll_ms: poll_ms.max(10) }
    }

    /// Extends a live lease the heartbeating connection still holds.
    /// Stale heartbeats (the slice was re-leased or finished) are
    /// ignored.
    fn heartbeat_at(&self, conn: u64, slice: usize, now: Instant) {
        let mut st = self.state.lock().unwrap();
        if let Some(SliceState::Leased { deadline, holder }) = st.slices.get_mut(slice) {
            if *holder == conn {
                *deadline = now + self.opts.lease_timeout;
            }
        }
    }

    /// Records a slice result idempotently and folds it into the
    /// streaming merge as soon as every lower-indexed slice has been
    /// folded. The first copy per index wins; later copies must carry
    /// the same fingerprint (slices are pure functions of the job, so a
    /// disagreeing duplicate means a nondeterministic worker — a
    /// campaign-poisoning bug, rejected loudly) and only bump
    /// [`ServeReport::duplicates`].
    fn record(&self, slice: usize, output: ExperimentOutput) -> io::Result<()> {
        if output.spec_digest != self.expected_digest {
            return Err(proto_err(format!(
                "result for slice {slice} ran digest {:#018x}, campaign is {:#018x}",
                output.spec_digest, self.expected_digest
            )));
        }
        let mut st = self.state.lock().unwrap();
        let Some(&slot) = st.fingerprints.get(slice) else {
            return Err(proto_err(format!("result for slice {slice} outside the plan")));
        };
        if let Some(first) = slot {
            let fp = output.fingerprint();
            if fp != first {
                return Err(proto_err(format!(
                    "duplicate result for slice {slice} fingerprints {fp:#018x}, \
                     first copy was {first:#018x}: worker is nondeterministic"
                )));
            }
            st.duplicates += 1;
            return Ok(());
        }
        st.fingerprints[slice] = Some(output.fingerprint());
        st.slices[slice] = SliceState::Done;
        st.pending -= 1;
        // Stream the merge: park the result, then fold every contiguous
        // run starting at `next_merge`. Because `merge_outputs` is a
        // strict left fold into its first element, folding pairwise as
        // results arrive is bit-identical to one big fold at the end —
        // and the coordinator's resident set is one accumulator plus
        // whatever arrived out of order, not every slice output.
        st.buffered.insert(slice, output);
        st.peak_buffered = st.peak_buffered.max(st.buffered.len());
        while let Some(next) = {
            let k = st.next_merge;
            st.buffered.remove(&k)
        } {
            st.merged = Some(match st.merged.take() {
                None => next,
                Some(acc) => report::merge_outputs(vec![acc, next]),
            });
            st.next_merge += 1;
        }
        if st.pending == 0 {
            self.done.notify_waiters();
        }
        Ok(())
    }

    /// Expires every lease `conn` held, so the next `Ready` from any
    /// worker re-issues those slices immediately.
    fn release_all_at(&self, conn: u64, now: Instant) {
        let mut st = self.state.lock().unwrap();
        for s in st.slices.iter_mut() {
            if let SliceState::Leased { deadline, holder } = s {
                if *holder == conn {
                    *deadline = now;
                }
            }
        }
    }

    fn finished(&self) -> bool {
        self.state.lock().unwrap().pending == 0
    }
}

async fn drive_conn(stream: &mut TcpStream, coord: &Coord, conn: u64) -> io::Result<()> {
    let hello = recv_msg(stream).await?;
    let (proto, output_wire) = match hello {
        Some(Msg::Hello { proto, output_wire }) => (proto, output_wire),
        Some(other) => return Err(proto_err(format!("expected Hello, got {}", other.kind()))),
        None => return Ok(()),
    };
    if proto != PROTO_VERSION || output_wire != OUTPUT_WIRE_VERSION {
        let reason = format!(
            "version mismatch: coordinator speaks proto {PROTO_VERSION} / output v{OUTPUT_WIRE_VERSION}, \
             worker offered proto {proto} / output v{output_wire}"
        );
        send_msg(stream, &Msg::Deny { reason: reason.clone() }).await?;
        return Err(proto_err(reason));
    }
    send_msg(stream, &Msg::Job { job: Box::new(coord.job.clone()) }).await?;
    loop {
        let Some(msg) = recv_msg(stream).await? else { return Ok(()) };
        match msg {
            Msg::Ready => {
                let grant = coord.grant_at(conn, Instant::now());
                let done = matches!(grant, Msg::Done);
                send_msg(stream, &grant).await?;
                if done {
                    return Ok(());
                }
            }
            Msg::Heartbeat { slice } => coord.heartbeat_at(conn, slice as usize, Instant::now()),
            Msg::Result { slice, output } => coord.record(slice as usize, *output)?,
            other => {
                return Err(proto_err(format!("unexpected {} from worker", other.kind())));
            }
        }
    }
}

async fn serve_conn(mut stream: TcpStream, coord: Arc<Coord>) {
    let conn = coord.next_conn();
    let res = drive_conn(&mut stream, &coord, conn).await;
    // Dropping the leases *after* the connection ends covers every exit:
    // clean Done (no leases left), worker death (re-lease now), protocol
    // error (ditto).
    coord.release_all_at(conn, Instant::now());
    if let Err(e) = res {
        eprintln!("mpath coordinator: worker connection {conn} failed: {e}");
    }
}

/// Runs a campaign as the coordinator: accepts workers on `listener`,
/// leases slices until every index has a result, and merges in slice
/// order.
///
/// Takes a *blocking* [`std::net::TcpListener`] so callers can bind
/// port 0 first and advertise the resolved address before the runtime
/// spins up; the listener is switched to nonblocking internally.
///
/// The returned report's output is byte-identical to running the same
/// [`CampaignJob`] locally at any shard count — that is the whole point,
/// and `tests/distributed_equivalence.rs` holds it to the fingerprint.
pub fn serve_campaign(
    listener: std::net::TcpListener,
    job: CampaignJob,
    opts: ServeOptions,
) -> io::Result<ServeReport> {
    job.validate().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    let slices = job.plan().len();
    let coord = Arc::new(Coord::new(job, slices, opts));
    tokio::runtime::block_on(async {
        let listener = TcpListener::from_std(listener)?;
        while !coord.finished() {
            tokio::select! {
                _ = coord.done.notified() => {}
                accepted = listener.accept() => {
                    let (stream, _peer) = accepted?;
                    tokio::spawn(serve_conn(stream, coord.clone()));
                }
            }
        }
        io::Result::Ok(())
    })?;
    let mut st = coord.state.lock().unwrap();
    assert_eq!(st.next_merge, slices, "pending hit zero with unmerged slices");
    Ok(ServeReport {
        output: st.merged.take().expect("a campaign has at least one slice"),
        slices,
        connections: st.connections,
        releases: st.releases,
        duplicates: st.duplicates,
        peak_buffered: st.peak_buffered,
    })
}

/// Treats connection loss after handshake as the campaign ending: the
/// coordinator only goes away once every slice has resolved.
fn closed_cleanly(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::WriteZero
    )
}

/// Runs the worker side: connect, handshake, then lease up to
/// [`WorkerOptions::jobs`] slices at a time until the coordinator says
/// [`Msg::Done`] (or vanishes — see
/// [`WorkerReport::coordinator_closed`]).
///
/// Each leased slice simulates on its own OS thread while the worker's
/// runtime thread owns the socket: it tops the lease set up with
/// `Ready`, ships each [`Msg::Result`] the moment that slice finishes
/// (slices complete out of order; the coordinator's merge is
/// slice-indexed, so delivery order is free), and each quiet heartbeat
/// interval re-arms every outstanding lease. The exchange stays
/// strictly request/response — the coordinator only ever speaks when
/// spoken to — so pipelining needs no protocol change at all.
pub fn run_worker<A: std::net::ToSocketAddrs + Send + 'static>(
    addr: A,
    opts: WorkerOptions,
) -> io::Result<WorkerReport> {
    let jobs = opts.jobs.max(1);
    tokio::runtime::block_on(async move {
        let mut stream = TcpStream::connect(addr).await?;
        send_msg(
            &mut stream,
            &Msg::Hello { proto: PROTO_VERSION, output_wire: OUTPUT_WIRE_VERSION },
        )
        .await?;
        let job = match recv_msg(&mut stream).await? {
            Some(Msg::Job { job }) => *job,
            Some(Msg::Deny { reason }) => return Err(proto_err(reason)),
            Some(other) => return Err(proto_err(format!("expected Job, got {}", other.kind()))),
            None => return Err(proto_err("coordinator closed during handshake")),
        };
        job.validate().map_err(proto_err)?;
        let plan_len = job.plan().len() as u64;
        let mut slices_run = 0u64;
        let closed = |e: io::Error, slices_run: u64| {
            if closed_cleanly(&e) {
                Ok(WorkerReport { slices_run, coordinator_closed: true })
            } else {
                Err(e)
            }
        };
        // Finished computes flow back over one channel. Capacity `jobs`
        // means a compute thread's `try_send` can never find the queue
        // full: at most `jobs` computes are outstanding and each sends
        // exactly once.
        let (tx, mut rx) =
            mpsc::channel::<(u64, std::thread::Result<ExperimentOutput>)>(jobs);
        let mut outstanding: Vec<u64> = Vec::with_capacity(jobs);
        let mut done = false;
        loop {
            // Top the lease set up to `jobs` slices.
            while !done && outstanding.len() < jobs {
                if let Err(e) = send_msg(&mut stream, &Msg::Ready).await {
                    return closed(e, slices_run);
                }
                let grant = match recv_msg(&mut stream).await {
                    Ok(Some(msg)) => msg,
                    Ok(None) => return Ok(WorkerReport { slices_run, coordinator_closed: true }),
                    Err(e) => return closed(e, slices_run),
                };
                match grant {
                    Msg::Done => done = true,
                    Msg::Wait { poll_ms } => {
                        if outstanding.is_empty() {
                            tokio::time::sleep(Duration::from_millis(poll_ms.clamp(1, 10_000)))
                                .await;
                        } else {
                            // Something is already simulating: service it
                            // instead of napping, and ask again afterwards.
                            break;
                        }
                    }
                    Msg::Lease { slice } => {
                        if slice >= plan_len {
                            return Err(proto_err(format!(
                                "lease {slice} outside the {plan_len}-slice plan"
                            )));
                        }
                        let k = slice as usize;
                        let job_for_slice = job.clone();
                        let txc = tx.clone();
                        std::thread::spawn(move || {
                            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                move || job_for_slice.run_slice_index(k),
                            ));
                            // Full is impossible (see channel sizing);
                            // Closed means the worker already bailed.
                            let _ = txc.try_send((slice, out));
                        });
                        outstanding.push(slice);
                    }
                    other => {
                        return Err(proto_err(format!("expected a grant, got {}", other.kind())));
                    }
                }
            }
            if done {
                // `Done` means every slice in the plan already has a
                // result, so anything still computing here is a
                // duplicate-to-be of a slice someone else delivered
                // (after this worker's lease timed out). The coordinator
                // hangs up after `Done`; abandon the threads — their
                // `try_send` into a dropped channel is a no-op.
                return Ok(WorkerReport { slices_run, coordinator_closed: false });
            }
            // Wait for a compute to finish; every quiet heartbeat
            // interval, one Heartbeat frame per outstanding lease keeps
            // them all alive.
            match tokio::time::timeout(opts.heartbeat, rx.recv()).await {
                Ok(Some((slice, result))) => {
                    let output = match result {
                        Ok(out) => out,
                        Err(_) => {
                            return Err(proto_err(format!("slice {slice} simulation panicked")))
                        }
                    };
                    if let Err(e) =
                        send_msg(&mut stream, &Msg::Result { slice, output: Box::new(output) })
                            .await
                    {
                        return closed(e, slices_run);
                    }
                    slices_run += 1;
                    outstanding.retain(|&s| s != slice);
                }
                Ok(None) => unreachable!("the worker loop holds a live sender"),
                Err(_elapsed) => {
                    for &slice in &outstanding {
                        if let Err(e) = send_msg(&mut stream, &Msg::Heartbeat { slice }).await {
                            return closed(e, slices_run);
                        }
                    }
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioRegistry;
    use crate::shard::run_sharded;
    use std::io::Cursor;

    fn small_job() -> CampaignJob {
        let spec = ScenarioRegistry::builtin().get("ron-narrow").expect("builtin").clone();
        CampaignJob {
            spec,
            seed: 42,
            duration_us: SimDuration::from_mins(20).as_micros(),
            slice_width_us: SimDuration::from_mins(5).as_micros(),
        }
    }

    #[test]
    fn frames_round_trip_through_blocking_helpers() {
        let mut wire = Vec::new();
        write_msg_blocking(&mut wire, &Msg::Hello { proto: 7, output_wire: 9 }).unwrap();
        write_msg_blocking(&mut wire, &Msg::Lease { slice: 3 }).unwrap();
        write_msg_blocking(&mut wire, &Msg::Ready).unwrap();
        let mut r = Cursor::new(wire);
        match read_msg_blocking(&mut r).unwrap().unwrap() {
            Msg::Hello { proto, output_wire } => {
                assert_eq!((proto, output_wire), (7, 9));
            }
            other => panic!("got {}", other.kind()),
        }
        assert!(matches!(read_msg_blocking(&mut r).unwrap().unwrap(), Msg::Lease { slice: 3 }));
        assert!(matches!(read_msg_blocking(&mut r).unwrap().unwrap(), Msg::Ready));
        assert!(read_msg_blocking(&mut r).unwrap().is_none(), "clean EOF between frames");
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_clean_close() {
        let mut wire = encode_msg(&Msg::Ready);
        wire.truncate(wire.len() - 1);
        let mut r = Cursor::new(wire);
        let err = read_msg_blocking(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut r = Cursor::new(u32::MAX.to_be_bytes().to_vec());
        let err = read_msg_blocking(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn sub_second_slice_width_override_is_rejected_before_planning() {
        // Regression companion to `SlicePlan::new`'s assert: a wire job
        // must be refused readably before either side derives the plan.
        let mut job = small_job();
        job.slice_width_us = 999_999;
        let err = job.validate().unwrap_err();
        assert!(err.contains("1-second floor"), "got: {err}");
        job.slice_width_us = 0; // "use the spec's width" stays legal
        job.validate().expect("zero override means calibration width");
        job.slice_width_us = 1_000_000; // the floor itself is legal
        job.validate().expect("one-second override is the floor");
    }

    #[test]
    fn job_round_trips_and_plans_identically() {
        let job = small_job();
        let json = serde_json::to_string(&Msg::Job { job: Box::new(job.clone()) }).unwrap();
        let back = match serde_json::from_str::<Msg>(&json).unwrap() {
            Msg::Job { job } => *job,
            other => panic!("got {}", other.kind()),
        };
        assert_eq!(back, job);
        assert_eq!(back.plan().slices(), job.plan().slices());
        assert_eq!(job.plan().len(), 4);
    }

    #[test]
    fn grant_walks_plan_then_backs_off_then_relieves_expired() {
        let job = small_job();
        let opts =
            ServeOptions { lease_timeout: Duration::from_millis(100), ..ServeOptions::default() };
        let coord = Coord::new(job.clone(), 3, opts);
        let t0 = Instant::now();
        assert!(matches!(coord.grant_at(1, t0), Msg::Lease { slice: 0 }));
        assert!(matches!(coord.grant_at(2, t0), Msg::Lease { slice: 1 }));
        assert!(matches!(coord.grant_at(2, t0), Msg::Lease { slice: 2 }));
        // Plan exhausted, all leases live: back off.
        assert!(matches!(coord.grant_at(3, t0), Msg::Wait { .. }));
        // Heartbeats keep conn 2's leases alive past the timeout;
        // conn 1 went silent, so slice 0 is the one re-issued.
        let later = t0 + Duration::from_millis(150);
        coord.heartbeat_at(2, 1, later);
        coord.heartbeat_at(2, 2, later);
        assert!(matches!(coord.grant_at(3, later), Msg::Lease { slice: 0 }));
        assert_eq!(coord.state.lock().unwrap().releases, 1);
        // A worker disconnect expires its leases with no wait at all.
        coord.release_all_at(2, later);
        assert!(matches!(coord.grant_at(3, later), Msg::Lease { .. }));
    }

    #[test]
    fn record_is_idempotent_and_bounds_checked() {
        let job = small_job();
        let coord = Coord::new(job.clone(), 2, ServeOptions::default());
        let out0 = job.run_slice_index(0);
        let out0_dup = job.run_slice_index(0);
        coord.record(0, out0).unwrap();
        coord.record(0, out0_dup).unwrap();
        {
            let st = coord.state.lock().unwrap();
            assert_eq!(st.duplicates, 1);
            assert_eq!(st.pending, 1);
        }
        let err = coord.record(7, job.run_slice_index(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Wrong-campaign results are turned away before touching slots.
        let mut foreign = job.clone();
        foreign.seed = 43;
        let mut alien = foreign.run_slice_index(1);
        alien.spec_digest ^= 1;
        assert!(coord.record(1, alien).is_err());
    }

    #[test]
    fn loopback_worker_matches_local_sharded_run() {
        let job = small_job();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let serve_job = job.clone();
        let coordinator = std::thread::spawn(move || {
            serve_campaign(listener, serve_job, ServeOptions::default()).unwrap()
        });
        let worker = std::thread::spawn(move || {
            run_worker(addr, WorkerOptions::default()).unwrap()
        });
        let report = coordinator.join().unwrap();
        let wr = worker.join().unwrap();
        let local = run_sharded(job.spec.topology(job.seed), job.config());
        assert_eq!(report.output.fingerprint(), local.fingerprint());
        assert_eq!(report.slices, 4);
        assert_eq!(wr.slices_run, 4);
        assert_eq!(report.duplicates, 0);
    }
}
